//! Run the full two-year measurement scenario and print the headline numbers
//! of §4.2 plus Table 1 — the programmatic equivalent of
//! `cargo run -p defi-bench --bin repro -- headline table1`.
//!
//! ```sh
//! cargo run --release --example two_year_study
//! ```
//!
//! Pass `--smoke` to run the fast 3-month window instead of the full study.

use defi_liquidations_suite::analytics::StudyAnalysis;
use defi_liquidations_suite::sim::{EngineBuilder, SimConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        SimConfig::smoke_test(1)
    } else {
        SimConfig::paper_default(1)
    };
    println!(
        "running the {} scenario: blocks {}..{}, {} ticks",
        if smoke { "smoke" } else { "two-year study" },
        config.start_block,
        config.end_block,
        config.tick_count()
    );
    let started = std::time::Instant::now();
    let report = EngineBuilder::new(config).build().run();
    println!(
        "simulation finished in {:.1}s with {} chain events",
        started.elapsed().as_secs_f64(),
        report.chain.events().len()
    );

    let analysis = StudyAnalysis::from_report(&report);
    let headline = &analysis.headline;
    println!("\n== headline statistics (cf. §4.2) ==");
    println!("  settled liquidations:   {}", headline.liquidation_count);
    println!("  unique liquidators:     {}", headline.liquidator_count);
    println!(
        "  collateral sold:        {} USD",
        headline.total_collateral_sold
    );
    println!("  liquidator profit:      {} USD", headline.total_profit);
    println!(
        "  unprofitable liquidations: {} (total loss {} USD)",
        headline.unprofitable_liquidations, headline.unprofitable_loss
    );

    println!("\n== Table 1 ==");
    println!(
        "{:<12} {:>14} {:>12} {:>18}",
        "Platform", "Liquidations", "Liquidators", "Average profit"
    );
    for row in &analysis.table1.rows {
        println!(
            "{:<12} {:>14} {:>12} {:>18}",
            row.platform.name(),
            row.liquidations,
            row.liquidators,
            format!("{} USD", row.average_profit)
        );
    }

    println!(
        "\nfixed-spread liquidations paying above-average gas: {:.1}% (the paper: 73.97%)",
        analysis.gas.share_above_average * 100.0
    );
    println!(
        "stablecoin pairs within 5% of each other: {:.2}% of blocks (the paper: 99.97%)",
        analysis.stablecoins.share_within_threshold * 100.0
    );
}
