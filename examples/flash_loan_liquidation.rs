//! A flash-loan-funded liquidation, end to end (§4.4.4).
//!
//! The liquidator holds no inventory at all: it flash-borrows the debt asset
//! from a dYdX-style pool, repays the borrower's debt through
//! `liquidationCall`, swaps the seized ETH collateral back into USDC on a
//! constant-product DEX, repays the flash loan, and keeps the difference —
//! all inside a single atomic transaction. If any step made the deal
//! unprofitable, the whole transaction would revert and nothing would happen.
//!
//! ```sh
//! cargo run --release --example flash_loan_liquidation
//! ```

use defi_liquidations_suite::amm::Dex;
use defi_liquidations_suite::chain::{Blockchain, ChainConfig};
use defi_liquidations_suite::core::params::RiskParams;
use defi_liquidations_suite::lending::{
    FixedSpreadConfig, FixedSpreadProtocol, FlashLoanPool, InterestRateModel, DEFAULT_DEBT_DUST,
};
use defi_liquidations_suite::oracle::{OracleConfig, PriceOracle};
use defi_liquidations_suite::prelude::*;
use defi_liquidations_suite::types::Platform;

fn main() {
    let mut chain = Blockchain::new(ChainConfig::default());
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(chain.current_block(), Token::ETH, Wad::from_int(3_500));
    oracle.set_price(chain.current_block(), Token::USDC, Wad::ONE);

    // A lending pool with an unhealthy borrower (same setup as the quickstart).
    let mut pool = FixedSpreadProtocol::new(FixedSpreadConfig {
        platform: Platform::AaveV2,
        close_factor: Wad::from_f64(0.5),
        one_liquidation_per_block: false,
        insurance_fund: false,
        debt_dust: DEFAULT_DEBT_DUST,
    });
    pool.list_market(
        Token::ETH,
        RiskParams::new(0.8, 0.05, 0.5),
        InterestRateModel::default(),
        0,
    );
    pool.list_market(
        Token::USDC,
        RiskParams::new(0.85, 0.05, 0.5),
        InterestRateModel::stablecoin(),
        0,
    );

    let lender = Address::from_seed(1);
    let borrower = Address::from_seed(2);
    chain.fund(lender, Token::USDC, Wad::from_int(2_000_000));
    chain.fund(borrower, Token::ETH, Wad::from_int(300));
    chain.execute(lender, 20, 250_000, "seed pool", |ctx| {
        pool.deposit(
            ctx.ledger,
            ctx.events,
            lender,
            Token::USDC,
            Wad::from_int(2_000_000),
        )
        .map_err(|e| e.to_string())
    });
    chain.execute(borrower, 25, 250_000, "open position", |ctx| {
        pool.deposit(
            ctx.ledger,
            ctx.events,
            borrower,
            Token::ETH,
            Wad::from_int(300),
        )
        .map_err(|e| e.to_string())?;
        pool.borrow(
            ctx.ledger,
            ctx.events,
            &oracle,
            ctx.block,
            borrower,
            Token::USDC,
            Wad::from_int(800_000),
        )
        .map_err(|e| e.to_string())
    });

    // The flash-loan pool and a deep ETH/USDC DEX pool.
    let flash_pool = FlashLoanPool::for_platform(Platform::DyDx);
    flash_pool.seed(chain.ledger_mut(), Token::USDC, Wad::from_int(100_000_000));
    let mut dex = Dex::new();
    dex.seed_standard_pool(
        chain.ledger_mut(),
        Token::ETH,
        3_000.0,
        Token::USDC,
        1.0,
        200_000_000.0,
    );

    // ETH drops: the position becomes liquidatable.
    chain.advance_to(chain.current_block() + 100, 0);
    oracle.set_price(chain.current_block(), Token::ETH, Wad::from_int(3_000));
    assert!(pool.is_liquidatable(&oracle, borrower));
    println!(
        "borrower health factor after the price drop: {}",
        pool.position(&oracle, borrower)
            .unwrap()
            .health_factor()
            .unwrap()
    );

    // The liquidator executes the whole flow atomically, starting with zero inventory.
    let liquidator = Address::from_seed(3);
    let repay = Wad::from_int(400_000); // 50% of the debt
    let block = chain.current_block();
    let outcome = chain.execute(liquidator, 150, 900_000, "flash-loan liquidation", |ctx| {
        flash_pool
            .flash_loan(
                ctx.ledger,
                ctx.events,
                &oracle,
                liquidator,
                Token::USDC,
                repay,
                |ledger, events| {
                    let receipt = pool.liquidation_call(
                        ledger,
                        events,
                        &oracle,
                        block,
                        liquidator,
                        borrower,
                        Token::USDC,
                        Token::ETH,
                        repay,
                        true,
                    )?;
                    println!(
                        "  repaid {} USDC, seized {} ETH ({} USD)",
                        receipt.debt_repaid,
                        receipt.collateral_seized,
                        receipt.collateral_seized_usd
                    );
                    // Swap the seized ETH back into USDC to repay the flash loan.
                    let proceeds = dex
                        .swap(
                            ledger,
                            liquidator,
                            Token::ETH,
                            Token::USDC,
                            receipt.collateral_seized,
                        )
                        .map_err(|e| {
                            defi_liquidations_suite::lending::ProtocolError::Ledger(e.to_string())
                        })?;
                    println!("  swapped the collateral for {} USDC on the DEX", proceeds);
                    Ok(())
                },
            )
            .map_err(|e| e.to_string())
    });

    assert!(
        outcome.is_success(),
        "the flash-loan liquidation should settle"
    );
    let profit = chain.ledger().balance(liquidator, Token::USDC);
    println!(
        "\nflash loan repaid in full; liquidator profit: {} USDC",
        profit
    );
    println!(
        "events emitted in the transaction: {:?}",
        outcome
            .receipt
            .events
            .iter()
            .map(|e| e.kind())
            .collect::<Vec<_>>()
    );
    assert!(!profit.is_zero());
}
