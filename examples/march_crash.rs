//! The 13 March 2020 market collapse ("Black Thursday"), in miniature.
//!
//! Runs the simulation over a window that spans the scripted −43 % ETH crash
//! and the accompanying network congestion, then reports what the paper
//! observed around that date: a wave of liquidations on every platform, the
//! MakerDAO keeper bots failing to bid under congestion, near-zero tend bids
//! winning whole collateral lots, and the resulting outlier in monthly
//! liquidation profit (Figure 5).
//!
//! ```sh
//! cargo run --release --example march_crash
//! ```

use defi_liquidations_suite::analytics::StudyAnalysis;
use defi_liquidations_suite::sim::{EngineBuilder, SimConfig};
use defi_liquidations_suite::types::{MonthTag, Platform, Token};

fn main() {
    // The smoke scenario covers blocks 9.5M–9.9M (February–April 2020),
    // which contains the scripted crash and congestion episode.
    let config = SimConfig::smoke_test(20_200_313);
    println!(
        "simulating blocks {}..{} ({} ticks) around the March 2020 crash…",
        config.start_block,
        config.end_block,
        config.tick_count()
    );
    // EngineBuilder is the assembly surface: the defaults reproduce the
    // paper's five-protocol setup, and any protocol, scenario or DEX can be
    // swapped with one `.with_*` call.
    let report = EngineBuilder::new(config).build().run();

    // The crash is visible in the market price path.
    let eth_before = report
        .market_oracle
        .price_at(9_700_000, Token::ETH)
        .unwrap();
    let eth_after = report
        .market_oracle
        .price_at(9_740_000, Token::ETH)
        .unwrap();
    println!(
        "\nETH price across the crash: {:.2} USD -> {:.2} USD ({:.1}% decline)",
        eth_before.to_f64(),
        eth_after.to_f64(),
        100.0 * (1.0 - eth_after.to_f64() / eth_before.to_f64())
    );

    let analysis = StudyAnalysis::from_report(&report);

    println!(
        "\nliquidations in the window: {}",
        analysis.headline.liquidation_count
    );
    println!(
        "collateral sold:            {} USD",
        analysis.headline.total_collateral_sold
    );
    println!(
        "liquidator profit:          {} USD",
        analysis.headline.total_profit
    );

    // Monthly profit per platform: March 2020 dominates, and MakerDAO's
    // auction wins during congestion are the largest single contribution —
    // the Figure 5 outlier.
    let march = MonthTag::new(2020, 3);
    println!("\nMarch 2020 liquidation profit by platform:");
    for platform in Platform::ALL {
        let profit = analysis
            .figure5
            .get(&platform)
            .and_then(|m| m.get(&march))
            .copied()
            .unwrap_or_default();
        println!("  {:<10} {} USD", platform.name(), profit);
    }

    // Auction statistics: short auctions, very few bids — keepers were absent.
    let auctions = &analysis.auctions;
    println!(
        "\nMakerDAO auctions finalised: {}",
        auctions.durations.len()
    );
    println!(
        "  bids per auction: {:.2} ± {:.2}; bidders per auction: {:.2}",
        auctions.bids_per_auction.mean, auctions.bids_per_auction.std_dev, auctions.average_bidders
    );
    println!(
        "  terminated in tend phase: {} (low bids winning whole collateral lots)",
        auctions.terminated_in_tend
    );

    // Gas competition during the congestion spike.
    println!(
        "\nfixed-spread liquidations paying above-average gas: {:.1}%",
        analysis.gas.share_above_average * 100.0
    );
    if let Some(max_point) = analysis.gas.points.iter().max_by_key(|p| p.gas_price) {
        println!(
            "  highest liquidation gas bid: {} gwei at block {} (network average {:.0} gwei)",
            max_point.gas_price, max_point.block, max_point.average_gas_price
        );
    }
}
