//! The §5.2 case study: the optimal fixed-spread liquidation strategy.
//!
//! Reconstructs the largest fixed-spread liquidation of the measurement — a
//! ~100 M USD Compound position tipped over by a DAI oracle price update —
//! and compares the original liquidation, the up-to-close-factor strategy and
//! the optimal two-step strategy (Algorithm 2), then evaluates the
//! one-liquidation-per-block mitigation (§5.2.3).
//!
//! ```sh
//! cargo run --release --example optimal_strategy
//! ```

use defi_liquidations_suite::core::mitigation::MitigationAnalysis;
use defi_liquidations_suite::core::params::RiskParams;
use defi_liquidations_suite::core::strategy::{optimal_profit_increase_rate, StrategyComparison};
use defi_liquidations_suite::prelude::*;

fn main() {
    // The Table 5 position, valued after the oracle update (DAI at 1.095299):
    // ~136.73M USD of collateral vs ~102.61M USD of debt at LT 0.75.
    let collateral = Wad::from_f64(136_730_000.0);
    let debt = Wad::from_f64(102_610_000.0);
    let params = RiskParams::new(0.75, 0.08, 0.50); // Compound: 8% spread, 50% close factor

    println!("position: C = {} USD, D = {} USD", collateral, debt);
    println!(
        "health factor: {}",
        collateral
            .checked_mul(params.liquidation_threshold)
            .unwrap()
            .checked_div(debt)
            .unwrap()
    );

    let comparison = StrategyComparison::evaluate(collateral, debt, params)
        .expect("the position is liquidatable");

    println!("\n-- up-to-close-factor strategy --");
    println!("repay:   {} USD", comparison.up_to_close_factor.repay_1);
    println!(
        "receive: {} USD",
        comparison.up_to_close_factor.collateral_claimed
    );
    println!("profit:  {} USD", comparison.up_to_close_factor.profit);

    println!("\n-- optimal strategy (Algorithm 2) --");
    println!(
        "liquidation 1 repay: {} USD (keeps the position unhealthy)",
        comparison.optimal.repay_1
    );
    println!(
        "liquidation 2 repay: {} USD (up to the close factor of the remainder)",
        comparison.optimal.repay_2
    );
    println!("total profit:        {} USD", comparison.optimal.profit);
    println!(
        "advantage over up-to-close-factor: {} USD",
        comparison.profit_advantage
    );
    let predicted = optimal_profit_increase_rate(collateral, debt, params).unwrap();
    println!("Eq. 9 predicted increase rate: {:.4}% ", predicted * 100.0);

    println!("\n-- §5.2.3 mitigation: one liquidation per position per block --");
    let mitigation = MitigationAnalysis::evaluate(collateral, debt, params).unwrap();
    let threshold = mitigation
        .mining_power_threshold
        .expect("second liquidation is profitable");
    println!(
        "the optimal strategy only beats up-to-close-factor for mining power > {:.2}%",
        threshold * 100.0
    );
    for alpha in [0.05, 0.25, 0.50, 0.90, 0.999] {
        println!(
            "  α = {:>5.1}% → E[up-to-close] = {:>12.0} USD, E[optimal] = {:>12.0} USD, optimal rational: {}",
            alpha * 100.0,
            mitigation.expected_close_factor(alpha),
            mitigation.expected_optimal(alpha),
            mitigation.optimal_is_rational(alpha)
        );
    }
    println!("\nthe mitigation makes the optimal strategy irrational for any realistic miner.");
}
