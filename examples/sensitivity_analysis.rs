//! Liquidation sensitivity to price declines — Algorithm 1 / Figure 8.
//!
//! Part 1 runs a short simulation to build per-platform position books, then
//! sweeps the price decline of each platform's dominant collateral asset and
//! prints the Figure 8 series, including the paper's reference point: the
//! liquidatable volume under an immediate 43 % ETH decline (the magnitude of
//! the 13 March 2020 crash).
//!
//! Part 2 repeats the 43 %-decline measurement across a grid of seeds fanned
//! over `SweepRunner` workers, showing how sensitive the headline number is
//! to the simulated borrower population rather than to one particular run.
//!
//! ```sh
//! cargo run --release --example sensitivity_analysis
//! ```

use defi_liquidations_suite::analytics::sensitivity::figure8;
use defi_liquidations_suite::core::sensitivity::liquidatable_collateral;
use defi_liquidations_suite::sim::{SimConfig, SimulationEngine, SweepRunner};
use defi_liquidations_suite::types::Token;

fn main() {
    let report = SimulationEngine::new(SimConfig::smoke_test(8)).run();
    println!(
        "snapshot at block {}: {} platforms with open positions\n",
        report.snapshot_block,
        report.final_positions.len()
    );

    let sensitivity = figure8(&report.final_positions, 50);
    for platform in &sensitivity {
        let positions = &report.final_positions[&platform.platform];
        if positions.is_empty() {
            continue;
        }
        println!(
            "{} — {} open borrowing positions",
            platform.platform.name(),
            positions.len()
        );
        for curve in &platform.curves {
            if curve.max().is_zero() {
                continue;
            }
            print!("  {:<8}", curve.token.symbol());
            for decline in [0.1, 0.2, 0.3, 0.43, 0.6, 0.8, 1.0] {
                print!(
                    " {:>3.0}%:{:>10.0}",
                    decline * 100.0,
                    curve.at(decline).to_f64()
                );
            }
            println!();
        }
        // The paper's headline: the 43% ETH decline of March 2020.
        let eth_hit = liquidatable_collateral(positions, Token::ETH, 0.43);
        println!(
            "  -> an immediate 43% ETH decline makes {:.0} USD of collateral liquidatable\n",
            eth_hit.to_f64()
        );
    }

    println!(
        "note: every platform is most sensitive to ETH, and books with multi-asset\ncollateral (Aave V2-style) lose less borrowing capacity for the same decline.\n"
    );

    // Part 2: the same headline across a seed grid, fanned over workers.
    let seeds = 4;
    let runner = SweepRunner::new(4);
    let grid = SweepRunner::seed_grid(&SimConfig::smoke_test(8), seeds);
    let summaries = runner.run(&grid).expect("seed sweep");
    println!(
        "== 43% ETH decline across {} seeds ({} workers) ==",
        seeds,
        runner.workers()
    );
    for summary in &summaries {
        println!(
            "  seed {:>3}: {:>4} liquidations during the run, {:>12.0} USD liquidatable at the snapshot",
            summary.seed,
            summary.liquidations,
            summary.eth_decline_43_liquidatable.to_f64()
        );
    }
    let values: Vec<f64> = summaries
        .iter()
        .map(|s| s.eth_decline_43_liquidatable.to_f64())
        .collect();
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let std = (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / values.len().max(1) as f64)
        .sqrt();
    println!(
        "  mean {mean:.0} USD ± {std:.0} USD — the exposure is structural, not a seed artefact"
    );
}
