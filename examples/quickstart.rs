//! Quickstart: the fixed-spread liquidation walk-through of §3.2.2.
//!
//! A borrower deposits 3 ETH at 3,500 USD, borrows 8,400 USDC against it
//! (liquidation threshold 0.8), the ETH price declines to 3,300 USD, and a
//! liquidator repays 50 % of the debt at a 10 % liquidation spread —
//! pocketing 420 USD at the borrower's expense.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use defi_liquidations_suite::chain::{Blockchain, ChainConfig};
use defi_liquidations_suite::core::params::RiskParams;
use defi_liquidations_suite::lending::{
    FixedSpreadConfig, FixedSpreadProtocol, InterestRateModel, DEFAULT_DEBT_DUST,
};
use defi_liquidations_suite::oracle::{OracleConfig, PriceOracle};
use defi_liquidations_suite::prelude::*;

fn main() {
    // --- Substrate: a chain, an oracle and a Compound-style lending pool ----
    let mut chain = Blockchain::new(ChainConfig::default());
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(chain.current_block(), Token::ETH, Wad::from_int(3_500));
    oracle.set_price(chain.current_block(), Token::USDC, Wad::ONE);

    let mut pool = FixedSpreadProtocol::new(FixedSpreadConfig {
        platform: defi_liquidations_suite::types::Platform::Compound,
        close_factor: Wad::from_f64(0.5),
        one_liquidation_per_block: false,
        insurance_fund: false,
        debt_dust: DEFAULT_DEBT_DUST,
    });
    // The paper's example parameters: LT = 0.8, LS = 10 %.
    pool.list_market(
        Token::ETH,
        RiskParams::new(0.8, 0.10, 0.5),
        InterestRateModel::default(),
        0,
    );
    pool.list_market(
        Token::USDC,
        RiskParams::new(0.85, 0.05, 0.5),
        InterestRateModel::stablecoin(),
        0,
    );

    // A lender seeds USDC liquidity.
    let lender = Address::from_seed(1);
    chain.fund(lender, Token::USDC, Wad::from_int(1_000_000));
    chain.execute(lender, 20, 250_000, "lender deposit", |ctx| {
        pool.deposit(
            ctx.ledger,
            ctx.events,
            lender,
            Token::USDC,
            Wad::from_int(1_000_000),
        )
        .map_err(|e| e.to_string())
    });

    // --- The borrower opens the paper's position ----------------------------
    let borrower = Address::from_seed(2);
    chain.fund(borrower, Token::ETH, Wad::from_int(3));
    chain.execute(borrower, 25, 250_000, "open position", |ctx| {
        pool.deposit(
            ctx.ledger,
            ctx.events,
            borrower,
            Token::ETH,
            Wad::from_int(3),
        )
        .map_err(|e| e.to_string())?;
        pool.borrow(
            ctx.ledger,
            ctx.events,
            &oracle,
            ctx.block,
            borrower,
            Token::USDC,
            Wad::from_int(8_400),
        )
        .map_err(|e| e.to_string())
    });

    let position = pool.position(&oracle, borrower).expect("position exists");
    println!(
        "collateral value:    {} USD",
        position.total_collateral_value()
    );
    println!("borrowing capacity:  {} USD", position.borrowing_capacity());
    println!("debt value:          {} USD", position.total_debt_value());
    println!("health factor:       {}", position.health_factor().unwrap());
    assert!(!position.is_liquidatable());

    // --- ETH declines to 3,300 USD: HF ≈ 0.94 < 1 ---------------------------
    chain.advance_to(chain.current_block() + 40, 0);
    oracle.set_price(chain.current_block(), Token::ETH, Wad::from_int(3_300));
    let position = pool.position(&oracle, borrower).expect("position exists");
    println!("\nETH price declines to 3,300 USD");
    println!("health factor:       {}", position.health_factor().unwrap());
    assert!(position.is_liquidatable());

    // --- A liquidator repays 50 % of the debt at the fixed spread -----------
    let liquidator = Address::from_seed(3);
    chain.fund(liquidator, Token::USDC, Wad::from_int(4_200));
    let mut receipt = None;
    let outcome = chain.execute(liquidator, 120, 500_000, "liquidation call", |ctx| {
        let r = pool
            .liquidation_call(
                ctx.ledger,
                ctx.events,
                &oracle,
                ctx.block,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                Wad::from_int(4_200),
                false,
            )
            .map_err(|e| e.to_string())?;
        receipt = Some(r);
        Ok(())
    });
    assert!(outcome.is_success());
    let receipt = receipt.expect("liquidation executed");

    println!("\nliquidation settled in tx {}", outcome.receipt.hash);
    println!("debt repaid:         {} USD", receipt.debt_repaid_usd);
    println!("collateral received: {} USD", receipt.collateral_seized_usd);
    println!(
        "liquidator profit:   {} USD (the paper's example: 420 USD)",
        receipt.gross_profit_usd()
    );
    println!(
        "health factor after: {}",
        receipt.health_factor_after.expect("debt remains")
    );
    println!(
        "\nliquidation event recorded on-chain: {} event(s) in the log",
        chain.events().len()
    );
}
