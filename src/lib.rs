//! # defi-liquidations-suite
//!
//! Umbrella facade over the `defi-liquidations` reproduction workspace, the
//! Rust implementation of
//! *An Empirical Study of DeFi Liquidations: Incentives, Risks, and
//! Instabilities* (Qin, Zhou, Gamito, Jovanovic, Gervais — ACM IMC 2021).
//!
//! This crate exists so the workspace-level examples and integration tests can
//! address every subsystem behind a single dependency. The individual crates
//! are:
//!
//! | Crate | Role |
//! |---|---|
//! | [`types`] | Fixed-point arithmetic, addresses, tokens, block/time mapping |
//! | [`chain`] | Ethereum-like blockchain simulator (blocks, gas, mempool, events, archive queries) |
//! | [`oracle`] | Price oracles and synthetic/scripted price processes |
//! | [`amm`] | Constant-product AMM used by flash-loan liquidators |
//! | [`lending`] | Aave V1/V2, Compound, dYdX, MakerDAO protocol implementations and flash loans |
//! | [`sim`] | Agent-based simulation engine and the two-year study scenario |
//! | [`analytics`] | Measurement pipeline reproducing every table and figure |
//! | [`core`] | The paper's contribution: liquidation models, optimal strategy, comparison methodology |

pub use defi_amm as amm;
pub use defi_analytics as analytics;
pub use defi_chain as chain;
pub use defi_core as core;
pub use defi_lending as lending;
pub use defi_oracle as oracle;
pub use defi_sim as sim;
pub use defi_types as types;

/// Convenience prelude re-exporting the items used by almost every example.
pub mod prelude {
    pub use defi_core::prelude::*;
    pub use defi_types::{Address, BlockNumber, Token, Wad};
}
