//! # defi-liquidations-suite
//!
//! Umbrella facade over the `defi-liquidations` reproduction workspace, the
//! Rust implementation of
//! *An Empirical Study of DeFi Liquidations: Incentives, Risks, and
//! Instabilities* (Qin, Zhou, Gamito, Jovanovic, Gervais — ACM IMC 2021).
//!
//! This crate exists so the workspace-level examples and integration tests can
//! address every subsystem behind a single dependency. The individual crates
//! are:
//!
//! | Crate | Role |
//! |---|---|
//! | [`types`] | Fixed-point arithmetic, addresses, tokens, block/time mapping |
//! | [`chain`] | Ethereum-like blockchain simulator (blocks, gas, mempool, events, archive queries) |
//! | [`oracle`] | Price oracles and synthetic/scripted price processes |
//! | [`amm`] | Constant-product AMM used by flash-loan liquidators |
//! | [`lending`] | Aave V1/V2, Compound, dYdX, MakerDAO implementations behind the unified, object-safe [`lending::LendingProtocol`] trait, plus flash loans |
//! | [`sim`] | Agent-based simulation engine driving a `ProtocolRegistry` of `Box<dyn LendingProtocol>`; engines are assembled with [`sim::EngineBuilder`] |
//! | [`analytics`] | Measurement pipeline reproducing every table and figure |
//! | [`core`] | The paper's contribution: liquidation models, optimal strategy, comparison methodology |
//!
//! Engines are built through the fluent [`sim::EngineBuilder`] API:
//!
//! ```no_run
//! use defi_liquidations_suite::sim::{EngineBuilder, SimConfig};
//!
//! let report = EngineBuilder::new(SimConfig::smoke_test(42)).build().run();
//! assert!(!report.final_positions.is_empty());
//! ```
//!
//! and any [`lending::LendingProtocol`] implementation — a stock platform
//! with altered parameters, or an entirely new mechanism — can be plugged in
//! with `EngineBuilder::with_protocol` without touching the engine.

#![forbid(unsafe_code)]

pub use defi_amm as amm;
pub use defi_analytics as analytics;
pub use defi_chain as chain;
pub use defi_core as core;
pub use defi_lending as lending;
pub use defi_oracle as oracle;
pub use defi_sim as sim;
pub use defi_types as types;

/// Convenience prelude re-exporting the items used by almost every example.
pub mod prelude {
    pub use defi_core::prelude::*;
    pub use defi_types::{Address, BlockNumber, Token, Wad};
}
