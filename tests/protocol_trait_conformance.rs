//! Trait-conformance tests for the unified `LendingProtocol` API.
//!
//! Each of the five studied platforms is driven through the same life cycle —
//! deposit → borrow → price drop → liquidation — purely via
//! `&mut dyn LendingProtocol`, and the resulting events and position
//! snapshots are checked against the mechanism's defining equations: the
//! Eq. 1 fixed-spread claim rule for Aave V1/V2, Compound and dYdX, and the
//! bite → tend/dent bid → deal flow for MakerDAO. A final test assembles a
//! full engine through `EngineBuilder` and checks every platform produces
//! liquidation activity through the registry.

use defi_liquidations_suite::chain::{ChainEvent, Ledger};
use defi_liquidations_suite::lending::{
    aave_v1, aave_v2, compound, dydx, maker_protocol, LendingProtocol, LiquidationExecution,
    LiquidationRequest, MechanismKind, ProtocolError,
};
use defi_liquidations_suite::oracle::{OracleConfig, PriceOracle};
use defi_liquidations_suite::prelude::*;
use defi_liquidations_suite::sim::{EngineBuilder, SimConfig};
use defi_liquidations_suite::types::{Platform, Token};

fn test_oracle() -> PriceOracle {
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
    oracle.set_price(0, Token::USDC, Wad::ONE);
    oracle.set_price(0, Token::DAI, Wad::ONE);
    oracle
}

/// Drive one fixed-spread platform through the full life cycle via the trait
/// object and verify the liquidation settles per the Eq. 1 claim rule.
fn drive_fixed_spread(mut protocol: Box<dyn LendingProtocol>) {
    let platform = protocol.platform();
    assert_eq!(protocol.mechanism(), MechanismKind::FixedSpread);
    let mut oracle = test_oracle();
    let mut ledger = Ledger::new();
    let mut events = Vec::new();

    // Genesis liquidity so the borrower can draw USDC.
    let lender = Address::from_seed(1);
    ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
    protocol
        .deposit(
            &mut ledger,
            &mut events,
            lender,
            Token::USDC,
            Wad::from_int(1_000_000),
        )
        .unwrap();

    // Deposit 3 ETH, borrow ~98% of the reported borrowing capacity.
    let borrower = Address::from_seed(2);
    ledger.mint(borrower, Token::ETH, Wad::from_int(3));
    protocol
        .deposit(
            &mut ledger,
            &mut events,
            borrower,
            Token::ETH,
            Wad::from_int(3),
        )
        .unwrap();
    let capacity = protocol
        .position(&oracle, borrower)
        .expect("position exists after deposit")
        .borrowing_capacity();
    let borrow = Wad::from_f64(capacity.to_f64() * 0.98);
    protocol
        .borrow(
            &mut ledger,
            &mut events,
            &oracle,
            1,
            borrower,
            Token::USDC,
            borrow,
        )
        .unwrap();
    assert!(
        protocol.liquidatable(&oracle).is_empty(),
        "{platform}: freshly opened position must be healthy"
    );

    // A 15% ETH decline tips the position over.
    oracle.set_price(2, Token::ETH, Wad::from_f64(3_500.0 * 0.85));
    let opportunities = protocol.liquidatable(&oracle);
    assert_eq!(
        opportunities.len(),
        1,
        "{platform}: expected one opportunity"
    );
    let opportunity = &opportunities[0];
    assert_eq!(opportunity.platform, platform);
    assert_eq!(opportunity.borrower, borrower);
    assert_eq!(opportunity.mechanism, MechanismKind::FixedSpread);
    let hf_before = opportunity.position.health_factor().unwrap();
    assert!(hf_before < Wad::ONE);

    // Repay up to the close factor; claim follows Eq. 1.
    let debt_before = opportunity.position.total_debt_value();
    let spread = opportunity
        .position
        .collateral
        .iter()
        .find(|c| c.token == Token::ETH)
        .unwrap()
        .liquidation_spread;
    let close_factor = protocol.close_factor();
    let repay_amount = debt_before.checked_mul(close_factor).unwrap();

    let liquidator = Address::from_seed(3);
    ledger.mint(liquidator, Token::USDC, repay_amount);
    let request = LiquidationRequest::FixedSpread {
        liquidator,
        borrower,
        debt_token: Token::USDC,
        collateral_token: Token::ETH,
        repay_amount,
        used_flash_loan: false,
    };
    let execution = protocol
        .execute_liquidation(&mut ledger, &mut events, &oracle, 2, &request)
        .unwrap();
    let LiquidationExecution::FixedSpread(receipt) = execution else {
        panic!("{platform}: fixed-spread execution must yield a receipt");
    };

    // Claim rule: seized value = repaid value × (1 + LS), within fixed-point
    // rounding of the price division.
    let expected_claim = receipt
        .debt_repaid_usd
        .checked_mul(Wad::ONE.saturating_add(spread))
        .unwrap();
    let relative_error = (receipt.collateral_seized_usd.to_f64() - expected_claim.to_f64()).abs()
        / expected_claim.to_f64();
    assert!(
        relative_error < 1e-9,
        "{platform}: claim {} != repaid × (1+LS) {}",
        receipt.collateral_seized_usd,
        expected_claim
    );
    assert!(receipt.gross_profit_usd() > Wad::ZERO);

    // The position book reflects the settlement: debt reduced by the repaid
    // amount, and the close factor was honoured.
    let position_after = protocol.position(&oracle, borrower).unwrap();
    let debt_after = position_after.total_debt_value();
    assert!(
        debt_after.to_f64() <= debt_before.to_f64() - receipt.debt_repaid_usd.to_f64() + 1.0,
        "{platform}: debt must shrink by the repaid amount"
    );
    if close_factor < Wad::ONE {
        let hf_after = position_after.health_factor().unwrap();
        assert!(hf_after > hf_before, "{platform}: HF must improve");
    } else {
        // dYdX's 100% close factor clears the debt entirely.
        assert!(
            debt_after.is_zero(),
            "{platform}: full close factor clears debt"
        );
    }

    // The event log carries a platform-tagged liquidation with the numbers
    // from the receipt.
    let logged = events
        .iter()
        .find_map(|e| match e {
            ChainEvent::Liquidation(ev) if ev.platform == platform => Some(ev.clone()),
            _ => None,
        })
        .expect("liquidation event emitted");
    assert_eq!(logged.borrower, borrower);
    assert_eq!(logged.liquidator, liquidator);
    assert_eq!(logged.debt_repaid, receipt.debt_repaid);
    assert_eq!(logged.collateral_seized, receipt.collateral_seized);
    assert!(!logged.used_flash_loan);
}

#[test]
fn aave_v1_conforms_to_the_unified_protocol_api() {
    drive_fixed_spread(Box::new(aave_v1()));
}

#[test]
fn aave_v2_conforms_to_the_unified_protocol_api() {
    drive_fixed_spread(Box::new(aave_v2()));
}

#[test]
fn compound_conforms_to_the_unified_protocol_api() {
    drive_fixed_spread(Box::new(compound()));
}

#[test]
fn dydx_conforms_to_the_unified_protocol_api() {
    drive_fixed_spread(Box::new(dydx()));
}

/// MakerDAO runs the same life cycle through the same trait methods, with the
/// liquidation resolving as bite → bid → deal instead of one atomic call.
#[test]
fn makerdao_conforms_to_the_unified_protocol_api() {
    let mut protocol: Box<dyn LendingProtocol> = Box::new(maker_protocol());
    assert_eq!(protocol.platform(), Platform::MakerDao);
    assert_eq!(protocol.mechanism(), MechanismKind::Auction);
    let mut oracle = test_oracle();
    let mut ledger = Ledger::new();
    let mut events = Vec::new();

    // Deposit 3 ETH, draw DAI against the reported capacity (which encodes
    // the 150% liquidation ratio as LT = 1/1.5).
    let borrower = Address::from_seed(2);
    ledger.mint(borrower, Token::ETH, Wad::from_int(3));
    protocol
        .deposit(
            &mut ledger,
            &mut events,
            borrower,
            Token::ETH,
            Wad::from_int(3),
        )
        .unwrap();
    let capacity = protocol
        .position(&oracle, borrower)
        .unwrap()
        .borrowing_capacity();
    let expected_capacity = 3.0 * 3_500.0 / 1.5;
    assert!((capacity.to_f64() - expected_capacity).abs() < 1.0);
    let borrow = Wad::from_f64(capacity.to_f64() * 0.98);
    protocol
        .borrow(
            &mut ledger,
            &mut events,
            &oracle,
            1,
            borrower,
            Token::DAI,
            borrow,
        )
        .unwrap();
    assert!(protocol.liquidatable(&oracle).is_empty());

    // The same 15% decline trips the 150% ratio.
    oracle.set_price(2, Token::ETH, Wad::from_f64(3_500.0 * 0.85));
    let opportunities = protocol.liquidatable(&oracle);
    assert_eq!(opportunities.len(), 1);
    assert_eq!(opportunities[0].mechanism, MechanismKind::Auction);

    // bite: the CDP's collateral moves into an auction, debt grows by the
    // 13% penalty.
    let keeper = Address::from_seed(3);
    let start = LiquidationRequest::StartAuction {
        keeper,
        borrower: opportunities[0].borrower,
    };
    let LiquidationExecution::AuctionStarted(auction_id) = protocol
        .execute_liquidation(&mut ledger, &mut events, &oracle, 10, &start)
        .unwrap()
    else {
        panic!("expected an auction start");
    };
    let snapshot = protocol.auction_snapshot(auction_id).unwrap();
    assert_eq!(snapshot.collateral, Wad::from_int(3));
    let expected_debt = borrow.checked_mul(Wad::from_f64(1.13)).unwrap();
    assert!((snapshot.debt.to_f64() - expected_debt.to_f64()).abs() < 1e-6);
    assert!(events
        .iter()
        .any(|e| matches!(e, ChainEvent::AuctionStarted { .. })));

    // One full-debt tend bid flips the auction to the dent phase.
    ledger.mint(keeper, Token::DAI, snapshot.debt);
    let bid = LiquidationRequest::AuctionBid {
        bidder: keeper,
        auction_id,
        debt_bid: snapshot.debt,
        collateral_bid: Wad::ZERO,
    };
    protocol
        .execute_liquidation(&mut ledger, &mut events, &oracle, 11, &bid)
        .unwrap();

    // deal after the bid-duration condition: the keeper wins the collateral,
    // the event log carries the finalisation, the CDP book is empty.
    let params = protocol.auction_params().unwrap();
    let end = 11 + params.bid_duration_blocks;
    assert!(protocol.can_finalize_auction(auction_id, end));
    let settle = LiquidationRequest::SettleAuction {
        caller: keeper,
        auction_id,
    };
    let LiquidationExecution::AuctionSettled(outcome) = protocol
        .execute_liquidation(&mut ledger, &mut events, &oracle, end, &settle)
        .unwrap()
    else {
        panic!("expected a settlement");
    };
    assert_eq!(outcome.winner, Some(keeper));
    assert_eq!(ledger.balance(keeper, Token::ETH), Wad::from_int(3));
    assert!(events
        .iter()
        .any(|e| matches!(e, ChainEvent::AuctionFinalized { .. })));
    let position_after = protocol.position(&oracle, borrower).unwrap();
    assert!(position_after.total_debt_value().is_zero());
    assert!(position_after.total_collateral_value().is_zero());
}

/// Adversarial edge cases on a fixed-spread platform: over-repayment, a
/// liquidation request above the close factor, and liquidating a healthy
/// position must each come back as a typed error — never a panic, never a
/// silent clamp.
fn drive_fixed_spread_adversarial(mut protocol: Box<dyn LendingProtocol>) {
    let platform = protocol.platform();
    let mut oracle = test_oracle();
    let mut ledger = Ledger::new();
    let mut events = Vec::new();

    let lender = Address::from_seed(1);
    ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
    protocol
        .deposit(
            &mut ledger,
            &mut events,
            lender,
            Token::USDC,
            Wad::from_int(1_000_000),
        )
        .unwrap();
    let borrower = Address::from_seed(2);
    ledger.mint(borrower, Token::ETH, Wad::from_int(3));
    protocol
        .deposit(
            &mut ledger,
            &mut events,
            borrower,
            Token::ETH,
            Wad::from_int(3),
        )
        .unwrap();
    let capacity = protocol
        .position(&oracle, borrower)
        .unwrap()
        .borrowing_capacity();
    let borrow = Wad::from_f64(capacity.to_f64() * 0.95);
    protocol
        .borrow(
            &mut ledger,
            &mut events,
            &oracle,
            1,
            borrower,
            Token::USDC,
            borrow,
        )
        .unwrap();

    // Repaying double the outstanding debt is rejected, and the position is
    // untouched (no partial clamp happened behind the error).
    let debt_before = protocol
        .position(&oracle, borrower)
        .unwrap()
        .total_debt_value();
    ledger.mint(borrower, Token::USDC, borrow);
    let over_repay = borrow.checked_mul(Wad::from_int(2)).unwrap();
    let err = protocol
        .repay(
            &mut ledger,
            &mut events,
            2,
            borrower,
            Token::USDC,
            over_repay,
        )
        .unwrap_err();
    assert!(
        matches!(err, ProtocolError::RepayExceedsOutstanding { .. }),
        "{platform}: over-repay must be typed, got {err}"
    );
    assert_eq!(
        protocol
            .position(&oracle, borrower)
            .unwrap()
            .total_debt_value(),
        debt_before,
        "{platform}: the rejected repayment must not move the book"
    );

    // Liquidating while the position is healthy is rejected.
    let liquidator = Address::from_seed(3);
    ledger.mint(liquidator, Token::USDC, over_repay);
    let healthy = LiquidationRequest::FixedSpread {
        liquidator,
        borrower,
        debt_token: Token::USDC,
        collateral_token: Token::ETH,
        repay_amount: Wad::from_int(100),
        used_flash_loan: false,
    };
    let err = protocol
        .execute_liquidation(&mut ledger, &mut events, &oracle, 2, &healthy)
        .unwrap_err();
    assert!(
        matches!(err, ProtocolError::NotLiquidatable(_)),
        "{platform}: healthy liquidation must be typed, got {err}"
    );

    // Once liquidatable, requesting double the whole debt exceeds every
    // platform's close factor (even dYdX's 100%): typed error, and the
    // position is untouched.
    oracle.set_price(3, Token::ETH, Wad::from_f64(3_500.0 * 0.80));
    assert_eq!(protocol.liquidatable(&oracle).len(), 1);
    let above_cap = LiquidationRequest::FixedSpread {
        liquidator,
        borrower,
        debt_token: Token::USDC,
        collateral_token: Token::ETH,
        repay_amount: over_repay,
        used_flash_loan: false,
    };
    let debt_before = protocol
        .position(&oracle, borrower)
        .unwrap()
        .total_debt_value();
    let err = protocol
        .execute_liquidation(&mut ledger, &mut events, &oracle, 3, &above_cap)
        .unwrap_err();
    assert!(
        matches!(err, ProtocolError::ExceedsCloseFactor { .. }),
        "{platform}: above-close-factor request must be typed, got {err}"
    );
    assert_eq!(
        protocol
            .position(&oracle, borrower)
            .unwrap()
            .total_debt_value(),
        debt_before,
        "{platform}: the rejected liquidation must not move the book"
    );
}

#[test]
fn aave_v1_rejects_adversarial_requests_with_typed_errors() {
    drive_fixed_spread_adversarial(Box::new(aave_v1()));
}

#[test]
fn aave_v2_rejects_adversarial_requests_with_typed_errors() {
    drive_fixed_spread_adversarial(Box::new(aave_v2()));
}

#[test]
fn compound_rejects_adversarial_requests_with_typed_errors() {
    drive_fixed_spread_adversarial(Box::new(compound()));
}

#[test]
fn dydx_rejects_adversarial_requests_with_typed_errors() {
    drive_fixed_spread_adversarial(Box::new(dydx()));
}

/// MakerDAO's adversarial cases: over-repaying a CDP, and bidding on (or
/// re-settling) an already-settled auction.
#[test]
fn makerdao_rejects_adversarial_requests_with_typed_errors() {
    let mut protocol: Box<dyn LendingProtocol> = Box::new(maker_protocol());
    let mut oracle = test_oracle();
    let mut ledger = Ledger::new();
    let mut events = Vec::new();

    let borrower = Address::from_seed(2);
    ledger.mint(borrower, Token::ETH, Wad::from_int(10));
    protocol
        .deposit(
            &mut ledger,
            &mut events,
            borrower,
            Token::ETH,
            Wad::from_int(10),
        )
        .unwrap();
    protocol
        .borrow(
            &mut ledger,
            &mut events,
            &oracle,
            1,
            borrower,
            Token::DAI,
            Wad::from_int(20_000),
        )
        .unwrap();

    // Over-repaying the CDP is a typed error, not a clamp.
    ledger.mint(borrower, Token::DAI, Wad::from_int(50_000));
    let err = protocol
        .repay(
            &mut ledger,
            &mut events,
            2,
            borrower,
            Token::DAI,
            Wad::from_int(30_000),
        )
        .unwrap_err();
    assert!(matches!(err, ProtocolError::RepayExceedsOutstanding { .. }));

    // Run a full auction to settlement…
    oracle.set_price(2, Token::ETH, Wad::from_int(2_500));
    let keeper = Address::from_seed(11);
    let LiquidationExecution::AuctionStarted(auction_id) = protocol
        .execute_liquidation(
            &mut ledger,
            &mut events,
            &oracle,
            10,
            &LiquidationRequest::StartAuction { keeper, borrower },
        )
        .unwrap()
    else {
        panic!("expected an auction start");
    };
    let debt = protocol.auction_snapshot(auction_id).unwrap().debt;
    ledger.mint(keeper, Token::DAI, debt);
    protocol
        .execute_liquidation(
            &mut ledger,
            &mut events,
            &oracle,
            11,
            &LiquidationRequest::AuctionBid {
                bidder: keeper,
                auction_id,
                debt_bid: debt,
                collateral_bid: Wad::ZERO,
            },
        )
        .unwrap();
    let end = 11 + protocol.auction_params().unwrap().bid_duration_blocks;
    protocol
        .execute_liquidation(
            &mut ledger,
            &mut events,
            &oracle,
            end,
            &LiquidationRequest::SettleAuction {
                caller: keeper,
                auction_id,
            },
        )
        .unwrap();

    // …then bidding on the settled auction is a typed error,
    let late_bidder = Address::from_seed(12);
    ledger.mint(late_bidder, Token::DAI, debt);
    let err = protocol
        .execute_liquidation(
            &mut ledger,
            &mut events,
            &oracle,
            end + 1,
            &LiquidationRequest::AuctionBid {
                bidder: late_bidder,
                auction_id,
                debt_bid: debt,
                collateral_bid: Wad::ZERO,
            },
        )
        .unwrap_err();
    assert!(matches!(err, ProtocolError::AuctionAlreadyFinalized));

    // …as is settling it a second time or bidding on a non-existent auction.
    let err = protocol
        .execute_liquidation(
            &mut ledger,
            &mut events,
            &oracle,
            end + 2,
            &LiquidationRequest::SettleAuction {
                caller: keeper,
                auction_id,
            },
        )
        .unwrap_err();
    assert!(matches!(err, ProtocolError::AuctionAlreadyFinalized));
    let err = protocol
        .execute_liquidation(
            &mut ledger,
            &mut events,
            &oracle,
            end + 3,
            &LiquidationRequest::AuctionBid {
                bidder: late_bidder,
                auction_id: auction_id + 999,
                debt_bid: debt,
                collateral_bid: Wad::ZERO,
            },
        )
        .unwrap_err();
    assert!(matches!(err, ProtocolError::UnknownAuction(_)));
}

/// A liquidation request from the wrong mechanism is rejected uniformly.
#[test]
fn mechanism_mismatch_is_rejected_across_the_registry() {
    let mut oracle = test_oracle();
    oracle.set_price(0, Token::WBTC, Wad::from_int(50_000));
    let mut ledger = Ledger::new();
    let mut events = Vec::new();
    let someone = Address::from_seed(9);

    let mut fixed: Box<dyn LendingProtocol> = Box::new(compound());
    let bite = LiquidationRequest::StartAuction {
        keeper: someone,
        borrower: someone,
    };
    assert!(fixed
        .execute_liquidation(&mut ledger, &mut events, &oracle, 1, &bite)
        .is_err());

    let mut maker: Box<dyn LendingProtocol> = Box::new(maker_protocol());
    let call = LiquidationRequest::FixedSpread {
        liquidator: someone,
        borrower: someone,
        debt_token: Token::DAI,
        collateral_token: Token::ETH,
        repay_amount: Wad::ONE,
        used_flash_loan: false,
    };
    assert!(maker
        .execute_liquidation(&mut ledger, &mut events, &oracle, 1, &call)
        .is_err());
}

/// The registry path end to end: an engine assembled through `EngineBuilder`
/// produces both fixed-spread liquidations and finalised auctions, and its
/// final position book covers every registered platform.
#[test]
fn engine_builder_runs_all_platforms_through_the_registry() {
    use defi_liquidations_suite::chain::{EventFilter, EventKind};

    let report = EngineBuilder::new(SimConfig::smoke_test(2021))
        .build()
        .run();

    let liquidations = report
        .chain
        .query_events(&EventFilter::any().kind(EventKind::Liquidation))
        .len();
    let auctions = report
        .chain
        .query_events(&EventFilter::any().kind(EventKind::AuctionFinalized))
        .len();
    assert!(
        liquidations > 10,
        "got {liquidations} fixed-spread liquidations"
    );
    assert!(auctions > 0, "got {auctions} finalised auctions");
    for platform in Platform::ALL {
        assert!(
            report.final_positions.contains_key(&platform),
            "{platform} missing from the final snapshot"
        );
    }
}

/// The PR 5 discovery surfaces every implementation must satisfy:
/// `reference_positions` is the cache-less shadow of `book_positions`, the
/// banded `for_each_at_risk` equals the exact health-factor filter, and
/// fixed-spread markets expose their per-market risk parameters.
fn check_discovery_surfaces(protocol: &mut dyn LendingProtocol, oracle: &PriceOracle) {
    let platform = protocol.platform();
    let shadow = protocol.reference_positions(oracle);
    let cached = protocol.book_positions(oracle);
    assert_eq!(
        cached, shadow,
        "{platform}: book_positions must equal the from-scratch reference"
    );

    let rescue = Wad::from_f64(defi_liquidations_suite::lending::RESCUE_BAND_HF);
    let releverage = Wad::from_f64(defi_liquidations_suite::lending::RELEVERAGE_BAND_HF);
    let expected: Vec<Address> = shadow
        .iter()
        .filter(|p| {
            p.health_factor()
                .is_some_and(|hf| hf < rescue || hf > releverage)
        })
        .map(|p| p.owner)
        .collect();
    let mut seen: Vec<Address> = Vec::new();
    protocol.for_each_at_risk(oracle, rescue, releverage, &mut |p| seen.push(p.owner));
    assert_eq!(
        seen, expected,
        "{platform}: at-risk iteration must equal the exact HF filter"
    );

    if protocol.mechanism() == MechanismKind::FixedSpread {
        for token in protocol.listed_tokens() {
            let params = protocol
                .market_risk_params(token)
                .unwrap_or_else(|| panic!("{platform}: {token} has no risk parameters"));
            assert!(!params.liquidation_spread.is_zero());
        }
    }
}

/// Both mechanisms satisfy the shadow/banded discovery contract after a
/// price move pushes positions across the bands.
#[test]
fn discovery_surfaces_conform_across_mechanisms() {
    let mut oracle = test_oracle();
    let mut ledger = Ledger::new();
    let mut events = Vec::new();

    let mut fixed: Box<dyn LendingProtocol> = Box::new(compound());
    let lender = Address::from_seed(41);
    ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
    fixed
        .deposit(
            &mut ledger,
            &mut events,
            lender,
            Token::USDC,
            Wad::from_int(1_000_000),
        )
        .unwrap();
    let borrower = Address::from_seed(42);
    ledger.mint(borrower, Token::ETH, Wad::from_int(3));
    fixed
        .deposit(
            &mut ledger,
            &mut events,
            borrower,
            Token::ETH,
            Wad::from_int(3),
        )
        .unwrap();
    fixed
        .borrow(
            &mut ledger,
            &mut events,
            &oracle,
            1,
            borrower,
            Token::USDC,
            Wad::from_int(7_500),
        )
        .unwrap();

    let mut maker: Box<dyn LendingProtocol> = Box::new(maker_protocol());
    let owner = Address::from_seed(43);
    ledger.mint(owner, Token::ETH, Wad::from_int(10));
    maker
        .deposit(
            &mut ledger,
            &mut events,
            owner,
            Token::ETH,
            Wad::from_int(10),
        )
        .unwrap();
    maker
        .borrow(
            &mut ledger,
            &mut events,
            &oracle,
            1,
            owner,
            Token::DAI,
            Wad::from_int(20_000),
        )
        .unwrap();

    check_discovery_surfaces(fixed.as_mut(), &oracle);
    check_discovery_surfaces(maker.as_mut(), &oracle);

    // Crash ETH: both books cross into at-risk / liquidatable bands, and the
    // surfaces must still agree with the shadow.
    oracle.set_price(2, Token::ETH, Wad::from_int(2_600));
    check_discovery_surfaces(fixed.as_mut(), &oracle);
    check_discovery_surfaces(maker.as_mut(), &oracle);
    assert!(!fixed.liquidatable(&oracle).is_empty());
    assert!(!maker.liquidatable(&oracle).is_empty());
}
