//! Property-based tests of the core invariants, using proptest.
//!
//! These cover the numeric substrate (Wad arithmetic), the position model
//! (Eqs. 1–4), the strategy layer (Algorithm 2 and Appendix C), the
//! sensitivity algorithm (Algorithm 1), the ledger's conservation/atomicity
//! guarantees and the AMM's constant-product invariant.

use proptest::prelude::*;

use defi_liquidations_suite::amm::{ConstantProductPool, PoolConfig};
use defi_liquidations_suite::chain::Ledger;
use defi_liquidations_suite::core::bad_debt::{classify_bad_debt, BadDebtType};
use defi_liquidations_suite::core::config::{
    health_factor_after_liquidation, is_sound_fixed_spread_config,
};
use defi_liquidations_suite::core::params::RiskParams;
use defi_liquidations_suite::core::position::{CollateralHolding, DebtHolding, Position};
use defi_liquidations_suite::core::sensitivity::liquidatable_collateral;
use defi_liquidations_suite::core::strategy::{
    optimal_liquidation, optimal_profit_closed_form, up_to_close_factor_liquidation,
};
use defi_liquidations_suite::prelude::*;

fn wad(value: f64) -> Wad {
    Wad::from_f64(value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wad multiplication/division round-trips within one unit of precision.
    #[test]
    fn wad_mul_div_roundtrip(a in 1u64..1_000_000_000, b in 1u64..1_000_000) {
        let a = Wad::from_int(a);
        let b = Wad::from_int(b);
        let product = a.checked_mul(b).unwrap();
        let back = product.checked_div(b).unwrap();
        prop_assert!(back.abs_diff(a).to_f64() < 1e-9);
    }

    /// Wad addition/subtraction are exact inverses when no underflow occurs.
    #[test]
    fn wad_add_sub_inverse(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let a = Wad::from_int(a);
        let b = Wad::from_int(b);
        prop_assert_eq!((a + b) - b, a);
    }

    /// Fractional mul/div round-trip: `(a × b) / b` recovers `a` up to the
    /// truncation of the 18-decimal representation, amplified by at most
    /// `1/b` when dividing back.
    #[test]
    fn wad_fractional_mul_div_roundtrip(a in 0.001f64..1e12, b in 0.001f64..1e6) {
        let wa = wad(a);
        let wb = wad(b);
        prop_assume!(!wa.is_zero() && !wb.is_zero());
        let product = wa.checked_mul(wb).unwrap();
        let back = product.checked_div(wb).unwrap();
        prop_assert!(
            back.abs_diff(wa).to_f64() <= 1e-12,
            "round-trip drift: {} -> {}", wa, back
        );
        // Division truncates, so the round-trip never overshoots.
        prop_assert!(back <= wa);
    }

    /// Saturation at the bounds: the saturating operators clamp, the checked
    /// operators return typed errors, and neither wraps.
    #[test]
    fn wad_saturates_at_bounds(raw in 1u128..u128::MAX / 2) {
        let x = Wad::from_raw(raw);
        prop_assert_eq!(Wad::MAX.saturating_add(x), Wad::MAX);
        prop_assert_eq!(Wad::ZERO.saturating_sub(x), Wad::ZERO);
        prop_assert!(Wad::MAX.checked_add(x).is_err());
        prop_assert!(Wad::ZERO.checked_sub(x).is_err());
        prop_assert!(x.checked_div(Wad::ZERO).is_err());
        // Multiplying by one is always exact, even at the boundary.
        prop_assert_eq!(Wad::MAX.checked_mul(Wad::ONE).unwrap(), Wad::MAX);
        prop_assert_eq!(x.checked_mul(Wad::ONE).unwrap(), x);
        // MAX × anything > 1 overflows as an error, not a wrap.
        prop_assert!(Wad::MAX.checked_mul(Wad::from_f64(1.000001)).is_err());
    }

    /// Non-finite and non-positive `f64` inputs saturate to zero instead of
    /// producing garbage fixed-point values.
    #[test]
    fn wad_from_f64_rejects_degenerate_inputs(x in 0.001f64..1e9) {
        prop_assert_eq!(Wad::from_f64(-x), Wad::ZERO);
        prop_assert_eq!(Wad::from_f64(f64::NAN), Wad::ZERO);
        prop_assert_eq!(Wad::from_f64(f64::INFINITY), Wad::ZERO);
        prop_assert!((Wad::from_f64(x).to_f64() - x).abs() <= 1e-6 * x.max(1.0));
    }

    /// Eq. 4 monotonicity: lowering the collateral price never makes a
    /// liquidatable position healthy — the health factor is non-increasing
    /// in the collateral price while the debt is price-independent.
    #[test]
    fn lowering_collateral_price_never_heals_a_liquidatable_position(
        amount in 0.5f64..10_000.0,
        price in 1.0f64..10_000.0,
        lt in 0.4f64..0.9,
        over_usage in 1.001f64..3.0,
        decline in 0.001f64..0.999,
    ) {
        // Debt sized so HF = 1/over_usage < 1 at the starting price.
        let debt_usd = amount * price * lt * over_usage;
        let at_price = |p: f64| {
            Position::new(Address::ZERO)
                .with_collateral(CollateralHolding {
                    token: Token::ETH,
                    amount: wad(amount),
                    value_usd: wad(amount * p),
                    liquidation_threshold: wad(lt),
                    liquidation_spread: wad(0.05),
                })
                .with_debt(DebtHolding {
                    token: Token::DAI,
                    amount: wad(debt_usd),
                    value_usd: wad(debt_usd),
                })
        };
        let before = at_price(price);
        prop_assume!(before.is_liquidatable());
        let after = at_price(price * (1.0 - decline));
        prop_assert!(
            after.is_liquidatable(),
            "price decline healed the position: HF {} -> {:?}",
            before.health_factor().unwrap(),
            after.health_factor()
        );
        prop_assert!(
            after.health_factor().unwrap() <= before.health_factor().unwrap(),
            "HF increased under a price decline"
        );
    }

    /// Eq. 4: scaling collateral and debt by the same factor leaves the
    /// health factor unchanged (it is a ratio).
    #[test]
    fn health_factor_is_scale_invariant(
        collateral in 1_000.0f64..10_000_000.0,
        ratio in 0.3f64..3.0,
        scale in 0.5f64..50.0,
        lt in 0.4f64..0.9,
    ) {
        let make = |c: f64, d: f64| {
            Position::new(Address::ZERO)
                .with_collateral(CollateralHolding {
                    token: Token::ETH,
                    amount: wad(c),
                    value_usd: wad(c),
                    liquidation_threshold: wad(lt),
                    liquidation_spread: wad(0.05),
                })
                .with_debt(DebtHolding { token: Token::DAI, amount: wad(d), value_usd: wad(d) })
        };
        let debt = collateral * ratio;
        let base = make(collateral, debt).health_factor().unwrap().to_f64();
        let scaled = make(collateral * scale, debt * scale).health_factor().unwrap().to_f64();
        prop_assert!((base - scaled).abs() < 1e-6 * base.max(1.0));
    }

    /// Algorithm 2: whenever both strategies apply, the optimal strategy's
    /// profit is at least the up-to-close-factor profit, matches its closed
    /// form, and the first repayment leaves the position unhealthy.
    #[test]
    fn optimal_strategy_invariants(
        collateral in 2_000.0f64..50_000_000.0,
        hf in 0.55f64..0.999,
        lt in 0.5f64..0.86,
        ls in 0.02f64..0.15,
        cf in 0.2f64..0.8,
    ) {
        let params = RiskParams::new(lt, ls, cf);
        prop_assume!(is_sound_fixed_spread_config(params));
        // Construct a debt so that HF = collateral*LT/debt equals `hf` < 1.
        let debt = collateral * lt / hf;
        let c = wad(collateral);
        let d = wad(debt);
        let base = up_to_close_factor_liquidation(c, d, params).unwrap();
        let optimal = optimal_liquidation(c, d, params).unwrap();
        prop_assert!(optimal.profit >= base.profit);
        // Closed form agreement (Eq. 8) within 0.1% relative error, whenever
        // neither the close-factor cap nor the collateral cap binds (Eq. 8
        // assumes the unconstrained repayments of Eqs. 6–7).
        let closed = optimal_profit_closed_form(c, d, params).to_f64();
        let cf_cap = d.to_f64() * cf;
        let uncapped = optimal.repay_1.to_f64() < cf_cap * 0.999
            && optimal.collateral_claimed.to_f64() < collateral * 0.999;
        if closed > 1.0 && uncapped {
            prop_assert!((optimal.profit.to_f64() - closed).abs() / closed < 1e-3);
        }
        // The first liquidation must keep HF ≤ 1 (up to rounding dust).
        if optimal.repay_1 < d {
            let hf_mid = health_factor_after_liquidation(c, d, optimal.repay_1, params).unwrap();
            prop_assert!(hf_mid.to_f64() <= 1.0 + 1e-9);
        }
    }

    /// Appendix C: for sound configurations, a close-factor liquidation of an
    /// over-collateralized liquidatable position increases the health factor.
    #[test]
    fn sound_configs_improve_health(
        collateral in 10_000.0f64..1_000_000.0,
        hf in 0.80f64..0.999,
        lt in 0.5f64..0.85,
        ls in 0.02f64..0.12,
    ) {
        let params = RiskParams::new(lt, ls, 0.5);
        prop_assume!(is_sound_fixed_spread_config(params));
        let debt = collateral * lt / hf;
        // Only over-collateralized positions (CR > 1 + LS) are guaranteed to improve.
        prop_assume!(collateral / debt > 1.0 + ls + 0.01);
        let repay = wad(debt * 0.5);
        let before = hf;
        let after = health_factor_after_liquidation(wad(collateral), wad(debt), repay, params)
            .unwrap()
            .to_f64();
        prop_assert!(after > before - 1e-9, "HF {before} -> {after} should not decrease");
    }

    /// Algorithm 1: the liquidatable collateral is monotone in the number of
    /// positions (adding a position never reduces it) and zero for tokens not
    /// present in any position.
    #[test]
    fn sensitivity_is_monotone_in_positions(
        sizes in prop::collection::vec((5_000.0f64..500_000.0, 0.5f64..0.95), 1..20),
        decline in 0.05f64..0.95,
    ) {
        let positions: Vec<Position> = sizes
            .iter()
            .enumerate()
            .map(|(i, (collateral, usage))| {
                Position::new(Address::from_seed(i as u64))
                    .with_collateral(CollateralHolding {
                        token: Token::ETH,
                        amount: wad(*collateral / 3_000.0),
                        value_usd: wad(*collateral),
                        liquidation_threshold: wad(0.8),
                        liquidation_spread: wad(0.05),
                    })
                    .with_debt(DebtHolding {
                        token: Token::DAI,
                        amount: wad(collateral * 0.8 * usage),
                        value_usd: wad(collateral * 0.8 * usage),
                    })
            })
            .collect();
        let mut previous = Wad::ZERO;
        for n in 1..=positions.len() {
            let current = liquidatable_collateral(&positions[..n], Token::ETH, decline);
            prop_assert!(current >= previous);
            previous = current;
        }
        prop_assert_eq!(liquidatable_collateral(&positions, Token::WBTC, decline), Wad::ZERO);
    }

    /// Bad-debt classification is consistent: Type I implies CR < 1, and the
    /// same position never classifies as both types.
    #[test]
    fn bad_debt_classification_is_consistent(
        collateral in 100.0f64..100_000.0,
        debt in 100.0f64..100_000.0,
        fee in 1.0f64..500.0,
    ) {
        let position = Position::simple(
            Address::ZERO,
            Token::ETH,
            wad(collateral),
            Token::DAI,
            wad(debt),
            wad(0.75),
            wad(0.08),
        );
        match classify_bad_debt(&position, wad(fee)) {
            BadDebtType::TypeI => prop_assert!(collateral < debt),
            BadDebtType::TypeII => {
                prop_assert!(collateral >= debt);
                prop_assert!(collateral - debt <= fee + 1e-6);
            }
            BadDebtType::None => prop_assert!(collateral - debt > fee - 1e-6 || debt == 0.0),
        }
    }

    /// Ledger conservation: a sequence of transfers never changes the total
    /// supply, and a reverted checkpoint restores every balance.
    #[test]
    fn ledger_conserves_supply_and_reverts(
        transfers in prop::collection::vec((0u64..5, 0u64..5, 1u64..1_000), 1..40),
    ) {
        let mut ledger = Ledger::new();
        for account in 0..5u64 {
            ledger.mint(Address::from_seed(account), Token::DAI, Wad::from_int(10_000));
        }
        let supply_before = ledger.total_supply(Token::DAI);
        let balances_before: Vec<Wad> = (0..5u64)
            .map(|a| ledger.balance(Address::from_seed(a), Token::DAI))
            .collect();

        ledger.begin_checkpoint();
        for (from, to, amount) in &transfers {
            let _ = ledger.transfer(
                Address::from_seed(*from),
                Address::from_seed(*to),
                Token::DAI,
                Wad::from_int(*amount),
            );
        }
        prop_assert_eq!(ledger.total_supply(Token::DAI), supply_before);
        ledger.revert_checkpoint();
        for (i, expected) in balances_before.iter().enumerate() {
            prop_assert_eq!(ledger.balance(Address::from_seed(i as u64), Token::DAI), *expected);
        }
    }

    /// AMM invariant: swaps never decrease x·y (fees make it grow), and the
    /// output is always less than the spot value of the input.
    #[test]
    fn amm_constant_product_invariant(
        eth_reserve in 100u64..100_000,
        price in 100u64..10_000,
        trade in 1u64..5_000,
    ) {
        prop_assume!(trade < eth_reserve * 10);
        let mut ledger = Ledger::new();
        let mut pool = ConstantProductPool::new(
            Address::from_label("prop-pool"),
            PoolConfig::standard(Token::ETH, Token::DAI),
        );
        pool.seed_liquidity(
            &mut ledger,
            Wad::from_int(eth_reserve),
            Wad::from_int(eth_reserve * price),
        );
        let trader = Address::from_seed(1);
        ledger.mint(trader, Token::ETH, Wad::from_int(trade));
        let (a0, b0) = pool.reserves(&ledger);
        let k0 = a0.to_f64() * b0.to_f64();
        let out = pool
            .swap(&mut ledger, trader, Token::ETH, Wad::from_int(trade))
            .unwrap();
        let (a1, b1) = pool.reserves(&ledger);
        let k1 = a1.to_f64() * b1.to_f64();
        prop_assert!(k1 >= k0 * 0.999_999);
        prop_assert!(out.to_f64() <= trade as f64 * price as f64);
    }
}

// ---------------------------------------------------------------------------
// Incremental position books (PR 4): after an arbitrary interleaving of
// deposits / borrows / repayments / price moves / accrual / liquidations, the
// dirty-tracked `PositionBook` cache must equal a from-scratch `positions()`
// rebuild, and the critical-price liquidation index must flag exactly the
// accounts below the liquidation threshold.
// ---------------------------------------------------------------------------

mod incremental_book {
    use defi_liquidations_suite::chain::Ledger;
    use defi_liquidations_suite::lending::{compound, maker_protocol, LendingProtocol};
    use defi_liquidations_suite::oracle::{OracleConfig, PriceOracle};
    use defi_liquidations_suite::prelude::*;
    use proptest::prelude::*;

    fn account(i: u8) -> Address {
        Address::from_seed(7_000 + (i % 6) as u64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Fixed-spread pools: cache ≡ rebuild after arbitrary op sequences.
        #[test]
        fn fixed_spread_cache_equals_scratch_rebuild(
            ops in prop::collection::vec((0u8..7, 0u8..6, 1u32..30_000, 0u16..1_000), 1..40),
        ) {
            let mut protocol = compound();
            let mut ledger = Ledger::new();
            let mut events = Vec::new();
            let mut oracle = PriceOracle::new(OracleConfig::every_update());
            oracle.set_price(0, Token::ETH, Wad::from_int(3_000));
            oracle.set_price(0, Token::USDC, Wad::ONE);
            let lender = Address::from_seed(1);
            ledger.mint(lender, Token::USDC, Wad::from_int(50_000_000));
            protocol
                .deposit(&mut ledger, &mut events, lender, Token::USDC, Wad::from_int(50_000_000))
                .unwrap();
            let mut block: u64 = 1;

            for (selector, who, magnitude, tweak) in ops {
                let address = account(who);
                match selector {
                    0 => {
                        // Deposit ETH collateral.
                        let amount = Wad::from_f64(magnitude as f64 / 1_000.0);
                        ledger.mint(address, Token::ETH, amount);
                        let _ = protocol.deposit(&mut ledger, &mut events, address, Token::ETH, amount);
                    }
                    1 => {
                        // Deposit USDC collateral.
                        let amount = Wad::from_int(magnitude as u64);
                        ledger.mint(address, Token::USDC, amount);
                        let _ = protocol.deposit(&mut ledger, &mut events, address, Token::USDC, amount);
                    }
                    2 => {
                        // Borrow USDC (may exceed capacity and fail: fine).
                        let _ = protocol.borrow(
                            &mut ledger, &mut events, &oracle, block, address,
                            Token::USDC, Wad::from_int(magnitude as u64),
                        );
                    }
                    3 => {
                        // Partial repayment of the outstanding debt.
                        let outstanding = protocol.debt_of(address, Token::USDC);
                        let share = Wad::from_f64((tweak % 999 + 1) as f64 / 1_000.0);
                        let amount = outstanding.checked_mul(share).unwrap_or(Wad::ZERO);
                        if !amount.is_zero() {
                            ledger.mint(address, Token::USDC, amount);
                            let _ = protocol.repay(&mut ledger, &mut events, block, address, Token::USDC, amount);
                        }
                    }
                    4 => {
                        // Price move: ETH swings widely, USDC wobbles.
                        if tweak % 3 == 0 {
                            let wobble = 0.97 + (tweak % 60) as f64 / 1_000.0;
                            oracle.set_price(block, Token::USDC, Wad::from_f64(wobble));
                        } else {
                            let factor = 0.5 + (tweak % 1_000) as f64 / 1_000.0;
                            oracle.set_price(block, Token::ETH, Wad::from_f64(3_000.0 * factor));
                        }
                    }
                    5 => {
                        // Interest accrual.
                        block += (tweak % 500) as u64 + 1;
                        protocol.accrue_all(block);
                    }
                    _ => {
                        // Liquidation attempt (close-factor sized).
                        let outstanding = protocol.debt_of(address, Token::USDC);
                        let repay = outstanding
                            .checked_mul(protocol.config().close_factor)
                            .unwrap_or(Wad::ZERO);
                        if !repay.is_zero() {
                            let liquidator = Address::from_seed(9_999);
                            ledger.mint(liquidator, Token::USDC, repay);
                            let _ = protocol.liquidation_call(
                                &mut ledger, &mut events, &oracle, block,
                                liquidator, address, Token::USDC, Token::ETH, repay, false,
                            );
                        }
                    }
                }

                // Cache ≡ from-scratch rebuild, after every single op.
                let scratch_book: Vec<_> = protocol
                    .positions(&oracle)
                    .into_iter()
                    .filter(|p| !p.total_debt_value().is_zero())
                    .collect();
                let scratch_liquidatable = protocol.liquidatable_accounts(&oracle);
                let scratch_total = protocol
                    .positions(&oracle)
                    .iter()
                    .map(|p| p.total_collateral_value())
                    .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
                prop_assert_eq!(protocol.cached_book(&oracle), scratch_book);
                prop_assert_eq!(protocol.cached_liquidatable_accounts(&oracle), scratch_liquidatable);
                prop_assert_eq!(protocol.total_collateral_value(&oracle), scratch_total);
            }
        }

        /// Maker CDPs: the critical-price index flags exactly the accounts
        /// with HF < 1, and the cached book equals the rebuild.
        #[test]
        fn maker_critical_index_flags_exactly_hf_below_one(
            ops in prop::collection::vec((0u8..6, 0u8..6, 1u32..40_000, 0u16..1_000), 1..40),
        ) {
            let mut maker = maker_protocol();
            let mut ledger = Ledger::new();
            let mut events = Vec::new();
            let mut oracle = PriceOracle::new(OracleConfig::every_update());
            oracle.set_price(0, Token::ETH, Wad::from_int(3_000));
            oracle.set_price(0, Token::DAI, Wad::ONE);
            let mut block: u64 = 1;

            for (selector, who, magnitude, tweak) in ops {
                let owner = account(who);
                block += 1;
                match selector {
                    0 => {
                        let amount = Wad::from_f64(magnitude as f64 / 2_000.0);
                        ledger.mint(owner, Token::ETH, amount);
                        let _ = maker.lock_collateral(&mut ledger, &mut events, owner, Token::ETH, amount);
                    }
                    1 => {
                        let _ = maker.draw_dai(
                            &mut ledger, &mut events, &oracle, owner, Wad::from_int(magnitude as u64),
                        );
                    }
                    2 => {
                        let debt = maker.cdp(owner).map(|c| c.debt).unwrap_or(Wad::ZERO);
                        let share = Wad::from_f64((tweak % 999 + 1) as f64 / 1_000.0);
                        let amount = debt.checked_mul(share).unwrap_or(Wad::ZERO);
                        if !amount.is_zero() {
                            ledger.mint(owner, Token::DAI, amount);
                            let _ = maker.repay_dai(&mut ledger, &mut events, owner, amount);
                        }
                    }
                    3 => {
                        let factor = 0.4 + (tweak % 1_200) as f64 / 1_000.0;
                        oracle.set_price(block, Token::ETH, Wad::from_f64(3_000.0 * factor));
                    }
                    4 => {
                        let _ = maker.free_collateral(
                            &mut ledger, &oracle, owner, Wad::from_f64(magnitude as f64 / 20_000.0),
                        );
                    }
                    _ => {
                        let _ = maker.bite(&mut events, &oracle, block, owner);
                    }
                }

                // The index flags exactly the CDPs whose generic-position
                // health factor is below 1 (PR 3 made HF < 1 coincide with
                // the bite condition), and the cached book is byte-identical
                // to the from-scratch rebuild.
                let hf_below_one: Vec<Address> = maker
                    .positions(&oracle)
                    .into_iter()
                    .filter(|p| p.is_liquidatable())
                    .map(|p| p.owner)
                    .collect();
                let scratch_bite = maker.liquidatable_cdps(&oracle);
                prop_assert_eq!(&scratch_bite, &hf_below_one);
                prop_assert_eq!(maker.cached_liquidatable_cdps(&oracle), scratch_bite);
                prop_assert_eq!(maker.cached_book(&oracle), maker.positions(&oracle));
            }
        }

        /// Oracle-move-only sequences: the per-account term cache must stay
        /// byte-identical to the from-scratch rebuild after every move, and
        /// the closing in-envelope wobble must actually be served by the
        /// term path (reprice of the moved token only) — not vacuously by
        /// full revaluations.
        #[test]
        fn fixed_spread_term_cache_is_exact_under_oracle_moves(
            moves in prop::collection::vec((0u8..3, 0u16..1_000), 1..25),
        ) {
            let mut protocol = compound();
            let mut ledger = Ledger::new();
            let mut events = Vec::new();
            let mut oracle = PriceOracle::new(OracleConfig::every_update());
            oracle.set_price(0, Token::ETH, Wad::from_int(3_000));
            oracle.set_price(0, Token::USDC, Wad::ONE);
            let lender = Address::from_seed(1);
            ledger.mint(lender, Token::USDC, Wad::from_int(50_000_000));
            protocol
                .deposit(&mut ledger, &mut events, lender, Token::USDC, Wad::from_int(50_000_000))
                .unwrap();
            // Borrowers spread from just above the rescue band to deep
            // re-leverage (Compound ETH threshold is 0.75).
            for i in 0..6u64 {
                let borrower = Address::from_seed(7_100 + i);
                ledger.mint(borrower, Token::ETH, Wad::from_int(10));
                protocol
                    .deposit(&mut ledger, &mut events, borrower, Token::ETH, Wad::from_int(10))
                    .unwrap();
                let usage = 0.90 - i as f64 * 0.12;
                protocol
                    .borrow(
                        &mut ledger, &mut events, &oracle, 1, borrower,
                        Token::USDC, Wad::from_f64(10.0 * 3_000.0 * 0.75 * usage),
                    )
                    .unwrap();
            }

            let mut block = 1u64;
            let mut factor = 1.0f64;
            for (kind, tweak) in moves {
                block += 1;
                // Tiny in-envelope wobbles, medium band-crossing moves, and
                // large swings that break every envelope.
                let step = match kind {
                    0 => 0.999 + (tweak % 3) as f64 / 1_000.0,
                    1 => 0.98 + (tweak % 41) as f64 / 1_000.0,
                    _ => 0.70 + (tweak % 601) as f64 / 1_000.0,
                };
                factor = (factor * step).clamp(0.2, 5.0);
                oracle.set_price(block, Token::ETH, Wad::from_f64(3_000.0 * factor));

                let scratch_book: Vec<_> = protocol
                    .positions(&oracle)
                    .into_iter()
                    .filter(|p| !p.total_debt_value().is_zero())
                    .collect();
                prop_assert_eq!(protocol.cached_book(&oracle), scratch_book);
                prop_assert_eq!(
                    protocol.cached_liquidatable_accounts(&oracle),
                    protocol.liquidatable_accounts(&oracle)
                );
            }

            // Deterministic tail: re-anchor every envelope at 3 000, then a
            // 0.05 % wobble every surviving envelope absorbs — it must ride
            // the term path, byte-identically.
            oracle.set_price(block + 1, Token::ETH, Wad::from_int(3_000));
            let _ = protocol.cached_book(&oracle);
            let before = protocol.book_stats().term_reprices;
            oracle.set_price(block + 2, Token::ETH, Wad::from_f64(3_001.5));
            let scratch_book: Vec<_> = protocol
                .positions(&oracle)
                .into_iter()
                .filter(|p| !p.total_debt_value().is_zero())
                .collect();
            prop_assert!(!scratch_book.is_empty());
            prop_assert_eq!(protocol.cached_book(&oracle), scratch_book);
            prop_assert!(protocol.book_stats().term_reprices > before);
        }

        /// Maker: critical-price entries never consult the oracle for their
        /// liquidation verdict, so every price-stale walk of a valued CDP
        /// must be served by the term path — on every move of a random
        /// sequence, byte-identically to the rebuild.
        #[test]
        fn maker_term_cache_is_exact_under_oracle_moves(
            moves in prop::collection::vec(0u16..1_000, 1..25),
        ) {
            let mut maker = maker_protocol();
            let mut ledger = Ledger::new();
            let mut events = Vec::new();
            let mut oracle = PriceOracle::new(OracleConfig::every_update());
            oracle.set_price(0, Token::ETH, Wad::from_int(3_000));
            oracle.set_price(0, Token::DAI, Wad::ONE);
            for i in 0..6u64 {
                let owner = Address::from_seed(7_200 + i);
                ledger.mint(owner, Token::ETH, Wad::from_int(10));
                maker
                    .lock_collateral(&mut ledger, &mut events, owner, Token::ETH, Wad::from_int(10))
                    .unwrap();
                maker
                    .draw_dai(&mut ledger, &mut events, &oracle, owner, Wad::from_int(5_000 + i * 2_000))
                    .unwrap();
            }
            // Prime the book so every CDP is valued and non-dirty.
            let _ = maker.cached_book(&oracle);

            let mut block = 1u64;
            for tweak in moves {
                block += 1;
                let factor = 0.4 + (tweak % 1_200) as f64 / 1_000.0;
                oracle.set_price(block, Token::ETH, Wad::from_f64(3_000.0 * factor));
                let before = maker.book_stats().term_reprices;
                prop_assert_eq!(maker.cached_book(&oracle), maker.positions(&oracle));
                prop_assert_eq!(maker.cached_liquidatable_cdps(&oracle), maker.liquidatable_cdps(&oracle));
                prop_assert!(maker.book_stats().term_reprices > before);
            }
        }
    }

    /// Driving the engine through the object-safe trait keeps the cached
    /// discovery surface consistent with the reference paths too.
    #[test]
    fn trait_surface_serves_cached_results() {
        let mut protocol: Box<dyn LendingProtocol> = Box::new(compound());
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_int(3_000));
        oracle.set_price(0, Token::USDC, Wad::ONE);
        let lender = Address::from_seed(1);
        ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                lender,
                Token::USDC,
                Wad::from_int(1_000_000),
            )
            .unwrap();
        let borrower = Address::from_seed(2);
        ledger.mint(borrower, Token::ETH, Wad::from_int(5));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                borrower,
                Token::ETH,
                Wad::from_int(5),
            )
            .unwrap();
        protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                borrower,
                Token::USDC,
                Wad::from_int(11_000),
            )
            .unwrap();

        // Volume totals from the default (rebuild) path and the cached path
        // must agree.
        let positions = protocol.book_positions(&oracle);
        let totals = protocol.book_totals(&oracle);
        let fold = positions
            .iter()
            .map(|p| p.total_collateral_value())
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
        assert_eq!(totals.collateral_usd, fold);
        assert_eq!(totals.open_positions as usize, positions.len());

        // for_each_position visits the same book in the same order.
        let mut walked = Vec::new();
        protocol.for_each_position(&oracle, &mut |p| walked.push(p.clone()));
        assert_eq!(walked, positions);

        oracle.set_price(2, Token::ETH, Wad::from_int(2_000));
        let opportunities = protocol.liquidatable(&oracle);
        assert_eq!(opportunities.len(), 1);
        assert_eq!(opportunities[0].borrower, borrower);
        // The opportunity snapshot is the fresh valuation.
        assert_eq!(
            opportunities[0].position,
            protocol.position(&oracle, borrower).unwrap()
        );
    }
}

// ---------------------------------------------------------------------------
// Behavioural agent layer (PR 10): population sampling is a pure function of
// (seed, identity) — platform iteration order, prior draws and the
// book-worker count cannot change who gets sampled — and `+`-composed
// catalog scenarios are tick-for-tick equal to their hand-built equivalents.
// ---------------------------------------------------------------------------

mod behavioral_agents {
    use defi_liquidations_suite::sim::agents::{
        sample_borrower, sample_keepers, sample_liquidators,
    };
    use defi_liquidations_suite::sim::scenarios::liquidation_spiral;
    use defi_liquidations_suite::sim::{ScenarioCatalog, SimConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampling the same identity twice — or with the platform list
        /// walked in the opposite order — yields byte-identical agents for
        /// any seed. (The engine-level twin of this property, identical
        /// populations across `book_workers`, is asserted in the sim crate's
        /// unit tests; sampling never sees the worker knob at all.)
        #[test]
        fn agent_sampling_is_order_independent(seed in 0u64..u64::MAX) {
            let config = SimConfig::smoke_test(seed ^ 1);
            let sample_platform = |p: &_| {
                let borrowers: Vec<_> =
                    (0..4u64).map(|i| sample_borrower(seed, p, i, 0.2)).collect();
                (sample_liquidators(seed, p, 0.3, 0.1, 3), borrowers)
            };
            let forward: Vec<_> = config.populations.iter().map(sample_platform).collect();
            let mut reverse: Vec<_> =
                config.populations.iter().rev().map(sample_platform).collect();
            reverse.reverse();
            prop_assert_eq!(forward, reverse);
            prop_assert_eq!(
                sample_keepers(seed, 6, 0.3, 3),
                sample_keepers(seed, 6, 0.3, 3)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The compose path is exact: `"liquidation-spiral"` reached through
        /// a `+` composition with the identity entry advances tick-for-tick
        /// like the hand-built spiral constructor, with the same config
        /// adjustments.
        #[test]
        fn composed_scenarios_match_hand_built(seed in 0u64..1_000_000) {
            let catalog = ScenarioCatalog::standard();
            let mut composed_config = SimConfig::smoke_test(seed);
            let mut composed = catalog
                .build("paper-two-year+liquidation-spiral", &mut composed_config)
                .unwrap();
            let mut hand_config = SimConfig::smoke_test(seed);
            let mut hand = liquidation_spiral(&mut hand_config, true);
            for block in (9_500_000u64..9_700_000).step_by(25_000) {
                prop_assert_eq!(composed.advance(block), hand.advance(block));
            }
            prop_assert_eq!(
                composed_config.flash_loan_probability,
                hand_config.flash_loan_probability
            );
        }
    }
}
