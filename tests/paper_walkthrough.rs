//! Cross-crate integration tests reproducing the paper's worked examples and
//! checking that the strategy/mitigation layer (defi-core), the protocol
//! substrate (defi-lending) and the chain (defi-chain) agree with each other.

use defi_liquidations_suite::chain::{Blockchain, ChainConfig};
use defi_liquidations_suite::core::mitigation::MitigationAnalysis;
use defi_liquidations_suite::core::params::RiskParams;
use defi_liquidations_suite::core::position::paper_walkthrough_position;
use defi_liquidations_suite::core::strategy::{
    optimal_liquidation, up_to_close_factor_liquidation,
};
use defi_liquidations_suite::lending::{
    FixedSpreadConfig, FixedSpreadProtocol, InterestRateModel, DEFAULT_DEBT_DUST,
};
use defi_liquidations_suite::oracle::{OracleConfig, PriceOracle};
use defi_liquidations_suite::prelude::*;
use defi_liquidations_suite::types::Platform;

/// §3.2.2: the fixed-spread example must yield exactly 420 USD of profit.
#[test]
fn section_3_2_2_walkthrough_numbers() {
    let position = paper_walkthrough_position(true);
    assert!(position.is_liquidatable());
    let outcome = up_to_close_factor_liquidation(
        position.total_collateral_value(),
        position.total_debt_value(),
        RiskParams::paper_example(),
    )
    .expect("liquidatable");
    assert_eq!(outcome.repay_1, Wad::from_int(4_200));
    assert_eq!(outcome.collateral_claimed, Wad::from_int(4_620));
    assert_eq!(outcome.profit, Wad::from_int(420));
}

/// The same walk-through executed against the protocol substrate through the
/// chain, with revert-on-failure semantics, produces the same numbers as the
/// closed-form layer.
#[test]
fn protocol_execution_matches_core_math() {
    let mut chain = Blockchain::new(ChainConfig::default());
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(chain.current_block(), Token::ETH, Wad::from_int(3_500));
    oracle.set_price(chain.current_block(), Token::USDC, Wad::ONE);

    let mut pool = FixedSpreadProtocol::new(FixedSpreadConfig {
        platform: Platform::Compound,
        close_factor: Wad::from_f64(0.5),
        one_liquidation_per_block: false,
        insurance_fund: false,
        debt_dust: DEFAULT_DEBT_DUST,
    });
    pool.list_market(
        Token::ETH,
        RiskParams::new(0.8, 0.10, 0.5),
        InterestRateModel::default(),
        0,
    );
    pool.list_market(
        Token::USDC,
        RiskParams::new(0.85, 0.05, 0.5),
        InterestRateModel::stablecoin(),
        0,
    );

    let lender = Address::from_seed(1);
    let borrower = Address::from_seed(2);
    let liquidator = Address::from_seed(3);
    chain.fund(lender, Token::USDC, Wad::from_int(100_000));
    chain.fund(borrower, Token::ETH, Wad::from_int(3));
    chain.fund(liquidator, Token::USDC, Wad::from_int(10_000));

    assert!(chain
        .execute(lender, 20, 250_000, "seed", |ctx| {
            pool.deposit(
                ctx.ledger,
                ctx.events,
                lender,
                Token::USDC,
                Wad::from_int(100_000),
            )
            .map_err(|e| e.to_string())
        })
        .is_success());
    assert!(chain
        .execute(borrower, 20, 250_000, "open", |ctx| {
            pool.deposit(
                ctx.ledger,
                ctx.events,
                borrower,
                Token::ETH,
                Wad::from_int(3),
            )
            .map_err(|e| e.to_string())?;
            pool.borrow(
                ctx.ledger,
                ctx.events,
                &oracle,
                ctx.block,
                borrower,
                Token::USDC,
                Wad::from_int(8_400),
            )
            .map_err(|e| e.to_string())
        })
        .is_success());

    // Price decline; the position becomes liquidatable on-chain and in the
    // abstract model simultaneously.
    oracle.set_price(chain.current_block(), Token::ETH, Wad::from_int(3_300));
    let position = pool.position(&oracle, borrower).unwrap();
    assert!(position.is_liquidatable());
    let expected = up_to_close_factor_liquidation(
        position.total_collateral_value(),
        position.total_debt_value(),
        RiskParams::new(0.8, 0.10, 0.5),
    )
    .unwrap();

    let mut receipt = None;
    let outcome = chain.execute(liquidator, 100, 500_000, "liquidation", |ctx| {
        receipt = Some(
            pool.liquidation_call(
                ctx.ledger,
                ctx.events,
                &oracle,
                ctx.block,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                Wad::from_int(4_200),
                false,
            )
            .map_err(|e| e.to_string())?,
        );
        Ok(())
    });
    assert!(outcome.is_success());
    let receipt = receipt.unwrap();

    // The executed profit matches the closed form to within fixed-point dust.
    let diff = receipt
        .gross_profit_usd()
        .abs_diff(expected.profit)
        .to_f64();
    assert!(diff < 1e-6, "protocol vs core profit differ by {diff}");
    // The ledger actually moved the funds (up to a wei of index-rounding dust).
    let liquidator_usdc = chain.ledger().balance(liquidator, Token::USDC);
    assert!(
        liquidator_usdc
            .abs_diff(Wad::from_int(10_000 - 4_200))
            .to_f64()
            < 1e-9,
        "unexpected liquidator balance {liquidator_usdc}"
    );
    assert!(chain.ledger().balance(liquidator, Token::ETH) > Wad::ONE);
    // And the event log recorded a liquidation with the same USD values.
    let (_, event) = chain.events().liquidations().next().expect("event logged");
    assert_eq!(event.debt_repaid_usd, receipt.debt_repaid_usd);
    assert_eq!(event.collateral_seized_usd, receipt.collateral_seized_usd);
}

/// A failed liquidation attempt (healthy position) reverts atomically: no
/// balance moves, no event is logged, but the transaction still pays gas.
#[test]
fn failed_liquidation_reverts_atomically() {
    let mut chain = Blockchain::new(ChainConfig::default());
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(chain.current_block(), Token::ETH, Wad::from_int(3_500));
    oracle.set_price(chain.current_block(), Token::USDC, Wad::ONE);
    let mut pool = FixedSpreadProtocol::new(FixedSpreadConfig {
        platform: Platform::AaveV2,
        close_factor: Wad::from_f64(0.5),
        one_liquidation_per_block: false,
        insurance_fund: false,
        debt_dust: DEFAULT_DEBT_DUST,
    });
    pool.list_market(
        Token::ETH,
        RiskParams::new(0.8, 0.05, 0.5),
        InterestRateModel::default(),
        0,
    );
    pool.list_market(
        Token::USDC,
        RiskParams::new(0.85, 0.05, 0.5),
        InterestRateModel::stablecoin(),
        0,
    );
    let lender = Address::from_seed(1);
    let borrower = Address::from_seed(2);
    let liquidator = Address::from_seed(3);
    chain.fund(lender, Token::USDC, Wad::from_int(50_000));
    chain.fund(borrower, Token::ETH, Wad::from_int(3));
    chain.fund(liquidator, Token::USDC, Wad::from_int(5_000));
    chain.execute(lender, 20, 250_000, "seed", |ctx| {
        pool.deposit(
            ctx.ledger,
            ctx.events,
            lender,
            Token::USDC,
            Wad::from_int(50_000),
        )
        .map_err(|e| e.to_string())
    });
    chain.execute(borrower, 20, 250_000, "open", |ctx| {
        pool.deposit(
            ctx.ledger,
            ctx.events,
            borrower,
            Token::ETH,
            Wad::from_int(3),
        )
        .map_err(|e| e.to_string())?;
        pool.borrow(
            ctx.ledger,
            ctx.events,
            &oracle,
            ctx.block,
            borrower,
            Token::USDC,
            Wad::from_int(5_000),
        )
        .map_err(|e| e.to_string())
    });
    let events_before = chain.events().len();
    let liquidator_balance_before = chain.ledger().balance(liquidator, Token::USDC);

    let outcome = chain.execute(liquidator, 100, 500_000, "bad liquidation", |ctx| {
        pool.liquidation_call(
            ctx.ledger,
            ctx.events,
            &oracle,
            ctx.block,
            liquidator,
            borrower,
            Token::USDC,
            Token::ETH,
            Wad::from_int(2_500),
            false,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    });

    assert!(!outcome.is_success());
    assert_eq!(chain.events().len(), events_before);
    assert_eq!(
        chain.ledger().balance(liquidator, Token::USDC),
        liquidator_balance_before
    );
    assert!(!outcome.receipt.success);
    assert!(
        outcome.receipt.fee_eth() > 0.0,
        "reverted transactions still pay gas"
    );
}

/// §5.2: on any liquidatable position with a sound configuration, the optimal
/// strategy never does worse than up-to-close-factor, and the mitigation
/// threshold exceeds any realistic mining power for barely-unhealthy
/// positions (the common case produced by oracle updates).
#[test]
fn optimal_strategy_dominates_and_mitigation_bites() {
    let params = RiskParams::platform_default(Platform::Compound);
    for debt in [8_000u64, 9_000, 10_000, 11_000, 12_000] {
        let collateral = Wad::from_int(12_000);
        let debt = Wad::from_int(debt);
        let Some(base) = up_to_close_factor_liquidation(collateral, debt, params) else {
            continue; // healthy
        };
        let optimal = optimal_liquidation(collateral, debt, params).unwrap();
        assert!(optimal.profit >= base.profit);
        let analysis = MitigationAnalysis::evaluate(collateral, debt, params).unwrap();
        if let Some(threshold) = analysis.mining_power_threshold {
            assert!(!analysis.optimal_is_rational(threshold * 0.9));
        }
    }
}
