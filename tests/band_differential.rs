//! Differential proof of the conservative health-factor band index.
//!
//! The band index (PR 5) lets fixed-spread discovery and the engine's
//! borrower-management pass skip accounts whose certified price/index
//! envelope holds. Skipping is only sound if it is *exact*: the banded
//! surfaces must agree with a cache-less shadow — positions rebuilt from
//! protocol state through the same `fill_position` math, then filtered by
//! health factor — at every observation point. This harness encodes that
//! exactness argument as tests rather than prose:
//!
//! * **scenario differential** — every catalog scenario (including
//!   `liquidation-spiral`, whose endogenous sell-pressure feedback makes the
//!   price path adversarial) is stepped tick by tick, and after *every* tick
//!   banded discovery, the at-risk iterator and (periodically) the full
//!   cached book are compared byte-for-byte against the exhaustive shadow
//!   scan on every platform;
//! * **random interleavings** — property tests drive a real fixed-spread
//!   pool through arbitrary op sequences, checking the *banded* surfaces
//!   before any full-refresh query runs (so the lazy path itself is
//!   exercised, not a freshly drained cache);
//! * **conservative bounds** — envelopes are evaluated at their own corner
//!   prices through the real valuation path: the health factor must still be
//!   inside the certified band at the envelope's edge;
//! * **monotone widening under accrual** — a toy book with an explicit
//!   borrow index is accrued step by step across its certified caps: within
//!   a cap nothing re-values and nothing diverges; past it, accounts
//!   re-anchor and still nothing diverges;
//! * **full invalidation on epoch regression** — querying against an oracle
//!   whose epoch sits behind the synced one re-values everything;
//! * **the harness has teeth** — for each of the three dirty-set
//!   notification hooks (`mark_dirty`, `note_index_change`, the oracle
//!   write epoch), a sabotaged clone omits exactly that hook and the
//!   differential check must *fail*, proving the harness would catch a
//!   protocol that forgets its contract.

use std::collections::BTreeMap;

use defi_liquidations_suite::chain::Ledger;
use defi_liquidations_suite::core::position::Position;
use defi_liquidations_suite::lending::book::{
    BookSource, EnvelopeAnchor, HfEnvelope, PositionBook,
};
use defi_liquidations_suite::lending::interest::InterestRateModel;
use defi_liquidations_suite::lending::{
    compound, derive_hf_envelope, LendingProtocol, Market, RELEVERAGE_BAND_HF, RESCUE_BAND_HF,
};
use defi_liquidations_suite::oracle::{OracleConfig, PriceOracle};
use defi_liquidations_suite::prelude::*;
use defi_liquidations_suite::sim::{
    EngineBuilder, NullObserver, ScenarioCatalog, SessionStatus, SimConfig,
};
use defi_liquidations_suite::types::{Platform, Ray};
use proptest::prelude::*;

fn rescue() -> Wad {
    Wad::from_f64(RESCUE_BAND_HF)
}

fn releverage() -> Wad {
    Wad::from_f64(RELEVERAGE_BAND_HF)
}

// ---------------------------------------------------------------------------
// Scenario differential: banded surfaces == cache-less shadow, every tick,
// every platform, every catalog entry.
// ---------------------------------------------------------------------------

/// Compare one platform's banded surfaces against the cache-less shadow.
/// `full` additionally compares the whole cached book (the expensive check,
/// run periodically).
fn audit_platform(
    scenario: &str,
    tick: u64,
    platform: Platform,
    protocol: &mut dyn LendingProtocol,
    oracle: &PriceOracle,
    full: bool,
) {
    let shadow = protocol.reference_positions(oracle);

    // Banded discovery == exhaustive HF < 1 scan, byte-identical positions.
    let exhaustive: Vec<(Address, Position)> = shadow
        .iter()
        .filter(|p| p.is_liquidatable())
        .map(|p| (p.owner, p.clone()))
        .collect();
    let banded: Vec<(Address, Position)> = protocol
        .liquidatable(oracle)
        .into_iter()
        .map(|o| (o.borrower, o.position))
        .collect();
    assert_eq!(
        banded, exhaustive,
        "{scenario} tick {tick}: {platform} banded discovery diverged from the shadow scan"
    );

    // Banded at-risk iteration == exhaustive HF-filtered walk.
    let expected_at_risk: Vec<(Address, Position)> = shadow
        .iter()
        .filter(|p| {
            p.health_factor()
                .is_some_and(|hf| hf < rescue() || hf > releverage())
        })
        .map(|p| (p.owner, p.clone()))
        .collect();
    let mut seen_at_risk: Vec<(Address, Position)> = Vec::new();
    protocol.for_each_at_risk(oracle, rescue(), releverage(), &mut |position| {
        seen_at_risk.push((position.owner, position.clone()));
    });
    assert_eq!(
        seen_at_risk, expected_at_risk,
        "{scenario} tick {tick}: {platform} at-risk iteration diverged from the shadow filter"
    );

    if full {
        let cached = protocol.book_positions(oracle);
        assert_eq!(
            cached, shadow,
            "{scenario} tick {tick}: {platform} cached book diverged from the shadow rebuild"
        );
    }
}

/// The smoke window truncated shortly after the March 2020 crash — the same
/// window the scenario-catalog invariant test uses.
fn crash_window_config(seed: u64) -> SimConfig {
    let mut config = SimConfig::smoke_test(seed);
    config.end_block = 9_780_000;
    config
}

#[test]
fn banded_discovery_matches_shadow_scan_across_every_catalog_scenario() {
    let catalog = ScenarioCatalog::standard();
    assert!(catalog.names().len() >= 6);
    for entry in catalog.entries() {
        let mut session = EngineBuilder::new(crash_window_config(2026))
            .with_named_scenario(&entry.name)
            .build()
            .session();
        let mut observer = NullObserver;
        let mut tick = 0u64;
        loop {
            let status = session
                .step(&mut observer)
                .unwrap_or_else(|e| panic!("{}: step failed: {e}", entry.name));
            tick += 1;
            let full = tick.is_multiple_of(5);
            for platform in session.platforms() {
                session
                    .inspect_protocol(platform, |protocol, oracle| {
                        audit_platform(&entry.name, tick, platform, protocol, oracle, full);
                    })
                    .expect("platform registered");
            }
            if status == SessionStatus::TicksComplete {
                break;
            }
        }
        assert!(tick > 10, "{}: suspiciously short run", entry.name);
    }
}

// ---------------------------------------------------------------------------
// Worker-count differential: the sharded book must be byte-identical to the
// serial book on every tick of every catalog scenario. The shard partition is
// a pure function of the account address and shards merge in fixed index
// order, so the worker count may only change scheduling — this test is the
// proof. CI runs it under a BOOK_WORKERS matrix.
// ---------------------------------------------------------------------------

/// Worker count for the parallel side of the differential: the `BOOK_WORKERS`
/// env var (the CI matrix axis), defaulting to 4.
fn book_workers_under_test() -> usize {
    std::env::var("BOOK_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn worker_counts_are_byte_identical_across_every_catalog_scenario() {
    let workers = book_workers_under_test();
    assert!(workers >= 2, "the differential needs a parallel side");
    let catalog = ScenarioCatalog::standard();
    assert!(catalog.names().len() >= 6);
    for entry in catalog.entries() {
        let mut serial_config = crash_window_config(2027);
        serial_config.book_workers = 1;
        let mut sharded_config = crash_window_config(2027);
        sharded_config.book_workers = workers;
        let mut serial = EngineBuilder::new(serial_config)
            .with_named_scenario(&entry.name)
            .build()
            .session();
        let mut sharded = EngineBuilder::new(sharded_config)
            .with_named_scenario(&entry.name)
            .build()
            .session();
        let mut observer = NullObserver;
        let mut tick = 0u64;
        loop {
            let serial_status = serial
                .step(&mut observer)
                .unwrap_or_else(|e| panic!("{}: serial step failed: {e}", entry.name));
            let sharded_status = sharded
                .step(&mut observer)
                .unwrap_or_else(|e| panic!("{}: sharded step failed: {e}", entry.name));
            assert_eq!(
                serial_status, sharded_status,
                "{}: status diverged",
                entry.name
            );
            tick += 1;
            // Liquidatable set + running totals every tick, the whole cached
            // book periodically (the expensive check).
            let full = tick.is_multiple_of(5);
            for platform in serial.platforms() {
                let observe = |protocol: &mut dyn LendingProtocol, oracle: &PriceOracle| {
                    (
                        protocol
                            .liquidatable(oracle)
                            .into_iter()
                            .map(|o| (o.borrower, o.position))
                            .collect::<Vec<_>>(),
                        protocol.book_totals(oracle),
                        full.then(|| protocol.book_positions(oracle)),
                    )
                };
                let lhs = serial
                    .inspect_protocol(platform, observe)
                    .expect("platform registered");
                let rhs = sharded
                    .inspect_protocol(platform, observe)
                    .expect("platform registered");
                assert_eq!(
                    lhs, rhs,
                    "{} tick {tick}: {platform} diverged between 1 and {workers} workers",
                    entry.name
                );
            }
            if serial_status == SessionStatus::TicksComplete {
                break;
            }
        }
        assert!(tick > 10, "{}: suspiciously short run", entry.name);
    }
}

// ---------------------------------------------------------------------------
// A toy multivariate pool with an explicit borrow index, small enough to
// sabotage: the differential checker below is the "harness" whose teeth the
// omitted-hook tests prove.
// ---------------------------------------------------------------------------

/// collateral ETH, scaled USDC debt, one global borrow index.
#[derive(Debug, Clone, Default)]
struct ToyState {
    accounts: BTreeMap<Address, (Wad, Wad)>,
    index: Ray,
}

impl ToyState {
    fn new() -> Self {
        ToyState {
            accounts: BTreeMap::new(),
            index: Ray::ONE,
        }
    }

    /// The market table the envelope derivation reads the index from.
    fn markets(&self) -> BTreeMap<Token, Market> {
        let mut index = defi_liquidations_suite::lending::interest::BorrowIndex::new(0);
        index.index = self.index;
        let mut markets = BTreeMap::new();
        markets.insert(
            Token::USDC,
            Market {
                token: Token::USDC,
                liquidation_threshold: Wad::from_f64(0.85),
                liquidation_spread: Wad::from_f64(0.05),
                rate_model: InterestRateModel::stablecoin(),
                available_liquidity: Wad::ZERO,
                total_scaled_debt: Wad::ZERO,
                index,
            },
        );
        markets.insert(
            Token::ETH,
            Market {
                token: Token::ETH,
                liquidation_threshold: Wad::from_f64(0.8),
                liquidation_spread: Wad::from_f64(0.10),
                rate_model: InterestRateModel::default(),
                available_liquidity: Wad::ZERO,
                total_scaled_debt: Wad::ZERO,
                index: defi_liquidations_suite::lending::interest::BorrowIndex::new(0),
            },
        );
        markets
    }
}

/// How the toy view answers the book's term-reprice hook. `Sabotaged`
/// deliberately violates the hook contract (claims success without
/// recomputing the moved terms) so the differential harness can prove it has
/// teeth against a dishonest `reprice_position` implementation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ToyReprice {
    Honest,
    Sabotaged,
}

struct ToyView<'a>(&'a ToyState, ToyReprice);

impl BookSource for ToyView<'_> {
    fn fill_position(&self, oracle: &PriceOracle, account: Address, slot: &mut Position) -> bool {
        let Some(&(collateral, scaled_debt)) = self.0.accounts.get(&account) else {
            return false;
        };
        if collateral.is_zero() && scaled_debt.is_zero() {
            return false;
        }
        slot.owner = account;
        slot.collateral.clear();
        slot.debt.clear();
        if !collateral.is_zero() {
            let price = oracle.price_or_zero(Token::ETH);
            slot.collateral
                .push(defi_liquidations_suite::core::position::CollateralHolding {
                    token: Token::ETH,
                    amount: collateral,
                    value_usd: collateral.checked_mul(price).unwrap_or(Wad::ZERO),
                    liquidation_threshold: Wad::from_f64(0.8),
                    liquidation_spread: Wad::from_f64(0.10),
                });
        }
        if !scaled_debt.is_zero() {
            // scaled × index, the fixed-spread debt shape.
            let amount = scaled_debt
                .to_ray()
                .ok()
                .and_then(|r| r.checked_mul(self.0.index).ok())
                .map(|r| r.to_wad())
                .unwrap_or(scaled_debt);
            let price = oracle.price_or_zero(Token::USDC);
            slot.debt
                .push(defi_liquidations_suite::core::position::DebtHolding {
                    token: Token::USDC,
                    amount,
                    value_usd: amount.checked_mul(price).unwrap_or(Wad::ZERO),
                });
        }
        true
    }

    fn in_book(&self, position: &Position) -> bool {
        !position.total_debt_value().is_zero()
    }

    fn sensitive_tokens(&self, position: &Position, out: &mut Vec<Token>) {
        for holding in &position.collateral {
            if !out.contains(&holding.token) {
                out.push(holding.token);
            }
        }
        for holding in &position.debt {
            if !out.contains(&holding.token) {
                out.push(holding.token);
            }
        }
    }

    fn debt_tokens(&self, position: &Position, out: &mut Vec<Token>) {
        for holding in &position.debt {
            if !out.contains(&holding.token) {
                out.push(holding.token);
            }
        }
    }

    fn critical_price(&self, _account: Address, _position: &Position) -> Option<(Token, u128)> {
        None
    }

    fn borrow_index(&self, token: Token) -> Option<u128> {
        (token == Token::USDC).then(|| self.index_raw())
    }

    fn hf_envelope(
        &self,
        oracle: &PriceOracle,
        position: &Position,
        floor: Option<Wad>,
        ceiling: Option<Wad>,
        anchor: EnvelopeAnchor,
        out: &mut HfEnvelope,
    ) -> bool {
        derive_hf_envelope(
            &self.0.markets(),
            oracle,
            position,
            floor,
            ceiling,
            anchor,
            out,
        )
    }

    fn reprice_position(
        &self,
        oracle: &PriceOracle,
        position: &mut Position,
        moved: &[Token],
    ) -> bool {
        if self.1 == ToyReprice::Sabotaged {
            // Contract violation on purpose: claim the terms were updated
            // while leaving the stale bytes in place.
            return true;
        }
        // Honest term path: same arithmetic as `fill_position` on the same
        // cached amounts, restricted to the moved tokens.
        for holding in &mut position.collateral {
            if moved.contains(&holding.token) {
                let price = oracle.price_or_zero(holding.token);
                holding.value_usd = holding.amount.checked_mul(price).unwrap_or(Wad::ZERO);
            }
        }
        for holding in &mut position.debt {
            if moved.contains(&holding.token) {
                let price = oracle.price_or_zero(holding.token);
                holding.value_usd = holding.amount.checked_mul(price).unwrap_or(Wad::ZERO);
            }
        }
        true
    }
}

impl ToyView<'_> {
    fn index_raw(&self) -> u128 {
        self.0.index.raw()
    }
}

/// The differential harness itself: banded discovery and at-risk iteration
/// against the cache-less shadow scan over the toy state. Returns the first
/// divergence instead of panicking so the teeth tests can assert it *does*
/// diverge on a sabotaged clone.
fn toy_differential(
    state: &ToyState,
    book: &mut PositionBook,
    oracle: &PriceOracle,
) -> Result<(), String> {
    toy_differential_with(state, book, oracle, ToyReprice::Honest)
}

/// Like [`toy_differential`] but with an explicit [`ToyReprice`] mode, so the
/// teeth tests can run the same harness against a dishonest term path.
fn toy_differential_with(
    state: &ToyState,
    book: &mut PositionBook,
    oracle: &PriceOracle,
    reprice: ToyReprice,
) -> Result<(), String> {
    let view = ToyView(state, reprice);
    let mut shadow: Vec<Position> = Vec::new();
    for &address in state.accounts.keys() {
        let mut slot = Position::new(address);
        if view.fill_position(oracle, address, &mut slot) {
            shadow.push(slot);
        }
    }

    let exhaustive: Vec<Address> = shadow
        .iter()
        .filter(|p| p.is_liquidatable())
        .map(|p| p.owner)
        .collect();
    let banded = book.liquidatable_accounts(&view, oracle);
    if banded != exhaustive {
        return Err(format!(
            "discovery diverged: banded {banded:?} vs exhaustive {exhaustive:?}"
        ));
    }

    // Byte-level comparison of the visited valuations, not just the visited
    // owners: a freshening path that leaves stale value terms behind (e.g. a
    // dishonest `reprice_position`) diverges here even when the membership
    // sets happen to agree.
    let expected_at_risk: Vec<Position> = shadow
        .iter()
        .filter(|p| !p.total_debt_value().is_zero())
        .filter(|p| {
            p.health_factor()
                .is_some_and(|hf| hf < rescue() || hf > releverage())
        })
        .cloned()
        .collect();
    let mut seen: Vec<Position> = Vec::new();
    book.for_each_at_risk(&view, oracle, rescue(), releverage(), &mut |position| {
        seen.push(position.clone());
    });
    if seen != expected_at_risk {
        let seen_owners: Vec<Address> = seen.iter().map(|p| p.owner).collect();
        let expected_owners: Vec<Address> = expected_at_risk.iter().map(|p| p.owner).collect();
        return Err(format!(
            "at-risk diverged: banded {seen_owners:?} vs exhaustive {expected_owners:?}\
             (or their valuation bytes differ)"
        ));
    }

    // The always-on stale-flag invariant (release builds repair and count
    // instead of debug_assert-ing): any non-zero counter is a flush that left
    // stale valuations behind, surfaced through the same error path as a
    // divergence.
    let violations = book.stats().stale_violations;
    if violations != 0 {
        return Err(format!(
            "flush left {violations} stale-flag violation(s) — repaired, but the drain contract broke"
        ));
    }
    Ok(())
}

fn toy_oracle(eth: f64) -> PriceOracle {
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(0, Token::ETH, Wad::from_f64(eth));
    oracle.set_price(0, Token::USDC, Wad::ONE);
    oracle
}

/// A populated toy book: collateralizations spread from just above the
/// threshold to deep in the re-leverage band.
fn toy_setup(n: u64) -> (ToyState, PositionBook, PriceOracle) {
    let mut state = ToyState::new();
    let mut book = PositionBook::new();
    for i in 0..n {
        let address = Address::from_seed(40_000 + i);
        let collateral = Wad::from_int(10);
        // HF from ~1.01 up to ~3.4.
        let usage = 0.99 - (i as f64 % 67.0) * 0.011;
        let debt = Wad::from_f64(10.0 * 3_000.0 * 0.8 * usage.max(0.23));
        state.accounts.insert(address, (collateral, debt));
        book.mark_dirty(address);
    }
    let oracle = toy_oracle(3_000.0);
    (state, book, oracle)
}

// --------------------------------------------------------------- teeth tests

/// Omit `mark_dirty` on a mutated clone: the harness must catch it.
#[test]
fn harness_catches_an_omitted_mark_dirty() {
    let (mut state, mut book, oracle) = toy_setup(30);
    toy_differential(&state, &mut book, &oracle).expect("hooked run is clean");

    // Borrow hard enough to cross below the threshold — without telling the
    // book.
    let victim = Address::from_seed(40_003);
    let entry = state.accounts.get_mut(&victim).expect("exists");
    entry.1 = Wad::from_f64(10.0 * 3_000.0 * 0.8 * 1.4);
    let err = toy_differential(&state, &mut book, &oracle)
        .expect_err("the harness must catch the silent mutation");
    assert!(err.contains("diverged"), "{err}");

    // The properly hooked twin stays clean.
    book.mark_dirty(victim);
    toy_differential(&state, &mut book, &oracle).expect("hooked mutation is clean");
}

/// Omit `note_index_change` on an accrued clone: the harness must catch it.
#[test]
fn harness_catches_an_omitted_index_change_note() {
    let (mut state, mut book, oracle) = toy_setup(30);
    toy_differential(&state, &mut book, &oracle).expect("hooked run is clean");

    // Double the borrow index — every debtor's HF halves, many cross 1 —
    // without the notification hook.
    state.index = state.index.checked_mul(Ray::from_int(2)).unwrap();
    let err = toy_differential(&state, &mut book, &oracle)
        .expect_err("the harness must catch the silent accrual");
    assert!(err.contains("diverged"), "{err}");

    // The properly hooked twin stays clean.
    book.note_index_change(Token::USDC);
    toy_differential(&state, &mut book, &oracle).expect("hooked accrual is clean");
}

/// Omit the oracle write epoch: a *different* oracle instance whose epoch
/// equals the synced one (same number of writes, crashed price) is
/// indistinguishable from an un-notified price move — the harness must catch
/// the divergence that contract violation produces.
#[test]
fn harness_catches_an_omitted_oracle_epoch() {
    let (state, mut book, oracle) = toy_setup(30);
    toy_differential(&state, &mut book, &oracle).expect("hooked run is clean");

    // Same write count (so the same epoch), very different ETH price: the
    // book trusts its synced epoch and keeps every stale verdict.
    let forged = toy_oracle(1_500.0);
    assert_eq!(forged.epoch(), oracle.epoch());
    let err = toy_differential(&state, &mut book, &forged)
        .expect_err("the harness must catch the epoch-less price move");
    assert!(err.contains("diverged"), "{err}");

    // A *later* epoch (one more genuine write) is the hooked path: the book
    // re-syncs and the harness is clean again.
    let mut hooked = oracle.clone();
    hooked.set_price(1, Token::ETH, Wad::from_f64(1_500.0));
    toy_differential(&state, &mut book, &hooked).expect("epoch-bumped move is clean");
}

/// An oracle whose epoch moves *backwards* (a different, younger instance)
/// invalidates everything: the harness stays clean and every account
/// re-values.
#[test]
fn epoch_regression_fully_invalidates_the_band_index() {
    let (state, mut book, mut oracle) = toy_setup(30);
    // Extra writes so the book syncs at a high epoch.
    oracle.set_price(1, Token::ETH, Wad::from_f64(2_900.0));
    oracle.set_price(2, Token::ETH, Wad::from_f64(2_950.0));
    toy_differential(&state, &mut book, &oracle).expect("clean before the rewind");
    let synced = book.stats().revaluations;

    // A younger oracle instance with a crashed price and a *lower* epoch.
    let rewound = toy_oracle(1_400.0);
    assert!(rewound.epoch() < oracle.epoch());
    toy_differential(&state, &mut book, &rewound).expect("rewind must re-value, not trust");
    assert!(
        book.stats().revaluations >= synced + 30,
        "epoch regression must re-value the whole book"
    );
}

/// Accrue the toy index in small steps across the certified caps: while a
/// cap holds nothing re-values (the envelope absorbs the accrual); once it
/// breaks, accounts re-anchor with a fresh (wider, because re-centred)
/// envelope — and the differential harness is clean at every single step.
#[test]
fn envelopes_absorb_accrual_until_their_caps_and_rewiden() {
    let (mut state, mut book, oracle) = toy_setup(60);
    toy_differential(&state, &mut book, &oracle).expect("clean at anchor");
    let baseline = book.stats();
    assert!(baseline.banded_accounts > 0, "setup must certify accounts");

    let mut skipped_any_step = false;
    let mut reanchored_any_step = false;
    // ~0.005 % per step, 120 steps ≈ 0.6 % total growth: crosses the caps of
    // tightly-certified accounts but not the wide ones.
    for step in 0..120 {
        let growth =
            Ray::from_raw(defi_liquidations_suite::types::RAY + 50_000_000_000_000_000_000_000);
        state.index = state.index.checked_mul(growth).unwrap();
        book.note_index_change(Token::USDC);
        let before = book.stats().revaluations;
        toy_differential(&state, &mut book, &oracle).unwrap_or_else(|e| panic!("step {step}: {e}"));
        let revalued = book.stats().revaluations - before;
        // At-risk members legitimately freshen each step; anything beyond
        // them is a cap breach re-anchoring.
        if (revalued as usize) <= book.stats().at_risk_accounts {
            skipped_any_step = true;
        } else {
            reanchored_any_step = true;
        }
        assert!(
            (revalued as usize) < state.accounts.len(),
            "step {step}: accrual re-valued the whole book"
        );
    }
    assert!(skipped_any_step, "no accrual step was ever absorbed");
    assert!(
        reanchored_any_step,
        "no cap ever broke — the budget test tested nothing"
    );
    assert!(book.stats().envelope_skips > baseline.envelope_skips);
}

/// A `reprice_position` that claims success without recomputing the moved
/// terms must be caught: after an in-envelope wobble the at-risk byte
/// comparison sees the stale valuation terms even though every membership set
/// still agrees. The honest twin stays clean — and proves the wobble really
/// was served by the term path, so the sabotage was exercised.
#[test]
fn harness_catches_a_sabotaged_term_reprice() {
    // Sabotaged book: the dishonest hook is inert at the anchor (nothing has
    // moved yet), then leaves stale bytes behind on the wobble.
    let (state, mut book, mut oracle) = toy_setup(30);
    toy_differential_with(&state, &mut book, &oracle, ToyReprice::Sabotaged)
        .expect("nothing to reprice at the anchor prices");
    // +0.33 %: inside the envelopes of mid-rescue-band members (which freshen
    // through the term path), outside the tightest ones (which re-anchor).
    oracle.set_price(1, Token::ETH, Wad::from_f64(3_010.0));
    let err = toy_differential_with(&state, &mut book, &oracle, ToyReprice::Sabotaged)
        .expect_err("stale term bytes must not survive the differential");
    assert!(err.contains("diverged"), "{err}");

    // The honest twin of the same wobble.
    let (state, mut book, mut oracle) = toy_setup(30);
    toy_differential(&state, &mut book, &oracle).expect("clean at anchor");
    oracle.set_price(1, Token::ETH, Wad::from_f64(3_010.0));
    toy_differential(&state, &mut book, &oracle).expect("honest term path is byte-identical");
    assert!(
        book.stats().term_reprices >= 1,
        "the wobble was never served by the term path — the sabotage test has no teeth"
    );
}

/// An oscillating price whose swing exceeds the freshly-centred slack would
/// re-derive an envelope on every swing forever. Re-anchor hysteresis widens
/// the slack away from the broken edge, so after the first break the envelope
/// covers both poles of the oscillation and derivations stop.
#[test]
fn reanchor_hysteresis_absorbs_a_price_oscillation() {
    let mut state = ToyState::new();
    let mut book = PositionBook::new();
    let address = Address::from_seed(77);
    // HF 1.35 at 3000: mid-Quiet, fresh halving slack 6.25 %, hysteresis
    // coverage ~8-16 % depending on the anchor.
    let collateral = Wad::from_int(10);
    let debt = Wad::from_f64(10.0 * 3_000.0 * 0.8 / 1.35);
    state.accounts.insert(address, (collateral, debt));
    book.mark_dirty(address);
    let oracle = toy_oracle(3_000.0);
    toy_differential(&state, &mut book, &oracle).expect("clean at anchor");

    // ±7 % swings: both poles break a freshly-centred 6.25 % envelope, both
    // fit inside the widened re-anchor.
    let mut oracle = oracle;
    let mut derives_per_tick = Vec::new();
    for tick in 0..12u64 {
        let price = if tick % 2 == 0 { 3_210.0 } else { 3_000.0 };
        oracle.set_price(tick + 1, Token::ETH, Wad::from_f64(price));
        let before = book.stats().envelope_derives;
        toy_differential(&state, &mut book, &oracle).unwrap_or_else(|e| panic!("tick {tick}: {e}"));
        derives_per_tick.push(book.stats().envelope_derives - before);
    }
    assert!(
        derives_per_tick[0] > 0,
        "the first swing never broke the fresh envelope — the oscillation tests nothing"
    );
    assert!(
        derives_per_tick[1..].iter().all(|&d| d == 0),
        "steady-state oscillation still re-derives: {derives_per_tick:?}"
    );
}

// ---------------------------------------------------------------------------
// Conservative bounds: evaluate every certified envelope at its own corner
// prices through the real valuation path — the health factor must still be
// inside the certified band at the edge of the envelope.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn envelope_corners_never_leave_the_certified_band(
        collateral in 0.5f64..500.0,
        price in 20.0f64..20_000.0,
        usage in 0.05f64..1.4,
        usdc_wobble in 0.9f64..1.1,
    ) {
        let mut state = ToyState::new();
        let address = Address::from_seed(77);
        let collateral = Wad::from_f64(collateral);
        let debt = Wad::from_f64(collateral.to_f64() * price * 0.8 * usage);
        state.accounts.insert(address, (collateral, debt));

        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_f64(price));
        oracle.set_price(0, Token::USDC, Wad::from_f64(usdc_wobble));

        let view = ToyView(&state, ToyReprice::Honest);
        let mut position = Position::new(address);
        prop_assume!(view.fill_position(&oracle, address, &mut position));
        let Some(hf) = position.health_factor() else { return Ok(()); };

        // The band edges the book would certify this position into.
        let (floor, ceiling) = if hf < Wad::ONE {
            (None, Some(Wad::ONE))
        } else if hf < rescue() {
            (Some(Wad::ONE), Some(rescue()))
        } else if hf > releverage() {
            (Some(releverage()), None)
        } else {
            (Some(rescue()), Some(releverage()))
        };
        let mut envelope = HfEnvelope::default();
        if !view.hf_envelope(
            &oracle,
            &position,
            floor,
            ceiling,
            EnvelopeAnchor::Fresh,
            &mut envelope,
        ) {
            return Ok(()); // too close to an edge: rides the exact path
        }

        // Worst corners for each direction: collateral price at its bound,
        // debt price at the opposite bound, evaluated through the very same
        // fill_position math.
        let corner_hf = |eth_raw: u128, usdc_raw: u128| -> Option<Wad> {
            let mut corner = PriceOracle::new(OracleConfig::every_update());
            corner.set_price(0, Token::ETH, Wad::from_raw(eth_raw));
            corner.set_price(0, Token::USDC, Wad::from_raw(usdc_raw));
            let mut slot = Position::new(address);
            if !ToyView(&state, ToyReprice::Honest).fill_position(&corner, address, &mut slot) {
                return None;
            }
            slot.health_factor()
        };
        let bound = |token: Token| -> (u128, u128) {
            envelope
                .price_bounds
                .iter()
                .find(|(t, _, _)| *t == token)
                .map(|&(_, lo, hi)| (lo, hi))
                .expect("every sensitive token is bounded")
        };
        let (eth_lo, eth_hi) = bound(Token::ETH);
        let (usdc_lo, usdc_hi) = bound(Token::USDC);

        // Downward corner: collateral cheapest, debt dearest.
        let hf_down = corner_hf(eth_lo, usdc_hi);
        // Upward corner: collateral dearest, debt cheapest.
        let hf_up = corner_hf(eth_hi, usdc_lo);
        for corner in [hf_down, hf_up] {
            let Some(corner) = corner else { continue };
            if let Some(floor) = floor {
                prop_assert!(
                    corner >= floor,
                    "corner HF {corner} fell through the certified floor {floor} (anchor {hf})"
                );
            }
            if let Some(ceiling) = ceiling {
                prop_assert!(
                    corner < ceiling,
                    "corner HF {corner} rose through the certified ceiling {ceiling} (anchor {hf})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shock-projection edge: `breach_under` must agree with the from-scratch
// reference at every `i32` shock, including at and beyond the −100% price
// floor where the scale clamps to zero.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn breach_under_agrees_with_reference_across_the_full_shock_range(
        raw in i32::MIN..i32::MAX,
        near_clamp in -10_050i32..-9_950,
        mode in 0u8..3,
        eth in 100.0f64..10_000.0,
    ) {
        // Mix the full i32 range with a band dense around the −100% clamp and
        // the realistic decline band, so every regime is exercised.
        let shock = match mode {
            0 => raw,
            1 => near_clamp,
            _ => raw.rem_euclid(10_001).saturating_neg(),
        };
        let (state, mut book, _) = toy_setup(40);
        let oracle = toy_oracle(eth);
        let snapshot = book.snapshot(&ToyView(&state, ToyReprice::Honest), &oracle);
        prop_assert!(!snapshot.is_empty());
        for token in [Token::ETH, Token::USDC] {
            if shock <= -10_000 {
                // At and beyond −100% the scale clamps: the price floors at 0.
                prop_assert_eq!(snapshot.shocked_price(token, shock), Wad::ZERO);
            }
            let fast = snapshot.breach_under(token, shock);
            let reference = snapshot.breach_under_reference(token, shock);
            prop_assert_eq!(fast.breached, reference);
        }
    }
}

// ---------------------------------------------------------------------------
// Random op interleavings against a real fixed-spread pool: the banded
// surfaces are checked *before* any full-refresh query, so the lazy path is
// what the differential sees.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn banded_surfaces_match_shadow_after_random_ops(
        ops in prop::collection::vec((0u8..7, 0u8..6, 1u32..30_000, 0u16..1_000), 1..40),
    ) {
        let mut protocol = compound();
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_int(3_000));
        oracle.set_price(0, Token::USDC, Wad::ONE);
        let lender = Address::from_seed(1);
        ledger.mint(lender, Token::USDC, Wad::from_int(50_000_000));
        protocol
            .deposit(&mut ledger, &mut events, lender, Token::USDC, Wad::from_int(50_000_000))
            .unwrap();
        // Past the platform inception block so accrual actually runs.
        let mut block: u64 = 7_800_000;
        let account = |who: u8| Address::from_seed(8_000 + (who % 6) as u64);

        for (step, (selector, who, magnitude, tweak)) in ops.into_iter().enumerate() {
            let address = account(who);
            match selector {
                0 => {
                    let amount = Wad::from_f64(magnitude as f64 / 1_000.0);
                    ledger.mint(address, Token::ETH, amount);
                    let _ = protocol.deposit(&mut ledger, &mut events, address, Token::ETH, amount);
                }
                1 => {
                    let amount = Wad::from_int(magnitude as u64);
                    ledger.mint(address, Token::USDC, amount);
                    let _ = protocol.deposit(&mut ledger, &mut events, address, Token::USDC, amount);
                }
                2 => {
                    let _ = protocol.borrow(
                        &mut ledger, &mut events, &oracle, block, address,
                        Token::USDC, Wad::from_int(magnitude as u64),
                    );
                }
                3 => {
                    let outstanding = protocol.debt_of(address, Token::USDC);
                    let share = Wad::from_f64((tweak % 999 + 1) as f64 / 1_000.0);
                    let amount = outstanding.checked_mul(share).unwrap_or(Wad::ZERO);
                    if !amount.is_zero() {
                        ledger.mint(address, Token::USDC, amount);
                        let _ = protocol.repay(&mut ledger, &mut events, block, address, Token::USDC, amount);
                    }
                }
                4 => {
                    if tweak % 3 == 0 {
                        let wobble = 0.97 + (tweak % 60) as f64 / 1_000.0;
                        oracle.set_price(block, Token::USDC, Wad::from_f64(wobble));
                    } else {
                        let factor = 0.5 + (tweak % 1_000) as f64 / 1_000.0;
                        oracle.set_price(block, Token::ETH, Wad::from_f64(3_000.0 * factor));
                    }
                }
                5 => {
                    block += (tweak % 5_000) as u64 + 1;
                    protocol.accrue_all(block);
                }
                _ => {
                    let outstanding = protocol.debt_of(address, Token::USDC);
                    let repay = outstanding
                        .checked_mul(protocol.config().close_factor)
                        .unwrap_or(Wad::ZERO);
                    if !repay.is_zero() {
                        let liquidator = Address::from_seed(9_999);
                        ledger.mint(liquidator, Token::USDC, repay);
                        let _ = protocol.liquidation_call(
                            &mut ledger, &mut events, &oracle, block,
                            liquidator, address, Token::USDC, Token::ETH, repay, false,
                        );
                    }
                }
            }

            // Shadow scan (cache-less) against the *banded* surfaces first.
            let shadow = LendingProtocol::reference_positions(&protocol, &oracle);
            let exhaustive: Vec<Address> = shadow
                .iter()
                .filter(|p| p.is_liquidatable())
                .map(|p| p.owner)
                .collect();
            let banded = protocol.cached_liquidatable_accounts(&oracle);
            prop_assert_eq!(&banded, &exhaustive);

            let expected_at_risk: Vec<Address> = shadow
                .iter()
                .filter(|p| {
                    p.health_factor()
                        .is_some_and(|hf| hf < rescue() || hf > releverage())
                })
                .map(|p| p.owner)
                .collect();
            let mut seen: Vec<Address> = Vec::new();
            protocol.for_each_at_risk(&oracle, rescue(), releverage(), &mut |p| {
                seen.push(p.owner);
            });
            prop_assert_eq!(&seen, &expected_at_risk);

            // Periodically also require the full cached book to be
            // byte-identical (the engine's volume-sample / snapshot cadence).
            if step % 4 == 3 {
                prop_assert_eq!(protocol.cached_book(&oracle), shadow);
            }
        }
    }
}
