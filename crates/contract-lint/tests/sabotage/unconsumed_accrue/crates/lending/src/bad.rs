// Sabotage fixture: a `Market::accrue` call whose moved-bit is thrown
// away. Never compiled — only fed to the analyzer binary.

pub struct Pool {
    book: PositionBook,
}

impl Pool {
    pub fn tick(&mut self, block: u64) {
        self.market.accrue(block);
    }
}
