// Sabotage fixture: bare integer arithmetic on `.raw()` escapes outside
// `crates/types`. Never compiled — only fed to the analyzer binary.

pub fn spread(a: Wad, b: Wad) -> u128 {
    a.raw() - b.raw()
}
