// Sabotage fixture: an unjustified f64 round-trip in the valuation layer.
// Never compiled — only fed to the analyzer binary.

pub fn value(w: Wad) -> f64 {
    w.to_f64()
}
