// Sabotage fixture: an un-waived `unwrap` in a gated hot path. Never
// compiled — only fed to the analyzer binary.

pub fn head(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
