// Control fixture: hook-respecting code plus one justified waiver — the
// analyzer must exit 0 here. Never compiled — only fed to the binary.

pub struct Accounts {
    inner: PositionBook,
    accounts: HashMap<Address, u64>,
}

impl Accounts {
    pub fn deposit(&mut self, owner: Address, amount: u64) {
        self.accounts.insert(owner, amount);
        self.inner.mark_dirty(owner);
    }

    pub fn tick(&mut self, block: u64) {
        if self.market.accrue(block) {
            self.inner.note_index_change(Token::ETH);
        }
    }

    pub fn first_account(&self) -> Address {
        self.order[0] // lint:allow(hot-index) order is rebuilt non-empty on every insert
    }
}
