// Sabotage fixture: a price-map write on an epoch-carrying oracle that
// never bumps the epoch. Never compiled — only fed to the analyzer binary.

pub struct PriceOracle {
    current: BTreeMap<Token, Wad>,
    epoch: u64,
}

impl PriceOracle {
    pub fn sneak(&mut self, token: Token, price: Wad) {
        self.current.insert(token, price);
    }
}
