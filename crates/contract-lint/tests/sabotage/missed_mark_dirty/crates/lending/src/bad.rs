// Sabotage fixture: an account-store mutation that never reaches
// `mark_dirty`. Never compiled — only fed to the analyzer binary.

pub struct Accounts {
    inner: PositionBook,
    accounts: HashMap<Address, u64>,
}

impl Accounts {
    pub fn deposit(&mut self, owner: Address, amount: u64) {
        self.accounts.insert(owner, amount);
    }
}
