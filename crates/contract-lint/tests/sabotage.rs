//! Sabotage tests: each mini-tree under `tests/sabotage/` plants one
//! contract violation; the analyzer *binary* must reject it with exit
//! code 1 and name the expected rule. This is the proof the CI gate has
//! teeth — a lexer or scoping regression that silently blinds a rule
//! fails here, not in production.

use std::path::Path;
use std::process::Command;

/// Run the built analyzer binary over one sabotage tree.
fn lint_tree(case: &str) -> (Option<i32>, String) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/sabotage")
        .join(case);
    let output = Command::new(env!("CARGO_BIN_EXE_contract-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("analyzer binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    (output.status.code(), stdout)
}

fn assert_rejects(case: &str, rule: &str) {
    let (code, stdout) = lint_tree(case);
    assert_eq!(code, Some(1), "{case}: expected exit 1, report:\n{stdout}");
    assert!(
        stdout.contains(&format!("[{rule}]")),
        "{case}: expected a {rule} finding, report:\n{stdout}"
    );
}

#[test]
fn rejects_missed_mark_dirty() {
    assert_rejects("missed_mark_dirty", "dirty-mark");
}

#[test]
fn rejects_unconsumed_accrue_moved_bit() {
    assert_rejects("unconsumed_accrue", "dirty-accrue");
}

#[test]
fn rejects_raw_arithmetic() {
    assert_rejects("raw_arith", "fixed-raw-arith");
}

#[test]
fn rejects_unwaived_unwrap() {
    assert_rejects("unwaived_unwrap", "hot-unwrap");
}

#[test]
fn rejects_epochless_oracle_write() {
    assert_rejects("oracle_write", "dirty-oracle");
}

#[test]
fn rejects_valuation_layer_float() {
    assert_rejects("fixed_float", "fixed-float");
}

#[test]
fn accepts_the_clean_control_tree() {
    let (code, stdout) = lint_tree("clean");
    assert_eq!(code, Some(0), "clean tree must pass, report:\n{stdout}");
    assert!(
        stdout.contains("(1 waived)"),
        "the control tree's justified waiver must be counted, report:\n{stdout}"
    );
}

#[test]
fn usage_errors_exit_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_contract-lint"))
        .arg("--bogus")
        .output()
        .expect("analyzer binary runs");
    assert_eq!(output.status.code(), Some(2));
}
