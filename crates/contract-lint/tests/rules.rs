//! Fixture self-tests: one bad / waived / clean triple per rule family,
//! driven through `lint_file` so each rule's trigger, waiver handling and
//! negative space are pinned down independently of the real tree.

/// Unwaived rule names that fire on `src` at `path`.
fn unwaived(path: &str, src: &str) -> Vec<&'static str> {
    contract_lint::lint_file(path, src)
        .iter()
        .filter(|f| f.waived.is_none())
        .map(|f| f.rule.name())
        .collect()
}

/// Waived rule names that fire on `src` at `path`.
fn waived(path: &str, src: &str) -> Vec<&'static str> {
    contract_lint::lint_file(path, src)
        .iter()
        .filter(|f| f.waived.is_some())
        .map(|f| f.rule.name())
        .collect()
}

// ------------------------------------------------------------- dirty-mark

const BOOK_HEADER: &str = "
    pub struct Accounts {
        inner: PositionBook,
        accounts: HashMap<Address, u64>,
    }
";

#[test]
fn dirty_mark_fires_on_unmarked_store_mutation() {
    let src = format!(
        "{BOOK_HEADER}
        impl Accounts {{
            pub fn deposit(&mut self, owner: Address, amount: u64) {{
                self.accounts.insert(owner, amount);
            }}
        }}"
    );
    assert_eq!(unwaived("crates/lending/src/bad.rs", &src), ["dirty-mark"]);
}

#[test]
fn dirty_mark_accepts_direct_mark() {
    let src = format!(
        "{BOOK_HEADER}
        impl Accounts {{
            pub fn deposit(&mut self, owner: Address, amount: u64) {{
                self.accounts.insert(owner, amount);
                self.inner.mark_dirty(owner);
            }}
        }}"
    );
    assert!(unwaived("crates/lending/src/good.rs", &src).is_empty());
}

#[test]
fn dirty_mark_propagates_coverage_from_callers() {
    // The interior helper mutates without marking, but its only caller
    // marks — the call-graph fixpoint must accept this split.
    let src = format!(
        "{BOOK_HEADER}
        impl Accounts {{
            pub fn deposit(&mut self, owner: Address, amount: u64) {{
                self.adjust(owner, amount);
                self.inner.mark_dirty(owner);
            }}
            fn adjust(&mut self, owner: Address, amount: u64) {{
                self.accounts.insert(owner, amount);
            }}
        }}"
    );
    assert!(unwaived("crates/lending/src/good.rs", &src).is_empty());
}

#[test]
fn dirty_mark_ignores_files_without_a_book() {
    let src = "
        pub struct Plain { accounts: HashMap<Address, u64> }
        impl Plain {
            pub fn deposit(&mut self, owner: Address, amount: u64) {
                self.accounts.insert(owner, amount);
            }
        }";
    assert!(unwaived("crates/lending/src/good.rs", src).is_empty());
}

// ----------------------------------------------------------- dirty-accrue

#[test]
fn dirty_accrue_fires_on_discarded_moved_bit() {
    let src = format!(
        "{BOOK_HEADER}
        impl Accounts {{
            pub fn tick(&mut self, block: u64) {{
                self.market.accrue(block);
            }}
        }}"
    );
    assert_eq!(
        unwaived("crates/lending/src/bad.rs", &src),
        ["dirty-accrue"]
    );
}

#[test]
fn dirty_accrue_fires_when_note_index_change_is_missing() {
    let src = format!(
        "{BOOK_HEADER}
        impl Accounts {{
            pub fn tick(&mut self, block: u64) {{
                let moved = self.market.accrue(block);
                if moved {{ self.count += 1; }}
            }}
        }}"
    );
    assert_eq!(
        unwaived("crates/lending/src/bad.rs", &src),
        ["dirty-accrue"]
    );
}

#[test]
fn dirty_accrue_accepts_the_canonical_consumption() {
    let src = format!(
        "{BOOK_HEADER}
        impl Accounts {{
            pub fn tick(&mut self, block: u64) {{
                if self.market.accrue(block) {{
                    self.inner.note_index_change(Token::ETH);
                }}
            }}
        }}"
    );
    assert!(unwaived("crates/lending/src/good.rs", &src).is_empty());
}

#[test]
fn dirty_accrue_ignores_three_argument_index_accrue() {
    // `InterestRateIndex::accrue(model, util, block)` is not a contract
    // point — only the single-argument `Market::accrue` shape is.
    let src = format!(
        "{BOOK_HEADER}
        impl Accounts {{
            pub fn reindex(&mut self) {{
                self.index.accrue(model, util, block);
            }}
        }}"
    );
    assert!(unwaived("crates/lending/src/good.rs", &src).is_empty());
}

// ----------------------------------------------------------- dirty-oracle

#[test]
fn dirty_oracle_fires_on_epochless_price_write() {
    let src = "
        pub struct PriceOracle {
            current: BTreeMap<Token, Wad>,
            epoch: u64,
        }
        impl PriceOracle {
            pub fn sneak(&mut self, token: Token, price: Wad) {
                self.current.insert(token, price);
            }
        }";
    assert_eq!(unwaived("crates/oracle/src/bad.rs", src), ["dirty-oracle"]);
}

#[test]
fn dirty_oracle_accepts_epoch_bumping_write() {
    let src = "
        pub struct PriceOracle {
            current: BTreeMap<Token, Wad>,
            epoch: u64,
        }
        impl PriceOracle {
            pub fn set_price(&mut self, token: Token, price: Wad) {
                self.current.insert(token, price);
                self.epoch += 1;
            }
        }";
    assert!(unwaived("crates/oracle/src/good.rs", src).is_empty());
}

#[test]
fn dirty_oracle_skips_structs_without_an_epoch() {
    // Scenario generators keep their own `current` price paths; without an
    // `epoch` field the file is not a contract point.
    let src = "
        pub struct MarketScenario { current: BTreeMap<Token, f64> }
        impl MarketScenario {
            pub fn with_token(&mut self, token: Token, price: f64) {
                self.current.insert(token, price);
            }
        }";
    assert!(unwaived("crates/oracle/src/scenario.rs", src).is_empty());
}

// -------------------------------------------------------- fixed-raw-arith

#[test]
fn raw_arith_fires_on_bare_raw_arithmetic() {
    let src = "pub fn spread(a: Wad, b: Wad) -> u128 { a.raw() - b.raw() }";
    assert_eq!(
        unwaived("crates/lending/src/bad.rs", src),
        ["fixed-raw-arith", "fixed-raw-arith"]
    );
}

#[test]
fn raw_arith_fires_on_tuple_field_arithmetic() {
    let src = "pub fn double(w: Wad) -> u128 { w.0 * 2 }";
    assert_eq!(unwaived("src/bad.rs", src), ["fixed-raw-arith"]);
}

#[test]
fn raw_arith_allows_comparisons_and_carries() {
    let src = "
        pub fn ordered(a: Wad, b: Wad) -> bool { a.raw() < b.raw() }
        pub fn carry(a: Wad) -> u128 { a.raw() }";
    assert!(unwaived("crates/lending/src/good.rs", src).is_empty());
}

#[test]
fn raw_arith_exempts_the_types_crate() {
    let src = "pub fn add(a: Wad, b: Wad) -> u128 { a.raw() + b.raw() }";
    assert!(unwaived("crates/types/src/wad.rs", src).is_empty());
}

// ------------------------------------------------------------ fixed-float

#[test]
fn fixed_float_fires_on_valuation_layer_roundtrips() {
    let src = "
        pub fn out(w: Wad) -> f64 { w.to_f64() }
        pub fn back(x: f64) -> Wad { Wad::from_f64(x) }";
    assert_eq!(
        unwaived("crates/lending/src/bad.rs", src),
        ["fixed-float", "fixed-float"]
    );
}

#[test]
fn fixed_float_exempts_the_envelope_derivation() {
    let src = "
        pub fn derive_hf_envelope(w: Wad) -> f64 { w.to_f64() }
        ";
    assert!(unwaived("crates/lending/src/fixed_spread.rs", src).is_empty());
}

#[test]
fn fixed_float_does_not_gate_scenario_space() {
    let src = "pub fn out(w: Wad) -> f64 { w.to_f64() }";
    assert!(unwaived("crates/oracle/src/scenario.rs", src).is_empty());
}

// ------------------------------------------------------------- hot-unwrap

#[test]
fn hot_unwrap_fires_in_gated_paths() {
    let src = "pub fn head(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(unwaived("crates/lending/src/bad.rs", src), ["hot-unwrap"]);
    assert_eq!(unwaived("crates/chain/src/bad.rs", src), ["hot-unwrap"]);
    assert_eq!(unwaived("crates/sim/src/engine.rs", src), ["hot-unwrap"]);
}

#[test]
fn hot_unwrap_ignores_non_hot_paths_tests_and_fallible_cousins() {
    let src = "pub fn head(x: Option<u32>) -> u32 { x.unwrap() }";
    assert!(unwaived("crates/analytics/src/report.rs", src).is_empty());

    let in_test = "
        #[cfg(test)]
        mod tests {
            fn head(x: Option<u32>) -> u32 { x.unwrap() }
        }";
    assert!(unwaived("crates/lending/src/good.rs", in_test).is_empty());

    let fallible = "pub fn head(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
    assert!(unwaived("crates/lending/src/good.rs", fallible).is_empty());
}

#[test]
fn hot_unwrap_honors_inline_waivers() {
    let src = "
        pub fn head(x: Option<u32>) -> u32 {
            x.unwrap() // lint:allow(hot-unwrap) caller guarantees Some
        }";
    assert!(unwaived("crates/lending/src/good.rs", src).is_empty());
    assert_eq!(waived("crates/lending/src/good.rs", src), ["hot-unwrap"]);
}

// -------------------------------------------------------------- hot-index

#[test]
fn hot_index_fires_on_slice_indexing() {
    let src = "pub fn head(v: &[u32]) -> u32 { v[0] }";
    assert_eq!(unwaived("crates/sim/src/session.rs", src), ["hot-index"]);
}

#[test]
fn hot_index_allows_full_range_and_declarations() {
    let src = "
        pub fn all(v: &[u32]) -> &[u32] { &v[..] }
        pub fn build() -> [u32; 3] { [1, 2, 3] }";
    assert!(unwaived("crates/sim/src/session.rs", src).is_empty());
}

// ---------------------------------------------------------- unused-waiver

#[test]
fn stale_waivers_are_findings() {
    let src = "
        pub fn fine(x: u32) -> u32 {
            x + 1 // lint:allow(hot-unwrap) nothing fires here
        }";
    assert_eq!(
        unwaived("crates/lending/src/bad.rs", src),
        ["unused-waiver"]
    );
}

#[test]
fn reasonless_waivers_do_not_suppress() {
    let src = "
        pub fn head(x: Option<u32>) -> u32 {
            x.unwrap() // lint:allow(hot-unwrap)
        }";
    let fired = unwaived("crates/lending/src/bad.rs", src);
    assert!(fired.contains(&"hot-unwrap"), "finding must stay live");
    assert!(
        fired.contains(&"unused-waiver"),
        "directive must be rejected"
    );
}

#[test]
fn whole_line_waivers_target_the_next_code_line() {
    let src = "
        pub fn head(x: Option<u32>) -> u32 {
            // lint:allow(hot-unwrap) caller guarantees Some
            x.unwrap()
        }";
    assert!(unwaived("crates/lending/src/good.rs", src).is_empty());
    assert_eq!(waived("crates/lending/src/good.rs", src), ["hot-unwrap"]);
}
