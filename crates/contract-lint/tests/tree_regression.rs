//! Tree regression: the real workspace must lint clean, and the set of
//! accepted waivers must exactly match the checked-in inventory
//! (`waivers.tsv`). Adding a waiver without updating the inventory — or
//! leaving a stale row behind after burning a waiver down — fails here.

use std::collections::BTreeMap;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let findings = contract_lint::lint_workspace(&workspace_root()).expect("workspace walk");
    let unwaived: Vec<String> = findings
        .iter()
        .filter(|f| f.waived.is_none())
        .map(|f| f.to_string())
        .collect();
    assert!(
        unwaived.is_empty(),
        "the tree must be lint-clean; fix or waive:\n{}",
        unwaived.join("\n")
    );
}

#[test]
fn waiver_inventory_matches_checked_in_tsv() {
    let findings = contract_lint::lint_workspace(&workspace_root()).expect("workspace walk");
    let actual = contract_lint::waiver_inventory(&findings);

    let tsv_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("waivers.tsv");
    let tsv = std::fs::read_to_string(&tsv_path).expect("read waivers.tsv");
    let mut expected: BTreeMap<(String, String), usize> = BTreeMap::new();
    for line in tsv.lines().filter(|l| !l.trim().is_empty()) {
        let mut cols = line.split('\t');
        let file = cols.next().expect("file column").to_string();
        let rule = cols.next().expect("rule column").to_string();
        let count: usize = cols
            .next()
            .expect("count column")
            .trim()
            .parse()
            .expect("count parses");
        expected.insert((file, rule), count);
    }

    assert_eq!(
        actual, expected,
        "waiver inventory drifted — regenerate with \
         `cargo run -p contract-lint -- --workspace --emit-waivers > \
         crates/contract-lint/waivers.tsv`"
    );
}
