//! `contract-lint` — a workspace static analyzer for the contracts that keep
//! the incremental liquidation pipeline honest.
//!
//! The correctness of the dirty-tracked [`PositionBook`] caches rests on a
//! three-hook contract that, before this crate, lived in ROADMAP prose and
//! was enforced only dynamically (the band-differential harness samples
//! executions; its sabotage tests prove one missed hook silently corrupts
//! liquidation discovery). This analyzer checks the contract at the source
//! level, on every build, for all code that doesn't exist yet. Three rule
//! families:
//!
//! | rule | checks |
//! |------|--------|
//! | `dirty-mark` | account-store mutations reach `mark_dirty` (hook 1) |
//! | `dirty-accrue` | `Market::accrue` moved-bits drive `note_index_change` (hook 2) |
//! | `dirty-oracle` | oracle price writes bump the write epoch (hook 3) |
//! | `fixed-raw-arith` | no bare integer arithmetic on `.raw()`/`.0` outside `crates/types` |
//! | `fixed-float` | no f64 round-trips on fixed-point values in `crates/lending` (envelope-slack derivation allowlisted) |
//! | `hot-unwrap` | no `unwrap`/`expect` in the gated hot paths |
//! | `hot-index` | no panicking `[…]` indexing in the gated hot paths |
//! | `unused-waiver` | every `lint:allow` directive suppresses a real finding |
//!
//! Justified residue is waived inline with
//! `// lint:allow(<rule>) <reason>` on (or directly above) the offending
//! line; the reason is mandatory and the directive errors when nothing under
//! it fires, so the checked-in waiver inventory (`waivers.tsv`) is always
//! exactly the set of accepted exceptions. See `CONTRACTS.md` at the
//! workspace root for the full rule semantics and how a new
//! `LendingProtocol` implementation stays lint-clean.
//!
//! There is no `syn`/`dylint` (the build environment has no crates.io
//! access), so the analyzer is a hand-rolled lexer + item/call-graph scanner
//! in the house style of the Knuth-D division and the hand-rolled JSON
//! encoder. It is *lexical*: scoping is by file path and token shape, not
//! type inference — the rules are written so that their blind spots are
//! conservative (see each rule module's docs).
//!
//! [`PositionBook`]: ../defi_lending/book/struct.PositionBook.html

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod dirty_set;
pub mod fixed_point;
pub mod lexer;
pub mod panic_free;
pub mod scan;

use lexer::{Tok, TokKind};

/// The enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Dirty-set hook 1: account mutations mark the book.
    DirtyMark,
    /// Dirty-set hook 2: accrual moved-bits reach the book.
    DirtyAccrue,
    /// Dirty-set hook 3: oracle writes bump the epoch.
    DirtyOracle,
    /// No bare integer arithmetic on raw fixed-point escapes.
    FixedRawArith,
    /// No f64 round-trips on fixed-point values in the valuation layer.
    FixedFloat,
    /// No `unwrap`/`expect` in gated hot paths.
    HotUnwrap,
    /// No panicking indexing in gated hot paths.
    HotIndex,
    /// A `lint:allow` directive that suppressed nothing (or lacks a reason).
    UnusedWaiver,
}

impl Rule {
    /// The kebab-case name used in waiver directives and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DirtyMark => "dirty-mark",
            Rule::DirtyAccrue => "dirty-accrue",
            Rule::DirtyOracle => "dirty-oracle",
            Rule::FixedRawArith => "fixed-raw-arith",
            Rule::FixedFloat => "fixed-float",
            Rule::HotUnwrap => "hot-unwrap",
            Rule::HotIndex => "hot-index",
            Rule::UnusedWaiver => "unused-waiver",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub msg: String,
    /// `Some(reason)` when an inline waiver accepted this finding.
    pub waived: Option<String>,
}

impl Finding {
    /// Build an unwaived finding.
    pub fn new(file: &str, line: u32, rule: Rule, msg: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            msg,
            waived: None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Start index of the postfix expression whose *last* token sits at `end`
/// (inclusive): walks left over `ident`/`self`/literal segments, matched
/// `(…)`/`[…]` groups and `.` connectors. Used to decide whether a chain is
/// an arithmetic operand or a discarded statement.
pub(crate) fn walk_left(toks: &[Tok], end: usize) -> usize {
    let mut i = end as isize;
    loop {
        // Consume one segment ending at i.
        if i < 0 {
            return 0;
        }
        let t = &toks[i as usize];
        if t.is_punct(')') || t.is_punct(']') {
            i = rev_matching(toks, i as usize) as isize - 1;
            // A call's callee / an index's base is part of the chain.
            if i >= 0
                && (toks[i as usize].kind == TokKind::Ident
                    || toks[i as usize].kind == TokKind::Lit)
            {
                i -= 1;
            }
        } else if t.kind == TokKind::Ident || t.kind == TokKind::Lit {
            i -= 1;
        } else {
            return (i + 1) as usize;
        }
        // Continue only across `.` (and `::`) connectors.
        if i >= 1 && toks[i as usize].is_punct('.') {
            i -= 1;
        } else if i >= 2 && toks[i as usize].is_punct(':') && toks[(i - 1) as usize].is_punct(':') {
            i -= 2;
        } else {
            return (i + 1) as usize;
        }
    }
}

/// Index of the opener matching the closing delimiter at `close`.
fn rev_matching(toks: &[Tok], close: usize) -> usize {
    let (o, c) = match toks[close].text.as_str() {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        "}" => ('{', '}'),
        _ => return close,
    };
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        if toks[i].is_punct(c) {
            depth += 1;
        } else if toks[i].is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    0
}

// ---------------------------------------------------------------- scoping

/// Hot paths gated by the panic-freedom rules.
fn is_hot_path(path: &str) -> bool {
    path.starts_with("crates/lending/src/")
        || path.starts_with("crates/chain/src/")
        || path == "crates/sim/src/engine.rs"
        || path == "crates/sim/src/session.rs"
        // The behavioural layer runs inside the tick loop (inventory checks,
        // latency queues, panic draws) — a panic there kills the run.
        || path == "crates/sim/src/behavior.rs"
        // The sweep runner's scoped-thread fan-out is the pattern the sharded
        // book's tick-internal workers follow; a panic there tears down every
        // in-flight run.
        || path == "crates/sim/src/sweep.rs"
        // The risk service's concurrent read/publish paths and the journal
        // reader (which parses untrusted file bytes) must not panic.
        || path == "crates/journal/src/service.rs"
        || path == "crates/journal/src/reader.rs"
}

/// Scope of the `fixed-raw-arith` rule: everywhere except the fixed-point
/// implementation itself.
fn raw_arith_scope(path: &str) -> bool {
    !path.starts_with("crates/types/src/")
}

/// Scope of the `fixed-float` rule: the valuation layer. Floats are
/// first-class in scenario/config space and the report layer; the layer the
/// band-differential harness certifies byte-exact is where every float
/// round-trip must be individually justified.
fn fixed_float_scope(path: &str) -> bool {
    path.starts_with("crates/lending/src/")
}

/// Scope of the `dirty-oracle` rule: the oracle implementation.
fn oracle_scope(path: &str) -> bool {
    path.starts_with("crates/oracle/src/")
}

// ---------------------------------------------------------------- driver

/// Lint one source file given its workspace-relative path.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let map = scan::scan(&lexed.toks);
    let mut findings = Vec::new();

    // Family 1: dirty-set contract.
    if dirty_set::owns_book(&map) {
        dirty_set::check_mark_dirty(rel_path, &lexed.toks, &map, &mut findings);
        dirty_set::check_accrue(rel_path, &lexed.toks, &map, &mut findings);
    }
    if oracle_scope(rel_path) {
        dirty_set::check_oracle_writes(rel_path, &lexed.toks, &map, &mut findings);
    }

    // Family 2: fixed-point hygiene.
    if raw_arith_scope(rel_path) {
        fixed_point::check_raw_arith(rel_path, &lexed.toks, &map, &mut findings);
    }
    if fixed_float_scope(rel_path) {
        fixed_point::check_fixed_float(rel_path, &lexed.toks, &map, &mut findings);
    }

    // Family 3: hot-path panic-freedom.
    if is_hot_path(rel_path) {
        panic_free::check_unwrap(rel_path, &lexed.toks, &map, &mut findings);
        panic_free::check_index(rel_path, &lexed.toks, &map, &mut findings);
    }

    apply_waivers(rel_path, &lexed.waivers, &mut findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Match findings against `lint:allow` directives; every directive must
/// suppress at least one finding and carry a non-empty reason.
fn apply_waivers(path: &str, waivers: &[lexer::Waiver], findings: &mut Vec<Finding>) {
    let mut used = vec![false; waivers.len()];
    for f in findings.iter_mut() {
        if let Some((wi, w)) = waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.rule == f.rule.name() && w.target_line == f.line)
        {
            if !w.reason.is_empty() {
                f.waived = Some(w.reason.clone());
                used[wi] = true;
            }
        }
    }
    for (wi, w) in waivers.iter().enumerate() {
        if !used[wi] {
            let why = if w.reason.is_empty() {
                "a waiver must state its justification after the closing parenthesis"
            } else {
                "no finding of that rule fires on the waived line — stale waivers \
                 must be removed so the inventory stays exact"
            };
            findings.push(Finding::new(
                path,
                w.line,
                Rule::UnusedWaiver,
                format!("unused `lint:allow({})`: {}", w.rule, why),
            ));
        }
    }
}

/// Walk a workspace root and lint every in-scope source file.
///
/// Scanned: `src/` of the umbrella package and of every crate under
/// `crates/`, except `crates/support` (vendored API stubs for absent
/// crates.io dependencies — not our code) and `crates/contract-lint` itself
/// (whose fixtures are deliberate violations).
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "support" || name == "contract-lint" {
                continue;
            }
            let src = entry.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut files)?;
            }
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for (rel, abs) in files {
        let source =
            std::fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        findings.extend(lint_file(&rel, &source));
    }
    Ok(findings)
}

/// Recursively collect `.rs` files under `dir`, storing workspace-relative
/// paths with `/` separators (so reports and the waiver inventory are
/// platform-stable).
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Aggregate the waived findings as `(file, rule) -> count`, the shape of
/// the checked-in `waivers.tsv` inventory.
pub fn waiver_inventory(findings: &[Finding]) -> BTreeMap<(String, String), usize> {
    let mut inv: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings.iter().filter(|f| f.waived.is_some()) {
        *inv.entry((f.file.clone(), f.rule.name().to_string()))
            .or_insert(0) += 1;
    }
    inv
}
