//! Rule family 1: the dirty-set contract of the incremental `PositionBook`.
//!
//! The contract (ROADMAP, "Incremental valuation") has three hooks, and each
//! gets one rule:
//!
//! * **`dirty-mark`** — in a module that owns a `PositionBook`, every
//!   `&mut self` method that mutates an account store (a `HashMap`/`BTreeMap`
//!   keyed by `Address`) must reach a `mark_dirty` call: either its own body
//!   calls it, or *every* intra-file caller (transitively) does. The
//!   call-graph propagation is what lets interior helpers like
//!   `adjust_collateral` stay hook-free as long as all of their entry points
//!   mark.
//! * **`dirty-accrue`** — every single-argument `.accrue(block)` call (the
//!   `Market::accrue` shape; the three-argument `InterestRateIndex::accrue`
//!   is not a contract point) must consume the returned moved-bit, and the
//!   enclosing function must call `note_index_change` so a moved index
//!   actually reaches the book.
//! * **`dirty-oracle`** — inside the oracle crate, any method that inserts
//!   into the current-price or token-epoch maps must bump the write epoch;
//!   otherwise downstream books would serve stale valuations while believing
//!   themselves synced.

use crate::lexer::Tok;
use crate::scan::{matching, FileMap};
use crate::{walk_left, Finding, Rule};

/// Container methods that mutate an account store.
const MUT_METHODS: &[&str] = &[
    "insert", "remove", "entry", "get_mut", "retain", "clear", "drain",
];

/// Whether this file defines a struct owning a `PositionBook` (the scope of
/// the `dirty-mark` and `dirty-accrue` rules).
pub fn owns_book(map: &FileMap) -> bool {
    map.structs.iter().any(|s| {
        s.fields
            .iter()
            .any(|f| f.ty.iter().any(|t| t == "PositionBook"))
    })
}

/// Names of account-store fields: map fields keyed by `Address` on a struct
/// that also owns the book.
fn account_stores(map: &FileMap) -> Vec<String> {
    let mut out = Vec::new();
    for s in &map.structs {
        if !s
            .fields
            .iter()
            .any(|f| f.ty.iter().any(|t| t == "PositionBook"))
        {
            continue;
        }
        for f in &s.fields {
            let is_map = f.ty.iter().any(|t| t == "HashMap" || t == "BTreeMap");
            let keyed_by_address = f.ty.iter().any(|t| t == "Address");
            if is_map && keyed_by_address {
                out.push(f.name.clone());
            }
        }
    }
    out
}

/// `dirty-mark`: account-store mutations must reach `mark_dirty`.
pub fn check_mark_dirty(path: &str, toks: &[Tok], map: &FileMap, findings: &mut Vec<Finding>) {
    let stores = account_stores(map);
    if stores.is_empty() {
        return;
    }
    // Per function: does it mutate a store, does it call mark_dirty, and
    // which same-file functions does it call?
    let n = map.fns.len();
    let mut mutates: Vec<Option<String>> = vec![None; n];
    let mut marks = vec![false; n];
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
    let name_to_idx: std::collections::HashMap<&str, Vec<usize>> = {
        let mut m: std::collections::HashMap<&str, Vec<usize>> = std::collections::HashMap::new();
        for (i, f) in map.fns.iter().enumerate() {
            m.entry(f.name.as_str()).or_default().push(i);
        }
        m
    };
    for (fi, f) in map.fns.iter().enumerate() {
        let Some((bs, be)) = f.body else { continue };
        if map.in_test(bs) {
            continue;
        }
        for i in bs..=be {
            // `self . <store> . <mut method>`
            if i + 4 <= be
                && toks[i].is_ident("self")
                && toks[i + 1].is_punct('.')
                && stores.iter().any(|s| toks[i + 2].is_ident(s))
                && toks[i + 3].is_punct('.')
                && MUT_METHODS.iter().any(|m| toks[i + 4].is_ident(m))
            {
                mutates[fi].get_or_insert_with(|| toks[i + 2].text.clone());
            }
            if toks[i].is_ident("mark_dirty") && i > 0 && toks[i - 1].is_punct('.') {
                marks[fi] = true;
            }
            // Call edges: any ident followed by `(` that names a same-file fn.
            if toks[i].kind == crate::lexer::TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                if let Some(callees) = name_to_idx.get(toks[i].text.as_str()) {
                    for &c in callees {
                        if c != fi {
                            calls[fi].push(c);
                        }
                    }
                }
            }
        }
    }
    // callers[i] = indices of fns that call fn i.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in calls.iter().enumerate() {
        for &callee in callees {
            callers[callee].push(caller);
        }
    }
    // Fixpoint: a fn is covered if it marks itself, or it has callers and
    // every caller is covered (the hook fires on every path into it).
    let mut covered = marks.clone();
    loop {
        let mut changed = false;
        for i in 0..n {
            if !covered[i] && !callers[i].is_empty() && callers[i].iter().all(|&c| covered[c]) {
                covered[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (fi, f) in map.fns.iter().enumerate() {
        if let Some(store) = &mutates[fi] {
            if f.mut_self && !covered[fi] {
                findings.push(Finding::new(
                    path,
                    f.line,
                    Rule::DirtyMark,
                    format!(
                        "method `{}` mutates account store `{}` but neither it nor \
                         all of its callers reach `mark_dirty` (dirty-set hook 1)",
                        f.name, store
                    ),
                ));
            }
        }
    }
}

/// `dirty-accrue`: single-argument `.accrue()` calls must consume the
/// moved-bit and sit in a function that calls `note_index_change`.
pub fn check_accrue(path: &str, toks: &[Tok], map: &FileMap, findings: &mut Vec<Finding>) {
    let mut i = 1;
    while i + 1 < toks.len() {
        if toks[i].is_ident("accrue")
            && toks[i - 1].is_punct('.')
            && toks[i + 1].is_punct('(')
            && !map.in_test(i)
        {
            let open = i + 1;
            let close = matching(toks, open);
            if count_args(toks, open, close) == 1 {
                // Start of the receiver chain (`walk_left` wants the last
                // receiver token, just before the `.accrue`).
                let chain_start = walk_left(toks, i.saturating_sub(2));
                let discarded = toks.get(close + 1).is_some_and(|t| t.is_punct(';'))
                    && (chain_start == 0
                        || toks[chain_start - 1].is_punct(';')
                        || toks[chain_start - 1].is_punct('{')
                        || toks[chain_start - 1].is_punct('}'));
                if discarded {
                    findings.push(Finding::new(
                        path,
                        toks[i].line,
                        Rule::DirtyAccrue,
                        "`Market::accrue` moved-bit discarded: the call's returned \
                         index-moved flag must drive `note_index_change` (dirty-set hook 2)"
                            .to_string(),
                    ));
                } else {
                    let noted = map
                        .enclosing_fn(i)
                        .and_then(|f| f.body)
                        .is_some_and(|(bs, be)| {
                            toks[bs..=be]
                                .iter()
                                .any(|t| t.is_ident("note_index_change"))
                        });
                    if !noted {
                        findings.push(Finding::new(
                            path,
                            toks[i].line,
                            Rule::DirtyAccrue,
                            "`Market::accrue` called but the enclosing function never \
                             calls `note_index_change` (dirty-set hook 2)"
                                .to_string(),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

/// `dirty-oracle`: price-map writes inside the oracle must bump the epoch.
///
/// Gated to files defining a struct with an `epoch` field (the epoch-carrying
/// `PriceOracle` itself): scenario generators keep their own `current` price
/// paths, but those only reach books through `set_price`, so they are not
/// contract points.
pub fn check_oracle_writes(path: &str, toks: &[Tok], map: &FileMap, findings: &mut Vec<Finding>) {
    if !map
        .structs
        .iter()
        .any(|s| s.fields.iter().any(|f| f.name == "epoch"))
    {
        return;
    }
    for f in &map.fns {
        let Some((bs, be)) = f.body else { continue };
        if map.in_test(bs) {
            continue;
        }
        let mut writes_price_map = None;
        let mut bumps_epoch = false;
        let mut i = bs;
        while i + 2 <= be {
            if (toks[i].is_ident("current") || toks[i].is_ident("token_epochs"))
                && toks[i + 1].is_punct('.')
                && toks[i + 2].is_ident("insert")
            {
                writes_price_map.get_or_insert_with(|| toks[i].text.clone());
            }
            // `self.epoch += 1` or `self.epoch = …`: ident `epoch` followed
            // by `+`/`=`.
            if toks[i].is_ident("epoch") && (toks[i + 1].is_punct('+') || toks[i + 1].is_punct('='))
            {
                bumps_epoch = true;
            }
            i += 1;
        }
        if let Some(map_name) = writes_price_map {
            if !bumps_epoch {
                findings.push(Finding::new(
                    path,
                    f.line,
                    Rule::DirtyOracle,
                    format!(
                        "method `{}` writes the oracle `{}` map without bumping the \
                         write epoch — downstream books would never see the change \
                         (dirty-set hook 3)",
                        f.name, map_name
                    ),
                ));
            }
        }
    }
}

/// Count top-level comma-separated arguments between `open` and `close`.
fn count_args(toks: &[Tok], open: usize, close: usize) -> usize {
    if close <= open + 1 {
        return 0;
    }
    let mut depth = 0i32;
    let mut args = 1;
    for t in &toks[open + 1..close] {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(',') {
            args += 1;
        }
    }
    args
}
