//! A minimal Rust lexer: just enough token structure for the contract rules.
//!
//! The analyzer has no crates.io access (no `syn`, no `dylint`), so source
//! files are tokenized by hand in the same house style as the hand-rolled
//! JSON encoder in `defi-bench`. The lexer understands everything that could
//! make a naive substring scan lie about code:
//!
//! * line comments, nested block comments and doc comments are skipped (but
//!   `lint:allow` waiver directives inside line comments are collected);
//! * string literals — plain, byte, raw with any number of `#` guards — and
//!   character literals are swallowed as single `Lit` tokens, so an
//!   `"unwrap"` inside a format string never looks like a method call;
//! * lifetimes (`'a`) are distinguished from character literals (`'a'`);
//! * numbers keep their suffixes and decimal points together (`1e-6` splits
//!   at the sign, which no rule cares about).
//!
//! Everything else becomes an `Ident` (keywords included — the scanner
//! matches them by text) or a single-character `Punct`. Multi-character
//! operators are recognised contextually by the rules (`->` is a `-` punct
//! followed by a `>` punct).

/// The coarse kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String/char/number literal (contents are opaque to the rules).
    Lit,
    /// A lifetime or loop label (`'a`), quote included.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// The token text (for `Lit`, the raw source slice).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Whether this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// An inline `// lint:allow(<rule>) <reason>` waiver directive.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the directive comment sits on.
    pub line: u32,
    /// Line the waiver applies to: the directive's own line when the comment
    /// trails code, otherwise the next line that carries a token.
    pub target_line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the closing parenthesis (may be empty — the
    /// rules reject empty reasons).
    pub reason: String,
}

/// A fully lexed source file.
#[derive(Debug)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Waiver directives found in line comments, targets resolved.
    pub waivers: Vec<Waiver>,
}

/// Marker inside a line comment that introduces a waiver directive.
const WAIVER_MARKER: &str = "lint:allow(";

/// Tokenize `source`, collecting waiver directives on the way.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = &source[start..i];
                if let Some(pos) = comment.find(WAIVER_MARKER) {
                    let rest = &comment[pos + WAIVER_MARKER.len()..];
                    if let Some(close) = rest.find(')') {
                        waivers.push(Waiver {
                            line,
                            target_line: line, // provisional; resolved below
                            rule: rest[..close].trim().to_string(),
                            reason: rest[close + 1..].trim().to_string(),
                        });
                    }
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (end, newlines) = scan_string(bytes, i);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: source[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            '\'' => {
                let (tok_end, kind, newlines) = scan_quote(bytes, i);
                toks.push(Tok {
                    kind,
                    text: source[i..tok_end].to_string(),
                    line,
                });
                line += newlines;
                i = tok_end;
            }
            c if c.is_ascii_digit() => {
                let end = scan_number(bytes, i);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c.is_alphabetic() || c == '_' => {
                // Raw/byte string prefixes first: r"", r#""#, b"", br#""#, b''.
                if let Some((end, newlines)) = scan_prefixed_literal(bytes, i) {
                    toks.push(Tok {
                        kind: TokKind::Lit,
                        text: source[i..end].to_string(),
                        line,
                    });
                    line += newlines;
                    i = end;
                } else {
                    let mut end = i;
                    while end < bytes.len()
                        && ((bytes[end] as char).is_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: source[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    resolve_waiver_targets(&toks, &mut waivers);
    Lexed { toks, waivers }
}

/// Point each whole-line waiver at the next line that carries a token; a
/// directive trailing code on its own line keeps that line as its target.
fn resolve_waiver_targets(toks: &[Tok], waivers: &mut [Waiver]) {
    for w in waivers.iter_mut() {
        let has_code_on_line = toks.iter().any(|t| t.line == w.line);
        if !has_code_on_line {
            if let Some(next) = toks.iter().map(|t| t.line).find(|&l| l > w.line) {
                w.target_line = next;
            }
        }
    }
}

/// Scan a double-quoted string starting at `start`; returns (end index past
/// the closing quote, newline count inside).
fn scan_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Scan from a `'`: either a lifetime/label (`'a`) or a char literal (`'a'`,
/// `'\n'`). Returns (end, kind, newlines).
fn scan_quote(bytes: &[u8], start: usize) -> (usize, TokKind, u32) {
    let mut i = start + 1;
    if i < bytes.len() && ((bytes[i] as char).is_alphabetic() || bytes[i] == b'_') {
        // Could be a lifetime or a char like 'a'.
        let mut end = i;
        while end < bytes.len() && ((bytes[end] as char).is_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        if bytes.get(end) == Some(&b'\'') {
            return (end + 1, TokKind::Lit, 0);
        }
        return (end, TokKind::Lifetime, 0);
    }
    // Escaped or punctuation char literal: scan to the closing quote.
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'\'' => return (i + 1, TokKind::Lit, newlines),
            _ => i += 1,
        }
    }
    (i, TokKind::Lit, newlines)
}

/// Scan a numeric literal (decimal point and exponent sign included).
fn scan_number(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_alphanumeric() || c == '_' {
            // Signed exponent: `1e-6` / `2.5E+9`.
            if (c == 'e' || c == 'E')
                && !bytes[start..].starts_with(b"0x")
                && matches!(bytes.get(i + 1), Some(b'+') | Some(b'-'))
                && bytes
                    .get(i + 2)
                    .is_some_and(|b| (*b as char).is_ascii_digit())
            {
                i += 2;
            }
            i += 1;
        } else if c == '.'
            && bytes
                .get(i + 1)
                .is_some_and(|b| (*b as char).is_ascii_digit())
        {
            // Decimal point only when followed by a digit (so `1..n` stays a
            // range and `x.0` stays a tuple access).
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Scan raw/byte string or byte-char literals (`r".."`, `r#"…"#`, `b".."`,
/// `br#"…"#`, `b'x'`). Returns `None` when the position is a plain ident.
fn scan_prefixed_literal(bytes: &[u8], start: usize) -> Option<(usize, u32)> {
    let mut i = start;
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        raw = true;
        i += 1;
    }
    if i == start {
        return None; // neither prefix consumed
    }
    let mut hashes = 0usize;
    while raw && i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() {
        return None;
    }
    match bytes[i] {
        b'"' if raw => {
            // Raw string: ends at `"` followed by `hashes` hash marks.
            let mut j = i + 1;
            let mut newlines = 0;
            while j < bytes.len() {
                if bytes[j] == b'\n' {
                    newlines += 1;
                } else if bytes[j] == b'"'
                    && j + 1 + hashes <= bytes.len()
                    && bytes[j + 1..j + 1 + hashes].iter().all(|&b| b == b'#')
                {
                    return Some((j + 1 + hashes, newlines));
                }
                j += 1;
            }
            Some((j, newlines))
        }
        b'"' if !raw && hashes == 0 => {
            let (end, newlines) = scan_string(bytes, i);
            Some((end, newlines))
        }
        b'\'' if !raw && hashes == 0 && bytes[start] == b'b' => {
            let (end, _, newlines) = scan_quote(bytes, i);
            Some((end, newlines))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = texts(r#"let x = "a.unwrap()"; // .unwrap() here too"#);
        assert_eq!(toks, vec!["let", "x", "=", "\"a.unwrap()\"", ";"]);
    }

    #[test]
    fn nested_block_comments_skip() {
        let toks = texts("a /* x /* y */ z */ b");
        assert_eq!(toks, vec!["a", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "'a'"));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let toks = texts(r##"let s = r#"has "quotes" and .unwrap()"#; done"##);
        assert_eq!(toks.last().map(String::as_str), Some("done"));
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn numbers_keep_exponents_and_points() {
        let toks = texts("let x = 1e-6 + 2.5 + 0xff_u32 + 1..4");
        assert!(toks.contains(&"1e-6".to_string()));
        assert!(toks.contains(&"2.5".to_string()));
        assert!(toks.contains(&"0xff_u32".to_string()));
        // `1..4` keeps its range dots as puncts.
        assert!(toks
            .windows(3)
            .any(|w| w[0] == "." && w[1] == "." && w[2] == "4"));
    }

    #[test]
    fn tuple_field_access_is_not_a_decimal() {
        let toks = texts("x.0 + y");
        assert_eq!(toks, vec!["x", ".", "0", "+", "y"]);
    }

    #[test]
    fn waiver_directive_trailing_code_targets_own_line() {
        let lexed = lex("let x = a.unwrap(); // lint:allow(hot-unwrap) impossible by guard\n");
        assert_eq!(lexed.waivers.len(), 1);
        let w = &lexed.waivers[0];
        assert_eq!(w.rule, "hot-unwrap");
        assert_eq!(w.reason, "impossible by guard");
        assert_eq!(w.target_line, 1);
    }

    #[test]
    fn whole_line_waiver_targets_next_code_line() {
        let src = "// lint:allow(hot-index) slot checked above\n\nlet x = v[0];\n";
        let lexed = lex(src);
        assert_eq!(lexed.waivers[0].target_line, 3);
    }
}
