//! CLI for the contract analyzer.
//!
//! ```text
//! cargo run -p contract-lint -- --workspace            # lint the tree, exit 1 on findings
//! cargo run -p contract-lint -- --root <dir>           # lint another tree (fixtures, CI checkouts)
//! cargo run -p contract-lint -- --workspace --emit-waivers   # print the waiver inventory TSV
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or stale waivers), 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut emit_waivers = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {
                if root.is_none() {
                    root = Some(PathBuf::from("."));
                }
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("contract-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--emit-waivers" => emit_waivers = true,
            other => {
                eprintln!(
                    "contract-lint: unknown argument `{other}` \
                     (use --workspace, --root <dir>, --emit-waivers)"
                );
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("contract-lint: pass --workspace (or --root <dir>)");
        return ExitCode::from(2);
    };

    let findings = match contract_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("contract-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if emit_waivers {
        for ((file, rule), count) in contract_lint::waiver_inventory(&findings) {
            println!("{file}\t{rule}\t{count}");
        }
        return ExitCode::SUCCESS;
    }

    let waived = findings.iter().filter(|f| f.waived.is_some()).count();
    let mut failed = 0usize;
    for f in findings.iter().filter(|f| f.waived.is_none()) {
        println!("{f}");
        failed += 1;
    }
    println!(
        "contract-lint: {failed} finding{} ({waived} waived)",
        if failed == 1 { "" } else { "s" }
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
