//! Rule family 2: fixed-point hygiene.
//!
//! All valuation math runs on `Wad`/`Ray` fixed-point integers whose
//! arithmetic is checked/saturating by construction (`crates/types`). Two
//! habits can silently reintroduce the rounding and overflow bugs that layer
//! guards against:
//!
//! * **`fixed-raw-arith`** — doing bare integer arithmetic on `.raw()` /
//!   `.0` escapes outside `crates/types`. The raw value is only meant to be
//!   *carried* (into ordered indexes, `mul_div_*` helpers, comparisons),
//!   never recombined with `+ - * / %` at call sites where wrap and
//!   truncation are unchecked.
//! * **`fixed-float`** — converting fixed-point values through `f64`
//!   (`to_f64`, `from_f64`, `as f64` on raw scale constants) inside the
//!   valuation layer (`crates/lending`). Floats are fine in scenario/config
//!   space and in the report layer; in the layer whose exactness the
//!   band-differential harness certifies, every float round-trip must be
//!   individually justified. The conservative envelope-slack derivation
//!   (`derive_hf_envelope`) is allowlisted: its use of `f64` is one-sided by
//!   construction (the slack is shaved below the value the inequalities were
//!   verified with).

use crate::lexer::{Tok, TokKind};
use crate::scan::{matching, FileMap};
use crate::{walk_left, Finding, Rule};

/// Functions allowlisted for `fixed-float`, per file suffix.
const FLOAT_ALLOWLIST: &[(&str, &str)] =
    &[("crates/lending/src/fixed_spread.rs", "derive_hf_envelope")];

/// Fixed-point type names whose locals we track for `.0` access.
const FIXED_TYPES: &[&str] = &["Wad", "Ray", "Price"];

/// Binary arithmetic operator characters.
fn is_arith(t: &Tok) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%")
}

/// Whether the token *after* an expression makes it an arithmetic operand
/// (`-` followed by `>` is an arrow, not a subtraction).
fn arith_on_right(toks: &[Tok], idx: usize) -> bool {
    toks.get(idx).is_some_and(is_arith)
        && !(toks[idx].is_punct('-') && toks.get(idx + 1).is_some_and(|t| t.is_punct('>')))
}

/// Whether the token *before* a postfix chain makes it an arithmetic
/// operand: the operator must itself be binary (preceded by a value), so a
/// unary `-`/`*`/`&` does not count.
fn arith_on_left(toks: &[Tok], chain_start: usize) -> bool {
    if chain_start == 0 {
        return false;
    }
    let op = &toks[chain_start - 1];
    if !is_arith(op) {
        return false;
    }
    if op.is_punct('-') && chain_start >= 2 && toks[chain_start - 2].is_punct('-') {
        return false; // `--` can't appear; defensive
    }
    // Binary iff the operator is preceded by a value-ish token.
    chain_start >= 2
        && matches!(
            &toks[chain_start - 2],
            t if t.kind == TokKind::Ident || t.kind == TokKind::Lit
                || t.is_punct(')') || t.is_punct(']')
        )
}

/// `fixed-raw-arith`: flag `.raw()` (and `.0` on tracked fixed-point locals)
/// used directly as an arithmetic operand.
pub fn check_raw_arith(path: &str, toks: &[Tok], map: &FileMap, findings: &mut Vec<Finding>) {
    // `.raw()` everywhere in scope.
    for i in 1..toks.len() {
        if toks[i].is_ident("raw")
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !map.in_test(i)
        {
            let close = matching(toks, i + 1);
            // Receiver chain start (`walk_left` wants the last receiver
            // token, just before the `.raw`).
            let chain_start = walk_left(toks, i.saturating_sub(2));
            if arith_on_right(toks, close + 1) || arith_on_left(toks, chain_start) {
                findings.push(Finding::new(
                    path,
                    toks[i].line,
                    Rule::FixedRawArith,
                    "bare integer arithmetic on a `.raw()` escape — route the \
                     operation through the checked `Wad`/`Ray` API or a \
                     `mul_div_*` helper in `crates/types`"
                        .to_string(),
                ));
            }
        }
    }
    // `.0` on locals/params annotated with a fixed-point type.
    for f in &map.fns {
        let Some((bs, be)) = f.body else { continue };
        if map.in_test(bs) {
            continue;
        }
        let mut fixed_idents: Vec<&str> = Vec::new();
        let (ps, pe) = f.params;
        let mut collect = |range: (usize, usize)| {
            for i in range.0..range.1.saturating_sub(1) {
                if toks[i].kind == TokKind::Ident
                    && toks[i + 1].is_punct(':')
                    && toks
                        .get(i + 2)
                        .is_some_and(|t| FIXED_TYPES.iter().any(|ty| t.is_ident(ty)))
                {
                    fixed_idents.push(toks[i].text.as_str());
                }
            }
        };
        collect((ps, pe));
        collect((bs, be));
        if fixed_idents.is_empty() {
            continue;
        }
        for i in bs..be.saturating_sub(1) {
            if toks[i].kind == TokKind::Ident
                && fixed_idents.contains(&toks[i].text.as_str())
                && toks[i + 1].is_punct('.')
                && toks[i + 2].kind == TokKind::Lit
                && toks[i + 2].text == "0"
            {
                let chain_start = i;
                if arith_on_right(toks, i + 3) || arith_on_left(toks, chain_start) {
                    findings.push(Finding::new(
                        path,
                        toks[i].line,
                        Rule::FixedRawArith,
                        format!(
                            "bare integer arithmetic on `{}.0` (a fixed-point raw \
                             field) — use the checked `Wad`/`Ray` operations",
                            toks[i].text
                        ),
                    ));
                }
            }
        }
    }
}

/// `fixed-float`: flag float round-trips on fixed-point values inside the
/// valuation layer.
pub fn check_fixed_float(path: &str, toks: &[Tok], map: &FileMap, findings: &mut Vec<Finding>) {
    let allowed_fns: Vec<&str> = FLOAT_ALLOWLIST
        .iter()
        .filter(|(file, _)| path.ends_with(file) || *file == path)
        .map(|(_, f)| *f)
        .collect();
    let in_allowed = |idx: usize| -> bool {
        map.enclosing_fn(idx)
            .is_some_and(|f| allowed_fns.contains(&f.name.as_str()))
    };
    for i in 0..toks.len() {
        if map.in_test(i) || in_allowed(i) {
            continue;
        }
        // `.to_f64()`
        if toks[i].is_ident("to_f64")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            findings.push(Finding::new(
                path,
                toks[i].line,
                Rule::FixedFloat,
                "fixed-point value converted to f64 in the valuation layer — \
                 stay in Wad/Ray or waive with the conversion's error bound"
                    .to_string(),
            ));
        }
        // `from_f64(…)` (any path prefix: `Wad::from_f64`, bare import).
        if toks[i].is_ident("from_f64") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            findings.push(Finding::new(
                path,
                toks[i].line,
                Rule::FixedFloat,
                "fixed-point value built from an f64 in the valuation layer — \
                 construct exactly (from_int / from_raw / mul_div) or waive \
                 with a reason"
                    .to_string(),
            ));
        }
        // `WAD as f64` / `RAY as f64`: lossy cast of a raw scale constant.
        if (toks[i].is_ident("WAD") || toks[i].is_ident("RAY"))
            && toks.get(i + 1).is_some_and(|t| t.is_ident("as"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("f64"))
        {
            findings.push(Finding::new(
                path,
                toks[i].line,
                Rule::FixedFloat,
                format!(
                    "raw scale constant `{}` cast to f64 — a lossy round-trip \
                     in the valuation layer needs an explicit waiver",
                    toks[i].text
                ),
            ));
        }
        // `.raw() as f64` / `.0 as f64`.
        if toks[i].is_ident("as")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("f64"))
            && i >= 3
            && toks[i - 1].is_punct(')')
            && toks[walk_left(toks, i - 1)..i]
                .iter()
                .any(|t| t.is_ident("raw"))
        {
            findings.push(Finding::new(
                path,
                toks[i].line,
                Rule::FixedFloat,
                "`.raw()` cast to f64 — a lossy round-trip in the valuation \
                 layer needs an explicit waiver"
                    .to_string(),
            ));
        }
    }
}
