//! Item-level structure over the token stream: functions (with receiver and
//! body spans), struct fields, `#[cfg(test)]` regions and an intra-file call
//! graph. This is deliberately *not* a parser — it recovers exactly the shape
//! the contract rules need and nothing more.

use crate::lexer::{Tok, TokKind};

/// A `fn` item (free function or method) found in the file.
#[derive(Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range (inclusive open brace, inclusive close brace) of the
    /// parameter list.
    pub params: (usize, usize),
    /// Token range of the body braces; `None` for bodiless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Whether the receiver is `&mut self`.
    pub mut_self: bool,
}

/// One struct field: name plus the token texts of its type.
#[derive(Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// The type, as raw token texts (good enough for "contains `HashMap`
    /// keyed by `Address`" style questions).
    pub ty: Vec<String>,
}

/// A struct definition with named fields.
#[derive(Debug)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// Named fields (tuple/unit structs contribute none).
    pub fields: Vec<Field>,
}

/// The scanned structure of one file.
#[derive(Debug, Default)]
pub struct FileMap {
    /// Every `fn` item, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Every struct with named fields.
    pub structs: Vec<StructItem>,
    /// Token ranges of `#[cfg(test)] mod … { … }` bodies.
    pub test_spans: Vec<(usize, usize)>,
}

impl FileMap {
    /// Whether token index `idx` falls inside a `#[cfg(test)]` module.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    /// The innermost function whose body contains token index `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| idx >= s && idx <= e))
            .min_by_key(|f| {
                let (s, e) = f.body.unwrap_or((0, usize::MAX));
                e - s
            })
    }
}

/// Index of the delimiter matching the opener at `open` (`(`/`[`/`{`).
/// Returns the last token index when unbalanced (defensive; real files
/// balance).
pub fn matching(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Scan the token stream into items.
pub fn scan(toks: &[Tok]) -> FileMap {
    let mut map = FileMap::default();
    let mut i = 0usize;
    let mut cfg_test_pending = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Attribute: detect #[cfg(test)], then skip the whole attribute.
            let close = matching(toks, i + 1);
            let inner: Vec<&str> = toks[i + 2..close].iter().map(|t| t.text.as_str()).collect();
            if inner.len() >= 4 && inner[0] == "cfg" && inner[1] == "(" && inner[2] == "test" {
                cfg_test_pending = true;
            }
            i = close + 1;
            continue;
        }
        if t.is_ident("mod") && cfg_test_pending {
            // `#[cfg(test)] mod name { … }` — record and skip the body.
            cfg_test_pending = false;
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = matching(toks, j);
                map.test_spans.push((j, end));
                i = end + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("struct") {
            cfg_test_pending = false;
            if let Some((item, next)) = scan_struct(toks, i) {
                map.structs.push(item);
                i = next;
                continue;
            }
        }
        if t.is_ident("fn") {
            cfg_test_pending = false;
            if let Some((item, body_start)) = scan_fn(toks, i) {
                // Continue scanning *inside* the body (nested items, and the
                // rules index into the same stream), so only step past `fn`
                // and its header.
                let next = body_start;
                map.fns.push(item);
                i = next;
                continue;
            }
        }
        // A `#[cfg(test)]` that did not end up on a `mod` (e.g. on a `use`
        // or an item kind we don't model) stops being pending at the next
        // statement boundary.
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            cfg_test_pending = false;
        }
        i += 1;
    }
    map
}

/// Scan a `struct` item starting at the `struct` keyword. Returns the item
/// and the index to resume scanning from.
fn scan_struct(toks: &[Tok], kw: usize) -> Option<(StructItem, usize)> {
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let mut i = kw + 2;
    // Skip generics.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(toks, i);
    }
    let mut item = StructItem {
        name: name.text.clone(),
        fields: Vec::new(),
    };
    match toks.get(i) {
        Some(t) if t.is_punct('{') => {
            let end = matching(toks, i);
            let mut j = i + 1;
            while j < end {
                // Skip attributes and visibility.
                if toks[j].is_punct('#') && toks.get(j + 1).is_some_and(|n| n.is_punct('[')) {
                    j = matching(toks, j + 1) + 1;
                    continue;
                }
                if toks[j].is_ident("pub") {
                    j += 1;
                    if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                        j = matching(toks, j) + 1;
                    }
                    continue;
                }
                // `name : type , …`
                if toks[j].kind == TokKind::Ident
                    && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                {
                    let fname = toks[j].text.clone();
                    let mut k = j + 2;
                    let mut ty = Vec::new();
                    let mut depth = 0i32;
                    while k < end {
                        let tt = &toks[k];
                        if depth == 0 && tt.is_punct(',') {
                            break;
                        }
                        if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                            depth += 1;
                        } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                            depth -= 1;
                        }
                        ty.push(tt.text.clone());
                        k += 1;
                    }
                    item.fields.push(Field { name: fname, ty });
                    j = k + 1;
                    continue;
                }
                j += 1;
            }
            Some((item, end + 1))
        }
        Some(t) if t.is_punct('(') => Some((item, matching(toks, i) + 1)),
        _ => Some((item, i + 1)),
    }
}

/// Scan a `fn` item starting at the `fn` keyword. Returns the item and the
/// index to resume from (just *inside* the body, so nested fns are found).
fn scan_fn(toks: &[Tok], kw: usize) -> Option<(FnItem, usize)> {
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let mut i = kw + 2;
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(toks, i);
    }
    if !toks.get(i).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let params_end = matching(toks, i);
    let params = (i, params_end);
    let mut_self = toks[i..=params_end]
        .windows(2)
        .any(|w| w[0].is_ident("mut") && w[1].is_ident("self"));
    // Find the body `{` or a terminating `;` (trait signature).
    let mut j = params_end + 1;
    let mut body = None;
    while let Some(t) = toks.get(j) {
        if t.is_punct('{') {
            body = Some((j, matching(toks, j)));
            break;
        }
        if t.is_punct(';') {
            break;
        }
        j += 1;
    }
    let resume = match body {
        Some((s, _)) => s + 1,
        None => j + 1,
    };
    Some((
        FnItem {
            name: name.text.clone(),
            line: toks[kw].line,
            params,
            body,
            mut_self,
        },
        resume,
    ))
}

/// Skip a generics list starting at `<`, tolerating `->` arrows inside
/// (e.g. `fn f<F: Fn() -> bool>`): a `>` preceded by `-` closes nothing.
fn skip_generics(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_fns_and_receivers() {
        let src = "impl Foo { pub fn a(&mut self, x: u32) -> bool { x > 0 } fn b(&self) {} }";
        let map = scan(&lex(src).toks);
        assert_eq!(map.fns.len(), 2);
        assert!(map.fns[0].mut_self);
        assert!(!map.fns[1].mut_self);
    }

    #[test]
    fn struct_fields_capture_types() {
        let src = "pub struct P { accounts: HashMap<Address, Account>, book: PositionBook }";
        let map = scan(&lex(src).toks);
        assert_eq!(map.structs.len(), 1);
        let s = &map.structs[0];
        assert_eq!(s.fields.len(), 2);
        assert!(s.fields[0].ty.contains(&"Address".to_string()));
        assert!(s.fields[1].ty.contains(&"PositionBook".to_string()));
    }

    #[test]
    fn cfg_test_mod_is_spanned() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn helper() { v.unwrap(); } }";
        let lexed = lex(src);
        let map = scan(&lexed.toks);
        let unwrap_idx = lexed
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(map.in_test(unwrap_idx));
        let live_body = map.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(!map.in_test(live_body.body.unwrap().0));
    }

    #[test]
    fn nested_fn_bodies_resolve_innermost() {
        let src = "fn outer() { fn inner() { let x = 1; } }";
        let lexed = lex(src);
        let map = scan(&lexed.toks);
        assert_eq!(map.fns.len(), 2);
        let x_idx = lexed.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(map.enclosing_fn(x_idx).unwrap().name, "inner");
    }

    #[test]
    fn generic_fn_with_arrow_bound_parses() {
        let src = "fn f<F: Fn() -> bool>(pred: F) -> bool { pred() }";
        let map = scan(&lex(src).toks);
        assert_eq!(map.fns.len(), 1);
        assert_eq!(map.fns[0].name, "f");
        assert!(map.fns[0].body.is_some());
    }
}
