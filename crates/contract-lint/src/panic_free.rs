//! Rule family 3: hot-path panic-freedom.
//!
//! The tick loop must not panic: a poisoned liquidation pass corrupts every
//! downstream measurement, and at production scale a panic is an outage.
//! Inside the gated hot paths (`crates/lending`, `crates/chain`, the engine
//! and session loops) non-test code must not:
//!
//! * **`hot-unwrap`** — call `.unwrap()` / `.expect(…)`; fallible lookups
//!   must flow into `ProtocolError` / `SimError` or carry a
//!   `lint:allow(hot-unwrap)` waiver stating the invariant that makes the
//!   `None`/`Err` arm unreachable;
//! * **`hot-index`** — index slices/maps with `[…]` (a panicking API);
//!   `get`/`get_mut` with an error path is the default, `[..]` full-range
//!   slicing is exempt (it cannot fail), and justified residue (e.g. an
//!   index produced by `gen_range(0..len)`) carries a waiver.

use crate::lexer::{Tok, TokKind};
use crate::scan::{matching, FileMap};
use crate::{Finding, Rule};

/// `hot-unwrap`: no `.unwrap()` / `.expect()` in gated non-test code.
pub fn check_unwrap(path: &str, toks: &[Tok], map: &FileMap, findings: &mut Vec<Finding>) {
    for i in 1..toks.len() {
        if (toks[i].is_ident("unwrap") || toks[i].is_ident("expect"))
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !map.in_test(i)
        {
            findings.push(Finding::new(
                path,
                toks[i].line,
                Rule::HotUnwrap,
                format!(
                    "`.{}()` in a gated hot path — convert to a typed \
                     `ProtocolError`/`SimError` path or waive with the \
                     invariant that makes this unreachable",
                    toks[i].text
                ),
            ));
        }
    }
}

/// `hot-index`: no panicking `[…]` indexing in gated non-test code.
pub fn check_index(path: &str, toks: &[Tok], map: &FileMap, findings: &mut Vec<Finding>) {
    for i in 1..toks.len() {
        if !toks[i].is_punct('[') || map.in_test(i) {
            continue;
        }
        // Postfix position only: indexing follows a value. Everything else
        // (`#[attr]`, `vec![…]`, array literals/types after `=`, `(`, `,`,
        // `:`…) is not an index expression.
        let prev = &toks[i - 1];
        let is_postfix = prev.kind == TokKind::Ident && !is_keyword_before_literal(prev)
            || prev.is_punct(')')
            || prev.is_punct(']');
        if !is_postfix {
            continue;
        }
        let close = matching(toks, i);
        // `[..]` can't fail; `[a..]`, `[..b]`, `[a..b]` can.
        let inner: Vec<&Tok> = toks[i + 1..close].iter().collect();
        if inner.len() == 2 && inner[0].is_punct('.') && inner[1].is_punct('.') {
            continue;
        }
        findings.push(Finding::new(
            path,
            toks[i].line,
            Rule::HotIndex,
            "panicking `[…]` index in a gated hot path — use `get`/`get_mut` \
             with an error path, or waive with the invariant that bounds the \
             index"
                .to_string(),
        ));
    }
}

/// Keywords that can directly precede a `[` without forming an index
/// expression (`return [a, b]`, `in [x, y]`, `break [..]`…).
fn is_keyword_before_literal(t: &Tok) -> bool {
    matches!(
        t.text.as_str(),
        "return" | "in" | "break" | "else" | "match" | "if" | "while" | "loop" | "move" | "as"
    )
}
