//! Journal replay differential: for every catalog scenario, a live run
//! recorded through `JournalWriter` and replayed through `JournalReader`
//! must render every artefact byte-identically to the analysis the live run
//! computed — the acceptance bar for `repro --replay`.

use defi_analytics::StudyAnalysis;
use defi_bench::render;
use defi_journal::{JournalReader, JournalWriter};
use defi_sim::{ScenarioCatalog, SimConfig, SimulationEngine};

type Renderer = fn(&StudyAnalysis) -> String;
const ARTEFACTS: [(&str, Renderer); 14] = [
    ("headline", render::render_headline),
    ("table1", render::render_table1),
    ("fig4", render::render_figure4),
    ("fig5", render::render_figure5),
    ("fig6", render::render_figure6),
    ("fig7", render::render_auctions),
    ("table2", render::render_table2),
    ("table3", render::render_table3),
    ("table4", render::render_table4),
    ("fig8", render::render_figure8),
    ("stablecoins", render::render_stablecoins),
    ("fig9", render::render_figure9),
    ("table8", render::render_table8),
    ("table7", render::render_table7),
];

fn assert_replay_parity(scenario_name: &str) {
    let dir = std::env::temp_dir().join("djrn-replay-differential");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{scenario_name}.jrn"));

    // A short window keeps the six-scenario matrix fast; catalog entries
    // never change start/end blocks, so shortening is scenario-safe.
    let mut config = SimConfig::smoke_test(20_211_102);
    config.end_block = config.start_block + 60 * config.tick_blocks;
    config.scenario = Some(scenario_name.to_string());

    let mut writer = JournalWriter::create(&path).expect("create journal");
    let (live, _report) =
        StudyAnalysis::stream_with(SimulationEngine::new(config), &mut writer).expect("live run");
    writer.finish().expect("finish journal");

    let reader = JournalReader::open(&path).expect("open journal");
    assert_eq!(
        reader.header().config.scenario.as_deref(),
        Some(scenario_name),
        "journal header must carry the scenario"
    );
    let replayed = StudyAnalysis::from_replay(|observer| reader.replay(observer))
        .expect("replay")
        .expect("replay reaches the run end");

    for (name, renderer) in ARTEFACTS {
        assert_eq!(
            renderer(&live),
            renderer(&replayed),
            "{scenario_name}: artefact {name} diverged between live run and journal replay"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_is_byte_identical_on_every_catalog_scenario() {
    let catalog = ScenarioCatalog::standard();
    let names = catalog.names();
    assert_eq!(names.len(), 7, "catalog grew; extend this differential");
    for name in names {
        assert_replay_parity(name);
    }
}
