//! Streaming-vs-batch parity: the `StudyAnalysis` built incrementally by
//! `StudyCollector` observers during the run must render byte-identically to
//! the legacy post-hoc `StudyAnalysis::from_report` scan on the smoke
//! scenario — the guarantee that migrating `repro` to the session API did
//! not change a single printed digit.

use defi_analytics::StudyAnalysis;
use defi_bench::render;
use defi_sim::{SimConfig, SimulationEngine};

#[test]
fn streaming_study_renders_byte_identically_to_batch() {
    let config = SimConfig::smoke_test(11);

    let report = SimulationEngine::new(config.clone()).run();
    let batch = StudyAnalysis::from_report(&report);

    let (streamed, stream_report) =
        StudyAnalysis::stream(SimulationEngine::new(config)).expect("streaming run");

    assert_eq!(
        report.chain.events().len(),
        stream_report.chain.events().len(),
        "the session replays the exact same run"
    );
    assert_eq!(batch.records.len(), streamed.records.len());

    type Renderer = fn(&StudyAnalysis) -> String;
    let artefacts: [(&str, Renderer); 14] = [
        ("headline", render::render_headline),
        ("table1", render::render_table1),
        ("fig4", render::render_figure4),
        ("fig5", render::render_figure5),
        ("fig6", render::render_figure6),
        ("fig7", render::render_auctions),
        ("table2", render::render_table2),
        ("table3", render::render_table3),
        ("table4", render::render_table4),
        ("fig8", render::render_figure8),
        ("stablecoins", render::render_stablecoins),
        ("fig9", render::render_figure9),
        ("table8", render::render_table8),
        ("table7", render::render_table7),
    ];
    for (name, renderer) in artefacts {
        assert_eq!(
            renderer(&batch),
            renderer(&streamed),
            "artefact {name} diverged between the batch and streaming pipelines"
        );
    }
}
