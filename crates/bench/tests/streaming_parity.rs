//! Streaming-vs-batch parity: the `StudyAnalysis` built incrementally by
//! `StudyCollector` observers during the run must render byte-identically to
//! the legacy post-hoc `StudyAnalysis::from_report` scan — the guarantee that
//! migrating `repro` to the session API did not change a single printed
//! digit. Checked on the smoke default and on a scenario-catalog entry
//! (`stablecoin-depeg`), so catalog plumbing cannot skew either pipeline.

use defi_analytics::StudyAnalysis;
use defi_bench::render;
use defi_sim::{ScenarioCatalog, SimConfig, SimulationEngine};

fn assert_parity(config: SimConfig) {
    let scenario = config
        .scenario
        .clone()
        .unwrap_or_else(|| ScenarioCatalog::DEFAULT_NAME.to_string());

    let report = SimulationEngine::new(config.clone()).run();
    let batch = StudyAnalysis::from_report(&report);

    let (streamed, stream_report) =
        StudyAnalysis::stream(SimulationEngine::new(config)).expect("streaming run");

    assert_eq!(
        report.chain.events().len(),
        stream_report.chain.events().len(),
        "{scenario}: the session replays the exact same run"
    );
    assert_eq!(batch.records.len(), streamed.records.len());

    type Renderer = fn(&StudyAnalysis) -> String;
    let artefacts: [(&str, Renderer); 14] = [
        ("headline", render::render_headline),
        ("table1", render::render_table1),
        ("fig4", render::render_figure4),
        ("fig5", render::render_figure5),
        ("fig6", render::render_figure6),
        ("fig7", render::render_auctions),
        ("table2", render::render_table2),
        ("table3", render::render_table3),
        ("table4", render::render_table4),
        ("fig8", render::render_figure8),
        ("stablecoins", render::render_stablecoins),
        ("fig9", render::render_figure9),
        ("table8", render::render_table8),
        ("table7", render::render_table7),
    ];
    for (name, renderer) in artefacts {
        assert_eq!(
            renderer(&batch),
            renderer(&streamed),
            "{scenario}: artefact {name} diverged between the batch and streaming pipelines"
        );
    }
}

#[test]
fn streaming_study_renders_byte_identically_to_batch() {
    assert_parity(SimConfig::smoke_test(11));
}

#[test]
fn streaming_parity_holds_on_a_catalog_scenario() {
    let mut config = SimConfig::smoke_test(11);
    config.scenario = Some("stablecoin-depeg".to_string());
    assert_parity(config);
}
