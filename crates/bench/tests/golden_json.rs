//! Golden-file snapshots of `repro --json` on the smoke scenario.
//!
//! The committed files under `tests/golden/` are the byte-exact JSON the
//! harness writes for the default smoke run (`repro --smoke --json <dir>
//! headline table1`, seed 20 211 102). Any drift in the simulation, the
//! analytics pipeline or the hand-rolled JSON encoder shows up here as a
//! byte diff — regenerate the files deliberately (and explain why) rather
//! than loosening the comparison.

use defi_analytics::StudyAnalysis;
use defi_bench::json;
use defi_sim::{SimConfig, SimulationEngine};

/// The `repro` binary's default seed (the paper's publication date).
const REPRO_DEFAULT_SEED: u64 = 20_211_102;

fn rendered(value: &json::Json) -> String {
    // `repro --json` writes `format!("{value}\n")`; match it exactly.
    format!("{value}\n")
}

#[test]
fn smoke_json_artefacts_match_the_committed_golden_files() {
    let config = SimConfig::smoke_test(REPRO_DEFAULT_SEED);
    let (analysis, _report) =
        StudyAnalysis::stream(SimulationEngine::new(config)).expect("smoke run");

    let cases: [(&str, json::Json, &str); 2] = [
        (
            "headline",
            json::headline_json(&analysis),
            include_str!("golden/headline.json"),
        ),
        (
            "table1",
            json::table1_json(&analysis),
            include_str!("golden/table1.json"),
        ),
    ];
    for (name, value, golden) in cases {
        let actual = rendered(&value);
        assert!(
            actual == golden,
            "{name}.json drifted from the golden file.\n--- expected ---\n{golden}\n--- actual ---\n{actual}"
        );
    }
}
