//! Machine-readable JSON rendering of the analysis artefacts.
//!
//! The `repro` binary's `--json <dir>` flag writes each selected artefact as
//! a JSON file alongside the paper-style text rendering. The workspace's
//! `serde` is an offline API stub with no serializer, so this module carries
//! a deliberately small hand-rolled JSON value type — enough for the flat
//! tables and series the artefacts are made of.

use std::fmt;

use defi_analytics::StudyAnalysis;
use defi_sim::{RunSummary, ScenarioCatalog};
use defi_types::{Platform, SignedWad, Wad};

use crate::case_study::CaseStudy;

/// A JSON value with exact integer support (counts and block numbers stay
/// integral instead of round-tripping through `f64`).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number (non-finite values render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(key, value)| (key.to_string(), value))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                escape(key, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        f.write_str(&out)
    }
}

fn usd(value: Wad) -> Json {
    Json::F64(value.to_f64())
}

fn signed_usd(value: SignedWad) -> Json {
    let magnitude = value.magnitude.to_f64();
    Json::F64(if value.is_negative() {
        -magnitude
    } else {
        magnitude
    })
}

fn platform(p: Platform) -> Json {
    Json::str(p.name())
}

/// §4.2 headline statistics.
pub fn headline_json(analysis: &StudyAnalysis) -> Json {
    let h = &analysis.headline;
    let mut pairs = vec![
        (
            "liquidations".to_string(),
            Json::U64(h.liquidation_count as u64),
        ),
        (
            "liquidators".to_string(),
            Json::U64(h.liquidator_count as u64),
        ),
        (
            "collateral_sold_usd".to_string(),
            usd(h.total_collateral_sold),
        ),
        ("total_profit_usd".to_string(), signed_usd(h.total_profit)),
        (
            "unprofitable_liquidations".to_string(),
            Json::U64(h.unprofitable_liquidations as u64),
        ),
        (
            "unprofitable_loss_usd".to_string(),
            usd(h.unprofitable_loss),
        ),
    ];
    if let Some(top) = &analysis.top_liquidators {
        pairs.push((
            "most_active_liquidator".to_string(),
            Json::obj([
                ("liquidations", Json::U64(top.most_active_count as u64)),
                ("profit_usd", signed_usd(top.most_active_profit)),
            ]),
        ));
        pairs.push((
            "most_profitable_liquidator".to_string(),
            Json::obj([
                ("liquidations", Json::U64(top.most_profitable_count as u64)),
                ("profit_usd", signed_usd(top.most_profitable_profit)),
            ]),
        ));
    }
    Json::Obj(pairs)
}

/// Table 1.
pub fn table1_json(analysis: &StudyAnalysis) -> Json {
    let rows = analysis
        .table1
        .rows
        .iter()
        .map(|row| {
            Json::obj([
                ("platform", platform(row.platform)),
                ("liquidations", Json::U64(row.liquidations as u64)),
                ("liquidators", Json::U64(row.liquidators as u64)),
                ("average_profit_usd", signed_usd(row.average_profit)),
            ])
        })
        .collect();
    Json::obj([
        ("rows", Json::Arr(rows)),
        (
            "total_liquidations",
            Json::U64(analysis.table1.total_liquidations as u64),
        ),
        (
            "total_liquidators",
            Json::U64(analysis.table1.total_liquidators as u64),
        ),
        ("total_profit_usd", signed_usd(analysis.table1.total_profit)),
    ])
}

/// Figure 4: the full cumulative series per platform.
pub fn figure4_json(analysis: &StudyAnalysis) -> Json {
    Json::Obj(
        analysis
            .figure4
            .iter()
            .map(|(p, series)| {
                let points = series
                    .iter()
                    .map(|point| {
                        Json::obj([
                            ("block", Json::U64(point.block)),
                            ("cumulative_usd", usd(point.cumulative_usd)),
                        ])
                    })
                    .collect();
                (p.name().to_string(), Json::Arr(points))
            })
            .collect(),
    )
}

/// Figure 5: monthly profit per platform.
pub fn figure5_json(analysis: &StudyAnalysis) -> Json {
    Json::Obj(
        analysis
            .figure5
            .iter()
            .map(|(p, months)| {
                let by_month = months
                    .iter()
                    .map(|(month, profit)| (month.to_string(), signed_usd(*profit)))
                    .collect();
                (p.name().to_string(), Json::Obj(by_month))
            })
            .collect(),
    )
}

/// Figure 6 / §4.3.2.
pub fn figure6_json(analysis: &StudyAnalysis) -> Json {
    let points = analysis
        .gas
        .points
        .iter()
        .map(|point| {
            Json::obj([
                ("block", Json::U64(point.block)),
                ("platform", platform(point.platform)),
                ("gas_price_gwei", Json::U64(point.gas_price)),
                ("average_gas_price_gwei", Json::F64(point.average_gas_price)),
                ("above_average", Json::Bool(point.above_average)),
            ])
        })
        .collect();
    Json::obj([
        (
            "share_above_average",
            Json::F64(analysis.gas.share_above_average),
        ),
        ("points", Json::Arr(points)),
    ])
}

fn mean_std(stats: &defi_analytics::auctions::MeanStd) -> Json {
    Json::obj([
        ("mean", Json::F64(stats.mean)),
        ("std_dev", Json::F64(stats.std_dev)),
        ("count", Json::U64(stats.count as u64)),
    ])
}

/// Figure 7 / §4.3.3 auction statistics.
pub fn auctions_json(analysis: &StudyAnalysis) -> Json {
    let a = &analysis.auctions;
    let durations = a
        .durations
        .iter()
        .map(|point| {
            Json::obj([
                ("block", Json::U64(point.block)),
                ("duration_hours", Json::F64(point.duration_hours)),
            ])
        })
        .collect();
    Json::obj([
        ("terminated_in_tend", Json::U64(a.terminated_in_tend as u64)),
        ("terminated_in_dent", Json::U64(a.terminated_in_dent as u64)),
        ("average_bidders", Json::F64(a.average_bidders)),
        ("bids_per_auction", mean_std(&a.bids_per_auction)),
        ("tend_bids_per_auction", mean_std(&a.tend_bids_per_auction)),
        ("dent_bids_per_auction", mean_std(&a.dent_bids_per_auction)),
        ("duration_hours", mean_std(&a.duration_hours)),
        (
            "first_bid_delay_minutes",
            mean_std(&a.first_bid_delay_minutes),
        ),
        ("bid_interval_minutes", mean_std(&a.bid_interval_minutes)),
        (
            "auctions_with_multiple_bids",
            Json::U64(a.auctions_with_multiple_bids as u64),
        ),
        ("durations", Json::Arr(durations)),
    ])
}

fn bad_debt_summary(summary: &defi_core::bad_debt::BadDebtSummary) -> Json {
    Json::obj([
        ("count", Json::U64(summary.count as u64)),
        ("total_positions", Json::U64(summary.total_positions as u64)),
        ("collateral_locked_usd", usd(summary.collateral_locked)),
        ("share_percent", Json::F64(summary.share_percent())),
    ])
}

/// Table 2.
pub fn table2_json(analysis: &StudyAnalysis) -> Json {
    let rows = analysis
        .table2
        .rows
        .iter()
        .map(|row| {
            Json::obj([
                ("platform", platform(row.platform)),
                ("type_1", bad_debt_summary(&row.type_1)),
                ("type_2_fee_10", bad_debt_summary(&row.type_2_fee_10)),
                ("type_2_fee_100", bad_debt_summary(&row.type_2_fee_100)),
            ])
        })
        .collect();
    Json::obj([("rows", Json::Arr(rows))])
}

fn unprofitable_summary(summary: &defi_analytics::unprofitable::UnprofitableSummary) -> Json {
    Json::obj([
        ("count", Json::U64(summary.count as u64)),
        (
            "liquidatable_positions",
            Json::U64(summary.liquidatable_positions as u64),
        ),
        ("collateral_at_stake_usd", usd(summary.collateral_at_stake)),
        ("share_percent", Json::F64(summary.share_percent())),
    ])
}

/// Table 3.
pub fn table3_json(analysis: &StudyAnalysis) -> Json {
    let rows = analysis
        .table3
        .rows
        .iter()
        .map(|row| {
            Json::obj([
                ("platform", platform(row.platform)),
                ("close_factor", Json::F64(row.close_factor.to_f64())),
                ("fee_10", unprofitable_summary(&row.fee_10)),
                ("fee_100", unprofitable_summary(&row.fee_100)),
            ])
        })
        .collect();
    Json::obj([("rows", Json::Arr(rows))])
}

/// Table 4.
pub fn table4_json(analysis: &StudyAnalysis) -> Json {
    let rows = analysis
        .table4
        .rows
        .iter()
        .map(|row| {
            Json::obj([
                ("liquidation_platform", platform(row.liquidation_platform)),
                ("flash_pool", platform(row.flash_pool)),
                ("count", Json::U64(row.count as u64)),
                ("cumulative_amount_usd", usd(row.cumulative_amount_usd)),
            ])
        })
        .collect();
    Json::obj([
        ("rows", Json::Arr(rows)),
        (
            "total_flash_loans",
            Json::U64(analysis.table4.total_flash_loans as u64),
        ),
        ("total_amount_usd", usd(analysis.table4.total_amount_usd)),
    ])
}

/// Figure 8: every platform's sensitivity curves.
pub fn figure8_json(analysis: &StudyAnalysis) -> Json {
    Json::Obj(
        analysis
            .figure8
            .iter()
            .map(|sensitivity| {
                let curves = sensitivity
                    .curves
                    .iter()
                    .map(|curve| {
                        let points = curve
                            .points
                            .iter()
                            .map(|point| {
                                Json::obj([
                                    ("decline", Json::F64(point.decline)),
                                    ("liquidatable_usd", usd(point.liquidatable)),
                                ])
                            })
                            .collect();
                        (curve.token.symbol().to_string(), Json::Arr(points))
                    })
                    .collect();
                (sensitivity.platform.name().to_string(), Json::Obj(curves))
            })
            .collect(),
    )
}

/// §4.5.2 stablecoin stability.
pub fn stablecoins_json(analysis: &StudyAnalysis) -> Json {
    let s = &analysis.stablecoins;
    Json::obj([
        (
            "tokens",
            Json::Arr(s.tokens.iter().map(|t| Json::str(t.symbol())).collect()),
        ),
        ("sampled_blocks", Json::U64(s.sampled_blocks)),
        (
            "share_within_threshold",
            Json::F64(s.share_within_threshold),
        ),
        ("threshold", Json::F64(s.threshold)),
        ("max_difference", Json::F64(s.max_difference)),
        ("max_difference_block", Json::U64(s.max_difference_block)),
    ])
}

/// Figure 9: the profit–volume observations plus the mean-ratio ranking.
pub fn figure9_json(analysis: &StudyAnalysis) -> Json {
    let observations = analysis
        .figure9
        .observations
        .iter()
        .map(|obs| {
            Json::obj([
                ("month", Json::str(obs.month.to_string())),
                ("platform", platform(obs.platform)),
                ("monthly_profit_usd", usd(obs.monthly_profit)),
                (
                    "average_collateral_volume_usd",
                    usd(obs.average_collateral_volume),
                ),
                ("liquidation_count", Json::U64(obs.liquidation_count as u64)),
                ("ratio", obs.ratio().map(Json::F64).unwrap_or(Json::Null)),
            ])
        })
        .collect();
    let ranking = analysis
        .figure9
        .ranking(3)
        .into_iter()
        .map(|(p, ratio)| Json::obj([("platform", platform(p)), ("mean_ratio", Json::F64(ratio))]))
        .collect();
    Json::obj([
        ("observations", Json::Arr(observations)),
        ("mean_ratio_ranking", Json::Arr(ranking)),
    ])
}

/// Table 8.
pub fn table8_json(analysis: &StudyAnalysis) -> Json {
    Json::Obj(
        analysis
            .table8
            .counts
            .iter()
            .map(|(month, by_platform)| {
                let counts = by_platform
                    .iter()
                    .map(|(p, count)| (p.name().to_string(), Json::U64(*count as u64)))
                    .collect();
                (month.to_string(), Json::Obj(counts))
            })
            .collect(),
    )
}

/// Table 7.
pub fn table7_json(analysis: &StudyAnalysis) -> Json {
    let rows = analysis
        .table7
        .rows
        .iter()
        .map(|(pattern, row)| {
            Json::obj([
                ("movement", Json::str(format!("{pattern:?}"))),
                ("liquidations", Json::U64(row.liquidations as u64)),
                ("mean_max_excursion", Json::F64(row.mean_max_excursion)),
                ("mean_min_excursion", Json::F64(row.mean_min_excursion)),
            ])
        })
        .collect();
    Json::obj([
        ("rows", Json::Arr(rows)),
        ("total", Json::U64(analysis.table7.total as u64)),
        (
            "share_ending_below",
            Json::F64(analysis.table7.share_ending_below),
        ),
    ])
}

fn strategy_row(row: &crate::case_study::StrategyRow) -> Json {
    Json::obj([
        ("label", Json::str(row.label)),
        ("repay_usd", usd(row.repay_usd)),
        ("receive_usd", usd(row.receive_usd)),
        ("profit_usd", usd(row.profit_usd)),
    ])
}

/// Tables 5–6 plus the §5.2.3 mitigation threshold.
pub fn case_study_json(study: &CaseStudy) -> Json {
    let t5 = &study.table5;
    let t6 = &study.table6;
    Json::obj([
        (
            "table5",
            Json::obj([
                ("dai_collateral", usd(t5.dai_collateral)),
                ("usdc_collateral", usd(t5.usdc_collateral)),
                ("dai_debt", usd(t5.dai_debt)),
                ("usdc_debt", usd(t5.usdc_debt)),
                ("dai_price_before", Json::F64(t5.dai_price_before.to_f64())),
                ("dai_price_after", Json::F64(t5.dai_price_after.to_f64())),
                ("collateral_before_usd", usd(t5.collateral_before)),
                ("collateral_after_usd", usd(t5.collateral_after)),
                (
                    "borrowing_capacity_after_usd",
                    usd(t5.borrowing_capacity_after),
                ),
                ("debt_before_usd", usd(t5.debt_before)),
                ("debt_after_usd", usd(t5.debt_after)),
                (
                    "health_factor_after",
                    Json::F64(t5.health_factor_after.to_f64()),
                ),
            ]),
        ),
        (
            "table6",
            Json::obj([
                ("original", strategy_row(&t6.original)),
                ("up_to_close_factor", strategy_row(&t6.up_to_close_factor)),
                ("optimal_step_1", strategy_row(&t6.optimal_step_1)),
                ("optimal_step_2", strategy_row(&t6.optimal_step_2)),
                ("optimal", strategy_row(&t6.optimal)),
                (
                    "optimal_advantage_over_original_usd",
                    usd(t6.optimal_advantage_over_original),
                ),
                (
                    "predicted_increase_rate",
                    Json::F64(t6.predicted_increase_rate),
                ),
            ]),
        ),
        (
            "mitigation_mining_power_threshold",
            study
                .mitigation_mining_power_threshold
                .map(Json::F64)
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Per-scenario mean/std aggregates of a sweep — computed once and shared by
/// the console report (`repro --sweep`) and [`sweep_json`] so the two
/// renderings cannot drift apart.
#[derive(Debug, Clone)]
pub struct ScenarioAggregate {
    /// Catalog scenario name.
    pub scenario: String,
    /// Number of runs in the group.
    pub runs: usize,
    /// Settled fixed-spread liquidations per run.
    pub liquidations: defi_analytics::auctions::MeanStd,
    /// Gross liquidator profit per run (USD).
    pub gross_profit_usd: defi_analytics::auctions::MeanStd,
    /// Collateral a 43 % ETH decline would make liquidatable (USD).
    pub eth_decline_43_liquidatable_usd: defi_analytics::auctions::MeanStd,
}

/// Group sweep summaries by scenario and aggregate the headline metrics.
pub fn scenario_aggregates(summaries: &[RunSummary]) -> Vec<ScenarioAggregate> {
    use defi_analytics::auctions::MeanStd;
    defi_sim::group_by_scenario(summaries)
        .into_iter()
        .map(|(scenario, group)| {
            let liquidations: Vec<f64> = group.iter().map(|s| s.liquidations as f64).collect();
            let profits: Vec<f64> = group.iter().map(|s| s.gross_profit.to_f64()).collect();
            let sensitivities: Vec<f64> = group
                .iter()
                .map(|s| s.eth_decline_43_liquidatable.to_f64())
                .collect();
            ScenarioAggregate {
                scenario: scenario.to_string(),
                runs: group.len(),
                liquidations: MeanStd::from_samples(&liquidations),
                gross_profit_usd: MeanStd::from_samples(&profits),
                eth_decline_43_liquidatable_usd: MeanStd::from_samples(&sensitivities),
            }
        })
        .collect()
}

/// `{mean, std}` of one aggregated metric.
fn mean_std_json(stats: &defi_analytics::auctions::MeanStd) -> Json {
    Json::obj([
        ("mean", Json::F64(stats.mean)),
        ("std", Json::F64(stats.std_dev)),
    ])
}

/// A seed sweep: per-run summaries, per-scenario mean/std aggregates, and
/// worker metadata.
pub fn sweep_json(summaries: &[RunSummary], workers: usize) -> Json {
    let runs = summaries
        .iter()
        .map(|summary| {
            Json::obj([
                ("seed", Json::U64(summary.seed)),
                ("scenario", Json::str(summary.scenario.clone())),
                ("ticks", Json::U64(summary.ticks)),
                ("events", Json::U64(summary.events as u64)),
                ("liquidations", Json::U64(summary.liquidations as u64)),
                (
                    "auctions_settled",
                    Json::U64(summary.auctions_settled as u64),
                ),
                ("gross_profit_usd", signed_usd(summary.gross_profit)),
                ("collateral_sold_usd", usd(summary.collateral_sold)),
                ("open_positions", Json::U64(summary.open_positions as u64)),
                (
                    "eth_decline_43_liquidatable_usd",
                    usd(summary.eth_decline_43_liquidatable),
                ),
                ("feedback_skipped_usd", usd(summary.feedback_skipped_usd)),
            ])
        })
        .collect();
    let scenarios = scenario_aggregates(summaries)
        .into_iter()
        .map(|aggregate| {
            Json::obj([
                ("scenario", Json::str(aggregate.scenario)),
                ("runs", Json::U64(aggregate.runs as u64)),
                ("liquidations", mean_std_json(&aggregate.liquidations)),
                (
                    "gross_profit_usd",
                    mean_std_json(&aggregate.gross_profit_usd),
                ),
                (
                    "eth_decline_43_liquidatable_usd",
                    mean_std_json(&aggregate.eth_decline_43_liquidatable_usd),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("workers", Json::U64(workers as u64)),
        ("runs", Json::Arr(runs)),
        ("scenarios", Json::Arr(scenarios)),
    ])
}

/// `repro --list-scenarios --json`: the scenario catalog as a machine-
/// readable artefact.
pub fn scenario_catalog_json(catalog: &ScenarioCatalog) -> Json {
    let entries = catalog
        .entries()
        .iter()
        .map(|entry| {
            Json::obj([
                ("name", Json::str(entry.name.clone())),
                ("summary", Json::str(entry.summary.clone())),
            ])
        })
        .collect();
    Json::obj([("scenarios", Json::Arr(entries))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_strings_and_nesting() {
        let value = Json::obj([
            ("name", Json::str("line\n\"quoted\"")),
            ("count", Json::U64(3)),
            ("nan", Json::F64(f64::NAN)),
            ("items", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = value.to_string();
        assert!(text.contains("\\n"));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("true,\n"));
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).to_string(), "[]");
        assert_eq!(Json::Obj(vec![]).to_string(), "{}");
    }

    #[test]
    fn sweep_json_groups_aggregates_by_scenario() {
        let summary = |seed: u64, scenario: &str, liquidations: u32| RunSummary {
            seed,
            scenario: scenario.to_string(),
            ticks: 10,
            events: 100,
            liquidations,
            auctions_settled: 1,
            gross_profit: SignedWad::ZERO,
            collateral_sold: Wad::from_int(5),
            open_positions: 7,
            eth_decline_43_liquidatable: Wad::from_int(1_000),
            feedback_skipped_usd: Wad::ZERO,
        };
        let summaries = vec![
            summary(1, "paper-two-year", 10),
            summary(2, "stablecoin-depeg", 4),
            summary(3, "paper-two-year", 20),
        ];
        let text = sweep_json(&summaries, 2).to_string();
        assert!(text.contains("\"scenarios\""));
        assert!(text.contains("\"stablecoin-depeg\""));
        // paper-two-year: mean 15 over two runs.
        assert!(text.contains("\"mean\": 15"));
        // Groups carry their run counts.
        assert!(text.contains("\"runs\": 2"));
        assert!(text.contains("\"runs\": 1"));
    }

    #[test]
    fn case_study_json_has_both_tables() {
        let study =
            crate::case_study::run_case_study(&crate::case_study::CaseStudyInput::default());
        let text = case_study_json(&study).to_string();
        assert!(text.contains("\"table5\""));
        assert!(text.contains("\"table6\""));
        assert!(text.contains("\"mitigation_mining_power_threshold\""));
    }
}
