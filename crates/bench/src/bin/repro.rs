//! The reproduction harness.
//!
//! ```text
//! cargo run --release -p defi-bench --bin repro -- all
//! cargo run --release -p defi-bench --bin repro -- table1 fig8
//! cargo run --release -p defi-bench --bin repro -- --smoke all
//! cargo run --release -p defi-bench --bin repro -- --seed 7 fig9 table8
//! ```
//!
//! Without `--smoke` the harness runs the full two-year scenario
//! (`SimConfig::paper_default`), which takes on the order of a minute in
//! release mode; `--smoke` runs the ~3-month crash window used by the test
//! suite. Artefact names: `headline`, `table1`…`table8`, `fig4`…`fig9`,
//! `auction-stats`, `stablecoins`, `mitigation`, `configs`, `case-study`
//! (alias of `table5`/`table6`), or `all`.

use std::collections::BTreeSet;

use defi_analytics::StudyAnalysis;
use defi_bench::case_study::{run_case_study, CaseStudyInput};
use defi_bench::render;
use defi_core::config::is_sound_fixed_spread_config;
use defi_core::params::RiskParams;
use defi_sim::{SimConfig, SimulationEngine};
use defi_types::Platform;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke] [--seed N] <artefact>...\n       artefacts: all headline table1 table2 table3 table4 table5 table6 table7 table8\n                  fig4 fig5 fig6 fig7 fig8 fig9 auction-stats stablecoins mitigation configs case-study"
    );
    std::process::exit(2)
}

fn main() {
    let mut smoke = false;
    let mut seed: u64 = 20_211_102; // the paper's publication date as a seed
    let mut artefacts: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let Some(value) = args.next() else { usage() };
                seed = value.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                artefacts.insert(other.to_ascii_lowercase());
            }
        }
    }
    if artefacts.is_empty() {
        artefacts.insert("all".to_string());
    }
    let all = artefacts.contains("all");
    let wanted = |names: &[&str]| all || names.iter().any(|n| artefacts.contains(*n));

    // Pure (no-simulation) artefacts first.
    if wanted(&["table5", "table6", "case-study", "mitigation"]) {
        let study = run_case_study(&CaseStudyInput::default());
        println!("{}", render::render_case_study(&study));
    }
    if wanted(&["configs"]) {
        println!("== Appendix C: fixed-spread configuration soundness ==");
        for platform in Platform::ALL {
            let params = RiskParams::platform_default(platform);
            println!(
                "  {:<10} LT {:.2} LS {:.2} CF {:.2} -> 1 - LT(1+LS) > 0: {}",
                platform.name(),
                params.liquidation_threshold.to_f64(),
                params.liquidation_spread.to_f64(),
                params.close_factor.to_f64(),
                is_sound_fixed_spread_config(params)
            );
        }
        println!();
    }

    let needs_simulation = wanted(&[
        "headline",
        "table1",
        "table2",
        "table3",
        "table4",
        "table7",
        "table8",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "auction-stats",
        "stablecoins",
    ]);
    if !needs_simulation {
        return;
    }

    let config = if smoke {
        SimConfig::smoke_test(seed)
    } else {
        SimConfig::paper_default(seed)
    };
    eprintln!(
        "running the {} scenario (seed {seed}, {} ticks)…",
        if smoke { "smoke" } else { "two-year study" },
        config.tick_count()
    );
    let started = std::time::Instant::now();
    let report = SimulationEngine::new(config).run();
    eprintln!(
        "simulation finished in {:.1}s ({} events); computing analytics…",
        started.elapsed().as_secs_f64(),
        report.chain.events().len()
    );
    let analysis = StudyAnalysis::from_report(&report);

    if wanted(&["headline"]) {
        println!("{}", render::render_headline(&analysis));
    }
    if wanted(&["table1"]) {
        println!("{}", render::render_table1(&analysis));
    }
    if wanted(&["fig4"]) {
        println!("{}", render::render_figure4(&analysis));
    }
    if wanted(&["fig5"]) {
        println!("{}", render::render_figure5(&analysis));
    }
    if wanted(&["fig6"]) {
        println!("{}", render::render_figure6(&analysis));
    }
    if wanted(&["fig7", "auction-stats"]) {
        println!("{}", render::render_auctions(&analysis));
    }
    if wanted(&["table2"]) {
        println!("{}", render::render_table2(&analysis));
    }
    if wanted(&["table3"]) {
        println!("{}", render::render_table3(&analysis));
    }
    if wanted(&["table4"]) {
        println!("{}", render::render_table4(&analysis));
    }
    if wanted(&["fig8"]) {
        println!("{}", render::render_figure8(&analysis));
    }
    if wanted(&["stablecoins"]) {
        println!("{}", render::render_stablecoins(&analysis));
    }
    if wanted(&["fig9"]) {
        println!("{}", render::render_figure9(&analysis));
    }
    if wanted(&["table8"]) {
        println!("{}", render::render_table8(&analysis));
    }
    if wanted(&["table7"]) {
        println!("{}", render::render_table7(&analysis));
    }
}
