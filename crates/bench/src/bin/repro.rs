//! The reproduction harness.
//!
//! ```text
//! cargo run --release -p defi-bench --bin repro -- all
//! cargo run --release -p defi-bench --bin repro -- table1 fig8
//! cargo run --release -p defi-bench --bin repro -- --smoke all
//! cargo run --release -p defi-bench --bin repro -- --seed 7 fig9 table8
//! cargo run --release -p defi-bench --bin repro -- --smoke --json out all
//! cargo run --release -p defi-bench --bin repro -- --smoke --sweep seeds=8 --workers 4
//! ```
//!
//! Without `--smoke` the harness runs the full two-year scenario
//! (`SimConfig::paper_default`), which takes on the order of a minute in
//! release mode; `--smoke` runs the ~3-month crash window used by the test
//! suite. Artefact names: `headline`, `table1`…`table8`, `fig4`…`fig9`,
//! `auction-stats`, `stablecoins`, `mitigation`, `configs`, `case-study`
//! (alias of `table5`/`table6`), or `all`.
//!
//! The study computes in a single pass: the simulation streams through the
//! analytics crate's `StudyCollector` observer instead of materialising a
//! report and re-scanning it. `--json <dir>` additionally writes every
//! selected artefact as a machine-readable JSON file. `--sweep seeds=N` fans
//! N seeds of the scenario across `SweepRunner` workers and prints per-run
//! summaries with mean/std aggregates instead of the single-run artefacts.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use defi_analytics::{StudyAnalysis, StudyCollector};
use defi_bench::case_study::{run_case_study, CaseStudyInput};
use defi_bench::{json, render};
use defi_core::config::is_sound_fixed_spread_config;
use defi_core::params::RiskParams;
use defi_journal::{JournalReader, JournalWriter};
use defi_sim::{
    EngineBuilder, InvariantObserver, MultiObserver, RunSummary, ScenarioCatalog, Session,
    SessionStatus, SimConfig, SimError, SimObserver, SimulationEngine, SimulationReport,
    SweepRunner,
};
use defi_types::Platform;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke] [--seed N] [--json DIR] [--scenario NAME] [--scenario-file PATH]\n             [--list-scenarios] [--check-invariants] [--sweep seeds=N|scenarios] [--workers N]\n             [--timings] [--journal FILE] [--replay FILE] <artefact>...\n       artefacts: all headline table1 table2 table3 table4 table5 table6 table7 table8\n                  fig4 fig5 fig6 fig7 fig8 fig9 auction-stats stablecoins mitigation configs case-study\n       --scenario NAME runs a named catalog scenario (see --list-scenarios); names compose\n                  with '+', e.g. --scenario liquidation-spiral+stablecoin-depeg\n       --scenario-file PATH loads user-defined scenario entries into the catalog\n       --check-invariants attaches the InvariantObserver and fails on any violation\n       --sweep seeds=N runs N seeds through the SweepRunner and prints per-run summaries instead;\n       --sweep scenarios fans the whole scenario catalog across the workers\n       --timings prints each protocol book's per-phase tick-time breakdown after the run\n       --journal FILE records the run's observation stream as a replayable journal\n       --replay FILE renders artefacts from a recorded journal instead of simulating"
    );
    std::process::exit(2)
}

fn write_json(dir: &Path, name: &str, value: &json::Json) {
    let path = dir.join(format!("{name}.json"));
    if let Err(error) = std::fs::write(&path, format!("{value}\n")) {
        eprintln!(
            "write artefact JSON {}: {error} (is the --json directory writable?)",
            path.display()
        );
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

/// What a `--sweep` invocation fans across the workers.
enum SweepKind {
    /// `--sweep seeds=N`: N consecutive seeds of the base configuration.
    Seeds(u64),
    /// `--sweep scenarios`: the full scenario catalog at the base seed.
    Scenarios,
}

fn run_sweep(
    base: SimConfig,
    kind: SweepKind,
    workers: Option<usize>,
    json_dir: Option<&Path>,
    catalog: &ScenarioCatalog,
) {
    let runner = workers
        .map(SweepRunner::new)
        .unwrap_or_else(SweepRunner::auto);
    let grid = match &kind {
        SweepKind::Seeds(seeds) => SweepRunner::seed_grid(&base, *seeds),
        SweepKind::Scenarios => SweepRunner::scenario_grid(&base, &catalog.names()),
    };
    eprintln!(
        "sweeping {} runs ({} ticks each) across {} workers…",
        grid.len(),
        base.tick_count(),
        runner.workers()
    );
    let started = std::time::Instant::now();
    let summaries: Vec<RunSummary> = match runner.run_with_catalog(&grid, catalog) {
        Ok(summaries) => summaries,
        Err(error) => {
            eprintln!("sweep failed: {error}");
            std::process::exit(1);
        }
    };
    eprintln!("sweep finished in {:.1}s", started.elapsed().as_secs_f64());

    println!("== sweep: per-run summaries ==");
    println!(
        "{:>10} {:>22} {:>8} {:>13} {:>9} {:>16} {:>18} {:>10} {:>16}",
        "Seed",
        "Scenario",
        "Events",
        "Liquidations",
        "Auctions",
        "Gross profit",
        "Collateral sold",
        "Open pos.",
        "43% ETH liq."
    );
    for summary in &summaries {
        println!(
            "{:>10} {:>22} {:>8} {:>13} {:>9} {:>16.0} {:>18.0} {:>10} {:>16.0}",
            summary.seed,
            summary.scenario,
            summary.events,
            summary.liquidations,
            summary.auctions_settled,
            summary.gross_profit.to_f64(),
            summary.collateral_sold.to_f64(),
            summary.open_positions,
            summary.eth_decline_43_liquidatable.to_f64(),
        );
    }
    // Aggregates are grouped by catalog scenario (pooling a depeg run with a
    // gas-spike run into one mean says nothing about either), computed by the
    // same helper `sweep.json` renders from.
    for aggregate in json::scenario_aggregates(&summaries) {
        println!(
            "== sweep: {} over {} run(s) ==",
            aggregate.scenario, aggregate.runs
        );
        println!(
            "  liquidations:        {:.1} ± {:.1}",
            aggregate.liquidations.mean, aggregate.liquidations.std_dev
        );
        println!(
            "  gross profit (USD):  {:.0} ± {:.0}",
            aggregate.gross_profit_usd.mean, aggregate.gross_profit_usd.std_dev
        );
        println!(
            "  43% ETH decline liquidatable (USD): {:.0} ± {:.0}",
            aggregate.eth_decline_43_liquidatable_usd.mean,
            aggregate.eth_decline_43_liquidatable_usd.std_dev
        );
    }

    if let Some(dir) = json_dir {
        write_json(
            dir,
            "sweep",
            &json::sweep_json(&summaries, runner.workers()),
        );
    }
}

/// Stream the study in a single pass (the `StudyCollector` observer computes
/// artefacts while the simulation runs) — the manual-session equivalent of
/// `StudyAnalysis::stream_with`, kept local so `--timings` can read each
/// protocol book's phase counters after the last tick, while the session is
/// still inspectable.
fn stream_study(
    engine: SimulationEngine,
    extra: Option<&mut dyn SimObserver>,
    timings: bool,
) -> Result<(StudyAnalysis, SimulationReport), SimError> {
    let mut collector = StudyCollector::new();
    let mut session = Session::new(engine);
    let report = {
        let mut observers = MultiObserver::new().with(&mut collector);
        if let Some(extra) = extra {
            observers = observers.with(extra);
        }
        while session.step(&mut observers)? == SessionStatus::Running {}
        if timings {
            print_book_timings(&mut session);
        }
        session.finish(&mut observers)?
    };
    let analysis = collector
        .into_analysis()
        .expect("finish dispatched on_run_end");
    Ok((analysis, report))
}

/// Per-phase tick-time breakdown of every protocol's incremental book: where
/// the wall-clock went (flush, at-risk freshen, visit, envelope re-derive)
/// and which cache path served the freshenings (term reprices vs light
/// refreshes vs full revaluations) — wall-clock attribution for perf work
/// without a profiler.
fn print_book_timings(session: &mut Session) {
    println!("== book per-phase timings ==");
    for platform in session.platforms() {
        let Some(stats) = session.inspect_protocol(platform, |protocol, _| protocol.book_stats())
        else {
            continue;
        };
        let ms = |nanos: u64| nanos as f64 / 1e6;
        println!(
            "  {:<10} flush {:>9.3} ms ({} flushes) | freshen {:>9.3} ms | visit {:>9.3} ms | envelope {:>9.3} ms ({} derives)",
            platform.name(),
            ms(stats.flush_nanos),
            stats.flush_count,
            ms(stats.freshen_nanos),
            ms(stats.visit_nanos),
            ms(stats.envelope_derive_nanos),
            stats.envelope_derives,
        );
        println!(
            "  {:<10} revaluations {} (term reprices {} | light refreshes {} | envelope skips {}) | scratch grows {}",
            "",
            stats.revaluations,
            stats.term_reprices,
            stats.light_refreshes,
            stats.envelope_skips,
            stats.scratch_grows,
        );
    }
    println!();
}

fn main() {
    let mut smoke = false;
    let mut seed: u64 = 20_211_102; // the paper's publication date as a seed
    let mut json_dir: Option<PathBuf> = None;
    let mut sweep: Option<SweepKind> = None;
    let mut workers: Option<usize> = None;
    let mut scenario: Option<String> = None;
    let mut scenario_file: Option<PathBuf> = None;
    let mut list_scenarios = false;
    let mut check_invariants = false;
    let mut journal_path: Option<PathBuf> = None;
    let mut replay_path: Option<PathBuf> = None;
    let mut timings = false;
    let mut artefacts: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let Some(value) = args.next() else { usage() };
                seed = value.parse().unwrap_or_else(|_| usage());
            }
            "--json" => {
                let Some(value) = args.next() else { usage() };
                json_dir = Some(PathBuf::from(value));
            }
            "--scenario" => {
                let Some(value) = args.next() else { usage() };
                scenario = Some(value);
            }
            "--scenario-file" => {
                let Some(value) = args.next() else { usage() };
                scenario_file = Some(PathBuf::from(value));
            }
            "--list-scenarios" => list_scenarios = true,
            "--timings" => timings = true,
            "--check-invariants" => check_invariants = true,
            "--journal" => {
                let Some(value) = args.next() else { usage() };
                journal_path = Some(PathBuf::from(value));
            }
            "--replay" => {
                let Some(value) = args.next() else { usage() };
                replay_path = Some(PathBuf::from(value));
            }
            "--sweep" => {
                let Some(value) = args.next() else { usage() };
                if value == "scenarios" {
                    sweep = Some(SweepKind::Scenarios);
                } else if let Some(count) = value.strip_prefix("seeds=") {
                    sweep = Some(SweepKind::Seeds(count.parse().unwrap_or_else(|_| usage())));
                } else {
                    usage()
                }
            }
            "--workers" => {
                let Some(value) = args.next() else { usage() };
                workers = Some(value.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            other => {
                artefacts.insert(other.to_ascii_lowercase());
            }
        }
    }

    if check_invariants && sweep.is_some() {
        // The sweep path runs its own summarising observer per worker; it
        // does not audit invariants, so refuse instead of silently ignoring
        // the flag and reporting a false "clean" exit.
        eprintln!("--check-invariants cannot be combined with --sweep");
        std::process::exit(2);
    }
    if journal_path.is_some() && sweep.is_some() {
        // A journal records exactly one session's observation stream.
        eprintln!("--journal cannot be combined with --sweep");
        std::process::exit(2);
    }
    if replay_path.is_some() {
        if sweep.is_some() || journal_path.is_some() || check_invariants {
            // Replay re-drives a recorded stream: there is no simulation to
            // sweep or re-journal, and the invariant observer needs live
            // tick-end state that journals do not record.
            eprintln!("--replay cannot be combined with --sweep, --journal or --check-invariants");
            std::process::exit(2);
        }
        if scenario.is_some() {
            // The journal header carries the run's own scenario and seed;
            // refuse instead of silently ignoring the flag.
            eprintln!("--replay takes its configuration from the journal; drop --scenario");
            std::process::exit(2);
        }
    }

    if let Some(dir) = &json_dir {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!(
                "create --json output dir {}: {error} (is the parent writable and the path not a file?)",
                dir.display()
            );
            std::process::exit(1);
        }
    }

    let mut catalog = ScenarioCatalog::standard();
    if let Some(path) = &scenario_file {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("read --scenario-file {}: {error}", path.display());
                std::process::exit(2);
            }
        };
        match catalog.add_user_entries(&text) {
            Ok(added) => eprintln!(
                "loaded {added} user scenario entr{} from {}",
                if added == 1 { "y" } else { "ies" },
                path.display()
            ),
            Err(error) => {
                eprintln!("{}: {error}", path.display());
                std::process::exit(2);
            }
        }
    }
    if list_scenarios {
        println!("== scenario catalog ==");
        for entry in catalog.entries() {
            println!("  {:<24} {}", entry.name, entry.summary);
        }
        if let Some(dir) = &json_dir {
            write_json(dir, "scenarios", &json::scenario_catalog_json(&catalog));
        }
        return;
    }
    if let Some(name) = &scenario {
        if catalog.resolve(name).is_none() {
            eprintln!(
                "unknown scenario '{name}'; valid names (composable with '+'): {}",
                catalog.names().join(", ")
            );
            std::process::exit(2);
        }
    }

    let mut base_config = if smoke {
        SimConfig::smoke_test(seed)
    } else {
        SimConfig::paper_default(seed)
    };
    base_config.scenario = scenario;

    if let Some(kind) = sweep {
        run_sweep(base_config, kind, workers, json_dir.as_deref(), &catalog);
        return;
    }

    if artefacts.is_empty() {
        artefacts.insert("all".to_string());
    }
    let all = artefacts.contains("all");
    let wanted = |names: &[&str]| all || names.iter().any(|n| artefacts.contains(*n));

    // Pure (no-simulation) artefacts first.
    if wanted(&["table5", "table6", "case-study", "mitigation"]) {
        let study = run_case_study(&CaseStudyInput::default());
        println!("{}", render::render_case_study(&study));
        if let Some(dir) = &json_dir {
            write_json(dir, "case-study", &json::case_study_json(&study));
        }
    }
    if wanted(&["configs"]) {
        println!("== Appendix C: fixed-spread configuration soundness ==");
        for platform in Platform::ALL {
            let params = RiskParams::platform_default(platform);
            println!(
                "  {:<10} LT {:.2} LS {:.2} CF {:.2} -> 1 - LT(1+LS) > 0: {}",
                platform.name(),
                params.liquidation_threshold.to_f64(),
                params.liquidation_spread.to_f64(),
                params.close_factor.to_f64(),
                is_sound_fixed_spread_config(params)
            );
        }
        println!();
    }

    let needs_simulation = wanted(&[
        "headline",
        "table1",
        "table2",
        "table3",
        "table4",
        "table7",
        "table8",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "auction-stats",
        "stablecoins",
    ]) || journal_path.is_some();
    if !needs_simulation && replay_path.is_none() {
        return;
    }

    let analysis = if let Some(path) = &replay_path {
        // Offline pass: re-drive the StudyCollector with the recorded
        // observation stream — no simulation, byte-identical artefacts.
        let started = std::time::Instant::now();
        let reader = match JournalReader::open(path) {
            Ok(reader) => reader,
            Err(error) => {
                eprintln!("replay failed: {error}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "replaying journal {} (scenario '{}', seed {}, {} frames)…",
            path.display(),
            reader
                .header()
                .config
                .scenario
                .as_deref()
                .unwrap_or(ScenarioCatalog::DEFAULT_NAME),
            reader.header().config.seed,
            reader.frames().len()
        );
        let analysis = match StudyAnalysis::from_replay(|observer| reader.replay(observer)) {
            Ok(Some(analysis)) => analysis,
            Ok(None) => {
                eprintln!(
                    "replay failed: {}: stream ended before the run end",
                    path.display()
                );
                std::process::exit(1);
            }
            Err(error) => {
                eprintln!("replay failed: {error}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "replay finished in {:.1}s; analytics computed in-stream",
            started.elapsed().as_secs_f64()
        );
        analysis
    } else {
        let config = base_config;
        eprintln!(
            "running the {} window of scenario '{}' (seed {seed}, {} ticks){}…",
            if smoke { "smoke" } else { "two-year study" },
            config
                .scenario
                .as_deref()
                .unwrap_or(ScenarioCatalog::DEFAULT_NAME),
            config.tick_count(),
            if check_invariants {
                " with invariant checking"
            } else {
                ""
            }
        );
        let started = std::time::Instant::now();
        // One streaming pass: the study computes while the simulation runs,
        // with the invariant observer (and the journal writer, when
        // recording) attached to the same session.
        let mut invariants = InvariantObserver::new();
        let mut journal = match &journal_path {
            Some(path) => match JournalWriter::create(path) {
                Ok(writer) => Some(writer),
                Err(error) => {
                    eprintln!("journal failed: {error}");
                    std::process::exit(1);
                }
            },
            None => None,
        };
        let engine = EngineBuilder::new(config)
            .with_catalog(catalog.clone())
            .build();
        let result = match (&mut journal, check_invariants) {
            (Some(writer), true) => {
                let mut extra = MultiObserver::new().with(writer).with(&mut invariants);
                stream_study(engine, Some(&mut extra), timings)
            }
            (Some(writer), false) => stream_study(engine, Some(writer), timings),
            (None, true) => stream_study(engine, Some(&mut invariants), timings),
            (None, false) => stream_study(engine, None, timings),
        };
        let (analysis, report) = match result {
            Ok(result) => result,
            Err(error) => {
                eprintln!("simulation failed: {error}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "simulation finished in {:.1}s ({} events); analytics computed in-stream",
            started.elapsed().as_secs_f64(),
            report.chain.events().len()
        );
        if let Some(behavior) = &report.behavior {
            eprintln!(
                "behavior: {} opportunities queued, {} executed after latency, {} dropped stale, \
                 {} inventory exhaustions, {} panic exits (${:.0} sold)",
                behavior.stats.opportunities_queued,
                behavior.stats.executed_delayed,
                behavior.stats.stale_dropped,
                behavior.stats.inventory_exhaustions,
                behavior.stats.panic_exits,
                behavior.stats.panic_sell_usd,
            );
        }
        if !report.feedback_skipped.is_empty() {
            // No silent caps: collateral without a DEX route never reached the
            // feedback loop, so say how much sell pressure went unmodelled.
            let total: f64 = report
                .feedback_skipped
                .values()
                .map(|skipped| skipped.usd.to_f64())
                .sum();
            eprintln!(
                "feedback: ${total:.0} of sell pressure across {} token(s) had no DEX route and \
                 was skipped{}",
                report.feedback_skipped.len(),
                if timings {
                    ":"
                } else {
                    " (--timings for the per-token breakdown)"
                }
            );
            if timings {
                for (token, skipped) in &report.feedback_skipped {
                    eprintln!(
                        "  {token:<6} {} lot(s), {:.4} units, ${:.0}",
                        skipped.lots,
                        skipped.amount.to_f64(),
                        skipped.usd.to_f64()
                    );
                }
            }
        }
        if let Some(writer) = journal {
            let frames = writer.frames_written();
            match writer.finish() {
                Ok(()) => {
                    if let Some(path) = &journal_path {
                        eprintln!("journaled {frames} frames to {}", path.display());
                    }
                }
                Err(error) => {
                    eprintln!("journal failed: {error}");
                    std::process::exit(1);
                }
            }
        }
        if check_invariants {
            if invariants.is_clean() {
                eprintln!("invariants: clean");
            } else {
                eprintln!("invariants: {} violation(s)", invariants.violations().len());
                for violation in invariants.violations().iter().take(20) {
                    eprintln!("  {violation}");
                }
                std::process::exit(1);
            }
        }
        analysis
    };

    // Render (and JSON-encode) lazily: only the selected artefacts are built.
    macro_rules! emit {
        ($names:expr, $file:literal, $render:expr, $json:expr) => {
            if wanted(&$names) {
                println!("{}", $render);
                if let Some(dir) = &json_dir {
                    write_json(dir, $file, &$json);
                }
            }
        };
    }

    emit!(
        ["headline"],
        "headline",
        render::render_headline(&analysis),
        json::headline_json(&analysis)
    );
    emit!(
        ["table1"],
        "table1",
        render::render_table1(&analysis),
        json::table1_json(&analysis)
    );
    emit!(
        ["fig4"],
        "fig4",
        render::render_figure4(&analysis),
        json::figure4_json(&analysis)
    );
    emit!(
        ["fig5"],
        "fig5",
        render::render_figure5(&analysis),
        json::figure5_json(&analysis)
    );
    emit!(
        ["fig6"],
        "fig6",
        render::render_figure6(&analysis),
        json::figure6_json(&analysis)
    );
    emit!(
        ["fig7", "auction-stats"],
        "fig7",
        render::render_auctions(&analysis),
        json::auctions_json(&analysis)
    );
    emit!(
        ["table2"],
        "table2",
        render::render_table2(&analysis),
        json::table2_json(&analysis)
    );
    emit!(
        ["table3"],
        "table3",
        render::render_table3(&analysis),
        json::table3_json(&analysis)
    );
    emit!(
        ["table4"],
        "table4",
        render::render_table4(&analysis),
        json::table4_json(&analysis)
    );
    emit!(
        ["fig8"],
        "fig8",
        render::render_figure8(&analysis),
        json::figure8_json(&analysis)
    );
    emit!(
        ["stablecoins"],
        "stablecoins",
        render::render_stablecoins(&analysis),
        json::stablecoins_json(&analysis)
    );
    emit!(
        ["fig9"],
        "fig9",
        render::render_figure9(&analysis),
        json::figure9_json(&analysis)
    );
    emit!(
        ["table8"],
        "table8",
        render::render_table8(&analysis),
        json::table8_json(&analysis)
    );
    emit!(
        ["table7"],
        "table7",
        render::render_table7(&analysis),
        json::table7_json(&analysis)
    );
}
