//! The §5.2.2 case study: Tables 5 and 6.
//!
//! The paper reconstructs the Compound borrowing position
//! `0x909b443761bbD7fbB876Ecde71a37E1433f6af6f` at block 11,333,036: roughly
//! 108.51 M DAI and 17.88 M USDC of collateral against 93.22 M DAI and
//! 506.64 K USDC of debt, both markets at a 0.75 liquidation threshold. A
//! price-oracle update moving DAI from 1.08 to 1.095299 USD pushes the health
//! factor just below 1, and the (same-transaction) liquidation that followed
//! was the largest fixed-spread liquidation in the measurement (4.04 M USD of
//! profit).
//!
//! We rebuild that position inside our Compound implementation, apply the
//! same price update, and execute three strategies:
//!
//! 1. the **original** on-chain liquidation (repay ≈ 46.14 M USD of DAI debt),
//! 2. the **up-to-close-factor** strategy (repay exactly CF·D), and
//! 3. the **optimal** two-step strategy of Algorithm 2,
//!
//! reporting repay / receive / profit for each, as Table 6 does.

use serde::Serialize;

use defi_chain::{ChainEvent, Ledger};
use defi_core::params::RiskParams;
use defi_core::strategy::{optimal_liquidation, StrategyComparison};
use defi_lending::{FixedSpreadConfig, FixedSpreadProtocol, InterestRateModel, DEFAULT_DEBT_DUST};
use defi_oracle::{OracleConfig, PriceOracle};
use defi_types::{Address, Platform, Token, Wad};

/// Table 5: the position before and after the oracle price update.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Table5 {
    /// DAI collateral (token units).
    pub dai_collateral: Wad,
    /// USDC collateral (token units).
    pub usdc_collateral: Wad,
    /// DAI debt (token units).
    pub dai_debt: Wad,
    /// USDC debt (token units).
    pub usdc_debt: Wad,
    /// DAI price before the oracle update.
    pub dai_price_before: Wad,
    /// DAI price after the oracle update.
    pub dai_price_after: Wad,
    /// Total collateral value before the update (USD).
    pub collateral_before: Wad,
    /// Total collateral value after the update (USD).
    pub collateral_after: Wad,
    /// Borrowing capacity after the update (USD).
    pub borrowing_capacity_after: Wad,
    /// Total debt value before the update (USD).
    pub debt_before: Wad,
    /// Total debt value after the update (USD).
    pub debt_after: Wad,
    /// Health factor after the update.
    pub health_factor_after: Wad,
}

/// One strategy row of Table 6.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StrategyRow {
    /// Strategy label.
    pub label: &'static str,
    /// Debt repaid (USD).
    pub repay_usd: Wad,
    /// Collateral received (USD).
    pub receive_usd: Wad,
    /// Profit (USD).
    pub profit_usd: Wad,
}

/// Table 6: the three strategies side by side.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Table6 {
    /// The original (observed) liquidation.
    pub original: StrategyRow,
    /// The up-to-close-factor strategy.
    pub up_to_close_factor: StrategyRow,
    /// The optimal two-step strategy (aggregated over both liquidations).
    pub optimal: StrategyRow,
    /// The optimal strategy's first liquidation.
    pub optimal_step_1: StrategyRow,
    /// The optimal strategy's second liquidation.
    pub optimal_step_2: StrategyRow,
    /// Additional profit of the optimal strategy over the original (USD).
    pub optimal_advantage_over_original: Wad,
    /// Relative increase of the optimal strategy over up-to-close-factor,
    /// predicted by Eq. 9.
    pub predicted_increase_rate: f64,
}

/// The full case study: Table 5, Table 6 and the §5.2.3 mitigation threshold.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CaseStudy {
    /// Table 5.
    pub table5: Table5,
    /// Table 6.
    pub table6: Table6,
    /// Minimum mining power α above which the optimal strategy remains
    /// rational under the one-liquidation-per-block mitigation (Eq. 12).
    pub mitigation_mining_power_threshold: Option<f64>,
}

/// Parameters of the case-study position (from Table 5 of the paper).
pub struct CaseStudyInput {
    /// DAI collateral (token units).
    pub dai_collateral: f64,
    /// USDC collateral (token units).
    pub usdc_collateral: f64,
    /// DAI debt (token units).
    pub dai_debt: f64,
    /// USDC debt (token units).
    pub usdc_debt: f64,
    /// DAI price before the update (USD).
    pub dai_price_before: f64,
    /// DAI price after the update (USD).
    pub dai_price_after: f64,
    /// Liquidation threshold of both markets.
    pub liquidation_threshold: f64,
    /// Compound's liquidation spread (8 %).
    pub liquidation_spread: f64,
    /// Compound's close factor (50 %).
    pub close_factor: f64,
    /// Repay amount of the original on-chain liquidation (USD).
    pub original_repay_usd: f64,
}

impl Default for CaseStudyInput {
    fn default() -> Self {
        CaseStudyInput {
            dai_collateral: 108_510_000.0,
            usdc_collateral: 17_880_000.0,
            dai_debt: 93_220_000.0,
            usdc_debt: 506_640.0,
            dai_price_before: 1.08,
            dai_price_after: 1.095299,
            liquidation_threshold: 0.75,
            liquidation_spread: 0.08,
            close_factor: 0.50,
            original_repay_usd: 46_140_000.0,
        }
    }
}

/// Build the case-study position inside the Compound implementation and
/// evaluate the three strategies.
pub fn run_case_study(input: &CaseStudyInput) -> CaseStudy {
    // --- Table 5: valuation before/after the oracle update -----------------
    let dai_c = Wad::from_f64(input.dai_collateral);
    let usdc_c = Wad::from_f64(input.usdc_collateral);
    let dai_d = Wad::from_f64(input.dai_debt);
    let usdc_d = Wad::from_f64(input.usdc_debt);
    let p_before = Wad::from_f64(input.dai_price_before);
    let p_after = Wad::from_f64(input.dai_price_after);
    let lt = Wad::from_f64(input.liquidation_threshold);

    let collateral_before = dai_c * p_before + usdc_c;
    let collateral_after = dai_c * p_after + usdc_c;
    let debt_before = dai_d * p_before + usdc_d;
    let debt_after = dai_d * p_after + usdc_d;
    let capacity_after = collateral_after * lt;
    let hf_after = capacity_after / debt_after;

    let table5 = Table5 {
        dai_collateral: dai_c,
        usdc_collateral: usdc_c,
        dai_debt: dai_d,
        usdc_debt: usdc_d,
        dai_price_before: p_before,
        dai_price_after: p_after,
        collateral_before,
        collateral_after,
        borrowing_capacity_after: capacity_after,
        debt_before,
        debt_after,
        health_factor_after: hf_after,
    };

    // --- Strategy evaluation (closed forms over the ⟨C, D⟩ aggregate) ------
    let params = RiskParams::new(
        input.liquidation_threshold,
        input.liquidation_spread,
        input.close_factor,
    );
    let comparison = StrategyComparison::evaluate(collateral_after, debt_after, params)
        .expect("case-study position must be liquidatable after the price update");
    let optimal = optimal_liquidation(collateral_after, debt_after, params)
        .expect("optimal strategy applies");

    let spread = Wad::from_f64(input.liquidation_spread);
    let row = |label: &'static str, repay: Wad| {
        let receive = repay * (Wad::ONE + spread);
        StrategyRow {
            label,
            repay_usd: repay,
            receive_usd: receive,
            profit_usd: receive - repay,
        }
    };

    let original = row(
        "original liquidation",
        Wad::from_f64(input.original_repay_usd),
    );
    let up_to_close = row("up-to-close-factor", comparison.up_to_close_factor.repay_1);
    let optimal_1 = row("optimal: liquidation 1", optimal.repay_1);
    let optimal_2 = row("optimal: liquidation 2", optimal.repay_2);
    let optimal_total = StrategyRow {
        label: "optimal (total)",
        repay_usd: optimal.total_repaid(),
        receive_usd: optimal_1.receive_usd + optimal_2.receive_usd,
        profit_usd: optimal_1.profit_usd + optimal_2.profit_usd,
    };

    let table6 = Table6 {
        original,
        up_to_close_factor: up_to_close,
        optimal: optimal_total,
        optimal_step_1: optimal_1,
        optimal_step_2: optimal_2,
        optimal_advantage_over_original: optimal_total
            .profit_usd
            .saturating_sub(original.profit_usd),
        predicted_increase_rate: comparison.predicted_increase_rate.unwrap_or(0.0),
    };

    let mitigation = defi_core::mitigation::optimal_strategy_mining_power_threshold(
        collateral_after,
        debt_after,
        params,
    );

    CaseStudy {
        table5,
        table6,
        mitigation_mining_power_threshold: mitigation,
    }
}

/// Replay the up-to-close-factor and optimal strategies as *concrete
/// executions* against the Compound implementation — the analogue of the
/// paper validating its strategies on a mainnet fork. Returns the two
/// executed profits (USD) for cross-checking against the closed forms.
pub fn execute_on_compound(input: &CaseStudyInput) -> (Wad, Wad) {
    let build = || {
        let mut protocol = FixedSpreadProtocol::new(FixedSpreadConfig {
            platform: Platform::Compound,
            close_factor: Wad::from_f64(input.close_factor),
            one_liquidation_per_block: false,
            insurance_fund: false,
            debt_dust: DEFAULT_DEBT_DUST,
        });
        for token in [Token::DAI, Token::USDC] {
            protocol.list_market(
                token,
                RiskParams::new(
                    input.liquidation_threshold,
                    input.liquidation_spread,
                    input.close_factor,
                ),
                InterestRateModel::stablecoin(),
                0,
            );
        }
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::DAI, Wad::from_f64(input.dai_price_before));
        oracle.set_price(0, Token::USDC, Wad::ONE);
        let mut ledger = Ledger::new();
        let mut events: Vec<ChainEvent> = Vec::new();
        let borrower = Address::from_label("case-study-borrower");
        let lender = Address::from_label("case-study-lender");
        // Deep lender liquidity so the borrow succeeds.
        for token in [Token::DAI, Token::USDC] {
            ledger.mint(lender, token, Wad::from_f64(500_000_000.0));
            protocol
                .deposit(
                    &mut ledger,
                    &mut events,
                    lender,
                    token,
                    Wad::from_f64(400_000_000.0),
                )
                .expect("lender deposit");
        }
        // The borrower's collateral and debt.
        ledger.mint(borrower, Token::DAI, Wad::from_f64(input.dai_collateral));
        ledger.mint(borrower, Token::USDC, Wad::from_f64(input.usdc_collateral));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                borrower,
                Token::DAI,
                Wad::from_f64(input.dai_collateral),
            )
            .expect("DAI collateral");
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                borrower,
                Token::USDC,
                Wad::from_f64(input.usdc_collateral),
            )
            .expect("USDC collateral");
        protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                borrower,
                Token::DAI,
                Wad::from_f64(input.dai_debt),
            )
            .expect("DAI debt");
        protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                borrower,
                Token::USDC,
                Wad::from_f64(input.usdc_debt),
            )
            .expect("USDC debt");
        // The oracle update that tips the position over.
        oracle.set_price(2, Token::DAI, Wad::from_f64(input.dai_price_after));
        (protocol, oracle, ledger, events, borrower)
    };

    let liquidator = Address::from_label("case-study-liquidator");

    // Strategy A: single up-to-close-factor liquidation.
    let profit_close_factor = {
        let (mut protocol, oracle, mut ledger, mut events, borrower) = build();
        ledger.mint(liquidator, Token::DAI, Wad::from_f64(input.dai_debt));
        let receipt = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                3,
                liquidator,
                borrower,
                Token::DAI,
                Token::DAI,
                Wad::from_f64(input.dai_debt * input.close_factor),
                false,
            )
            .expect("close-factor liquidation");
        receipt.gross_profit_usd()
    };

    // Strategy B: the optimal two-step strategy.
    let profit_optimal = {
        let (mut protocol, oracle, mut ledger, mut events, borrower) = build();
        ledger.mint(liquidator, Token::DAI, Wad::from_f64(2.0 * input.dai_debt));
        let position = protocol.position(&oracle, borrower).expect("position");
        let params = RiskParams::new(
            input.liquidation_threshold,
            input.liquidation_spread,
            input.close_factor,
        );
        let plan = optimal_liquidation(
            position.total_collateral_value(),
            position.total_debt_value(),
            params,
        )
        .expect("liquidatable");
        let dai_price = oracle.price(Token::DAI).unwrap();
        // The protocol rejects repayments above the close-factor cap, and the
        // abstract plan's amounts can exceed the live cap by fixed-point
        // dust once interest accrual and index truncation are in play — so
        // request min(plan, live cap) like a real liquidator contract would.
        let live_cap = |protocol: &mut FixedSpreadProtocol, block: u64| {
            protocol.accrue_all(block);
            protocol
                .debt_of(borrower, Token::DAI)
                .checked_mul(protocol.config().close_factor)
                .unwrap()
        };
        let repay_1_tokens = plan
            .repay_1
            .checked_div(dai_price)
            .unwrap()
            .min(live_cap(&mut protocol, 3));
        let r1 = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                3,
                liquidator,
                borrower,
                Token::DAI,
                Token::DAI,
                repay_1_tokens,
                false,
            )
            .expect("optimal step 1");
        let repay_2_tokens = plan
            .repay_2
            .checked_div(dai_price)
            .unwrap()
            .min(live_cap(&mut protocol, 4));
        let r2 = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                4,
                liquidator,
                borrower,
                Token::DAI,
                Token::DAI,
                repay_2_tokens,
                false,
            )
            .expect("optimal step 2");
        r1.gross_profit_usd().saturating_add(r2.gross_profit_usd())
    };

    (profit_close_factor, profit_optimal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_health_factor_drops_below_one() {
        let study = run_case_study(&CaseStudyInput::default());
        let t5 = study.table5;
        // Before the update the position is healthy; after, HF < 1 (≈ 0.999).
        let hf_before = (t5.collateral_before * Wad::from_f64(0.75))
            .checked_div(t5.debt_before)
            .unwrap();
        assert!(hf_before > Wad::ONE);
        assert!(t5.health_factor_after < Wad::ONE);
        assert!(t5.health_factor_after > Wad::from_f64(0.99));
        // Magnitudes line up with Table 5 (~135-137M collateral, ~101-103M debt).
        assert!(t5.collateral_after > Wad::from_int(130_000_000));
        assert!(t5.collateral_after < Wad::from_int(140_000_000));
        assert!(t5.debt_after > Wad::from_int(100_000_000));
        assert!(t5.debt_after < Wad::from_int(105_000_000));
    }

    #[test]
    fn table6_orders_strategies_as_in_the_paper() {
        let study = run_case_study(&CaseStudyInput::default());
        let t6 = study.table6;
        // optimal > up-to-close-factor > original.
        assert!(t6.optimal.profit_usd > t6.up_to_close_factor.profit_usd);
        assert!(t6.up_to_close_factor.profit_usd > t6.original.profit_usd);
        // Profit magnitudes are in the paper's ballpark (3.6–3.8M USD).
        assert!(t6.up_to_close_factor.profit_usd > Wad::from_int(3_500_000));
        assert!(t6.optimal.profit_usd < Wad::from_int(4_200_000));
        // The optimal advantage over the original is tens of thousands of USD.
        assert!(t6.optimal_advantage_over_original > Wad::from_int(10_000));
        // The first optimal step is small relative to the second.
        assert!(t6.optimal_step_1.repay_usd < t6.optimal_step_2.repay_usd);
    }

    #[test]
    fn mitigation_threshold_is_near_one() {
        let study = run_case_study(&CaseStudyInput::default());
        let threshold = study.mitigation_mining_power_threshold.unwrap();
        // The paper reports 99.68% for this position.
        assert!(
            threshold > 0.95,
            "threshold {threshold} should be close to 1"
        );
        assert!(threshold <= 1.01);
    }

    #[test]
    fn concrete_execution_matches_closed_forms() {
        let input = CaseStudyInput::default();
        let study = run_case_study(&input);
        let (close_factor_profit, optimal_profit) = execute_on_compound(&input);
        // The executed profits agree with the closed forms within a small
        // relative error (interest accrual between the two blocks of the
        // optimal strategy adds a negligible amount).
        let rel = |a: Wad, b: Wad| (a.to_f64() - b.to_f64()).abs() / b.to_f64();
        assert!(
            rel(
                close_factor_profit,
                study.table6.up_to_close_factor.profit_usd
            ) < 0.01
        );
        assert!(rel(optimal_profit, study.table6.optimal.profit_usd) < 0.01);
        assert!(optimal_profit > close_factor_profit);
    }
}
