//! Plain-text rendering of the analysis artefacts, used by the `repro`
//! binary to print paper-style tables and series.

use defi_analytics::StudyAnalysis;
use defi_types::{Platform, SignedWad, Wad};

use crate::case_study::CaseStudy;

fn usd(value: Wad) -> String {
    let v = value.to_f64();
    if v >= 1e9 {
        format!("{:.2}B USD", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M USD", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K USD", v / 1e3)
    } else {
        format!("{v:.2} USD")
    }
}

fn signed_usd(value: SignedWad) -> String {
    if value.is_negative() {
        format!("-{}", usd(value.magnitude))
    } else {
        usd(value.magnitude)
    }
}

/// §4.2 headline statistics.
pub fn render_headline(analysis: &StudyAnalysis) -> String {
    let h = &analysis.headline;
    let mut out = String::new();
    out.push_str("== Overall statistics (paper §4.2 / §4.3.1) ==\n");
    out.push_str(&format!(
        "  liquidations:              {}\n",
        h.liquidation_count
    ));
    out.push_str(&format!(
        "  unique liquidators:        {}\n",
        h.liquidator_count
    ));
    out.push_str(&format!(
        "  collateral sold:           {}\n",
        usd(h.total_collateral_sold)
    ));
    out.push_str(&format!(
        "  total liquidator profit:   {}\n",
        signed_usd(h.total_profit)
    ));
    out.push_str(&format!(
        "  unprofitable liquidations: {} (loss {})\n",
        h.unprofitable_liquidations,
        usd(h.unprofitable_loss)
    ));
    if let Some(top) = &analysis.top_liquidators {
        out.push_str(&format!(
            "  most active liquidator:    {} liquidations, {}\n",
            top.most_active_count,
            signed_usd(top.most_active_profit)
        ));
        out.push_str(&format!(
            "  most profitable liquidator: {} in {} liquidations\n",
            signed_usd(top.most_profitable_profit),
            top.most_profitable_count
        ));
    }
    out
}

/// Table 1.
pub fn render_table1(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Table 1: liquidations, liquidators and average profit ==\n");
    out.push_str(&format!(
        "{:<12} {:>14} {:>12} {:>18}\n",
        "Platform", "Liquidations", "Liquidators", "Average profit"
    ));
    for row in &analysis.table1.rows {
        out.push_str(&format!(
            "{:<12} {:>14} {:>12} {:>18}\n",
            row.platform.name(),
            row.liquidations,
            row.liquidators,
            signed_usd(row.average_profit)
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>14} {:>12} {:>18}\n",
        "Total",
        analysis.table1.total_liquidations,
        analysis.table1.total_liquidators,
        signed_usd(analysis.table1.total_profit)
    ));
    out
}

/// Figure 4: cumulative liquidated collateral (final values plus a coarse series).
pub fn render_figure4(analysis: &StudyAnalysis) -> String {
    let mut out =
        String::from("== Figure 4: accumulative collateral sold through liquidation ==\n");
    for (platform, series) in &analysis.figure4 {
        let total = series.last().map(|p| p.cumulative_usd).unwrap_or(Wad::ZERO);
        out.push_str(&format!("  {:<10} final {}\n", platform.name(), usd(total)));
        // Print up to 8 evenly spaced intermediate points.
        let step = (series.len() / 8).max(1);
        for point in series.iter().step_by(step) {
            out.push_str(&format!(
                "      block {:>10}  {}\n",
                point.block,
                usd(point.cumulative_usd)
            ));
        }
    }
    out
}

/// Figure 5: monthly liquidator profit.
pub fn render_figure5(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Figure 5: monthly liquidation profit per platform ==\n");
    let mut months: Vec<_> = analysis
        .figure5
        .values()
        .flat_map(|m| m.keys().copied())
        .collect();
    months.sort();
    months.dedup();
    out.push_str(&format!("{:<9}", "Month"));
    for platform in Platform::ALL {
        out.push_str(&format!(" {:>14}", platform.name()));
    }
    out.push('\n');
    for month in months {
        out.push_str(&format!("{:<9}", month.to_string()));
        for platform in Platform::ALL {
            let value = analysis
                .figure5
                .get(&platform)
                .and_then(|m| m.get(&month))
                .copied()
                .unwrap_or(SignedWad::ZERO);
            out.push_str(&format!(" {:>14}", signed_usd(value)));
        }
        out.push('\n');
    }
    out
}

/// Figure 6 / §4.3.2.
pub fn render_figure6(analysis: &StudyAnalysis) -> String {
    let gas = &analysis.gas;
    let mut out = String::from("== Figure 6: liquidation gas prices vs. network average ==\n");
    out.push_str(&format!(
        "  fixed-spread liquidations: {}\n  share paying above-average gas price: {:.2}%\n",
        gas.points.len(),
        gas.share_above_average * 100.0
    ));
    let step = (gas.points.len() / 10).max(1);
    for point in gas.points.iter().step_by(step) {
        out.push_str(&format!(
            "      block {:>10}  {:>8} gwei (avg {:>8.1})  {}\n",
            point.block,
            point.gas_price,
            point.average_gas_price,
            if point.above_average {
                "above"
            } else {
                "below"
            }
        ));
    }
    out
}

/// Figure 7 / §4.3.3.
pub fn render_auctions(analysis: &StudyAnalysis) -> String {
    let a = &analysis.auctions;
    let mut out = String::from("== Figure 7 / §4.3.3: MakerDAO auction statistics ==\n");
    out.push_str(&format!(
        "  auctions: {} (tend-terminated {}, dent-terminated {})\n",
        a.terminated_in_tend + a.terminated_in_dent,
        a.terminated_in_tend,
        a.terminated_in_dent
    ));
    out.push_str(&format!(
        "  average bidders per auction: {:.2}\n",
        a.average_bidders
    ));
    out.push_str(&format!(
        "  bids per auction: {:.2} ± {:.2} (tend {:.2} ± {:.2}, dent {:.2} ± {:.2})\n",
        a.bids_per_auction.mean,
        a.bids_per_auction.std_dev,
        a.tend_bids_per_auction.mean,
        a.tend_bids_per_auction.std_dev,
        a.dent_bids_per_auction.mean,
        a.dent_bids_per_auction.std_dev
    ));
    out.push_str(&format!(
        "  duration: {:.2} ± {:.2} hours\n",
        a.duration_hours.mean, a.duration_hours.std_dev
    ));
    out.push_str(&format!(
        "  first bid after {:.1} ± {:.1} minutes; bid interval {:.1} ± {:.1} minutes\n",
        a.first_bid_delay_minutes.mean,
        a.first_bid_delay_minutes.std_dev,
        a.bid_interval_minutes.mean,
        a.bid_interval_minutes.std_dev
    ));
    out.push_str(&format!(
        "  auctions with more than one bid: {}\n",
        a.auctions_with_multiple_bids
    ));
    out
}

/// Table 2.
pub fn render_table2(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Table 2: Type I / Type II bad debts at the snapshot block ==\n");
    out.push_str(&format!(
        "{:<12} {:>22} {:>26} {:>26}\n",
        "Platform", "Type I", "Type II (fee <= 10 USD)", "Type II (fee <= 100 USD)"
    ));
    for row in &analysis.table2.rows {
        out.push_str(&format!(
            "{:<12} {:>6} ({:>5.1}%) {:>9} {:>9} ({:>5.1}%) {:>9} {:>9} ({:>5.1}%) {:>9}\n",
            row.platform.name(),
            row.type_1.count,
            row.type_1.share_percent(),
            usd(row.type_1.collateral_locked),
            row.type_2_fee_10.count,
            row.type_2_fee_10.share_percent(),
            usd(row.type_2_fee_10.collateral_locked),
            row.type_2_fee_100.count,
            row.type_2_fee_100.share_percent(),
            usd(row.type_2_fee_100.collateral_locked),
        ));
    }
    out
}

/// Table 3.
pub fn render_table3(analysis: &StudyAnalysis) -> String {
    let mut out = String::from(
        "== Table 3: unprofitable liquidation opportunities at the snapshot block ==\n",
    );
    out.push_str(&format!(
        "{:<12} {:>26} {:>26}\n",
        "Platform", "fee <= 10 USD", "fee <= 100 USD"
    ));
    for row in &analysis.table3.rows {
        out.push_str(&format!(
            "{:<12} {:>6} ({:>5.1}%) {:>11} {:>6} ({:>5.1}%) {:>11}\n",
            row.platform.name(),
            row.fee_10.count,
            row.fee_10.share_percent(),
            usd(row.fee_10.collateral_at_stake),
            row.fee_100.count,
            row.fee_100.share_percent(),
            usd(row.fee_100.collateral_at_stake),
        ));
    }
    out
}

/// Table 4.
pub fn render_table4(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Table 4: flash-loan usage for liquidations ==\n");
    out.push_str(&format!(
        "{:<14} {:<14} {:>12} {:>20}\n",
        "Liquidation", "Flash pool", "Flash loans", "Cumulative amount"
    ));
    for row in &analysis.table4.rows {
        out.push_str(&format!(
            "{:<14} {:<14} {:>12} {:>20}\n",
            row.liquidation_platform.name(),
            row.flash_pool.name(),
            row.count,
            usd(row.cumulative_amount_usd)
        ));
    }
    out.push_str(&format!(
        "{:<14} {:<14} {:>12} {:>20}\n",
        "Total",
        "",
        analysis.table4.total_flash_loans,
        usd(analysis.table4.total_amount_usd)
    ));
    out
}

/// Figure 8.
pub fn render_figure8(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Figure 8: liquidation sensitivity to price declines ==\n");
    for platform in &analysis.figure8 {
        out.push_str(&format!("  {}\n", platform.platform.name()));
        for curve in &platform.curves {
            if curve.max().is_zero() {
                continue;
            }
            out.push_str(&format!("    {:<12}", curve.token.symbol()));
            for decline in [0.2, 0.4, 0.43, 0.6, 0.8, 1.0] {
                out.push_str(&format!(
                    " {:>4.0}%:{:>12}",
                    decline * 100.0,
                    usd(curve.at(decline))
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// §4.5.2 stablecoin stability.
pub fn render_stablecoins(analysis: &StudyAnalysis) -> String {
    let s = &analysis.stablecoins;
    format!(
        "== §4.5.2: stablecoin price stability ==\n  sampled blocks: {}\n  within {:.0}% of each other: {:.2}% of blocks\n  maximum pairwise difference: {:.1}% (block {})\n",
        s.sampled_blocks,
        s.threshold * 100.0,
        s.share_within_threshold * 100.0,
        s.max_difference * 100.0,
        s.max_difference_block
    )
}

/// Figure 9 + ranking.
pub fn render_figure9(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Figure 9: monthly profit-volume ratio (DAI/ETH markets) ==\n");
    for platform in Platform::ALL {
        let series = analysis.figure9.series(platform);
        if series.is_empty() {
            continue;
        }
        out.push_str(&format!("  {:<10}", platform.name()));
        for (month, ratio) in series.iter().rev().take(6).rev() {
            out.push_str(&format!(" {}:{:.2e}", month, ratio));
        }
        out.push('\n');
    }
    out.push_str("  mean ratio ranking (lower = better for borrowers):\n");
    for (platform, ratio) in analysis.figure9.ranking(3) {
        out.push_str(&format!("    {:<10} {:.3e}\n", platform.name(), ratio));
    }
    if let Some(answer) = analysis
        .figure9
        .auction_favours_borrowers_vs(Platform::DyDx, 3)
    {
        out.push_str(&format!(
            "  auction (MakerDAO) more borrower-friendly than dYdX: {answer}\n"
        ));
    }
    out
}

/// Table 8.
pub fn render_table8(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Table 8: monthly DAI/ETH liquidations per platform ==\n");
    out.push_str(&format!("{:<9}", "Month"));
    for platform in Platform::ALL {
        out.push_str(&format!(" {:>10}", platform.name()));
    }
    out.push('\n');
    for (month, by_platform) in &analysis.table8.counts {
        out.push_str(&format!("{:<9}", month.to_string()));
        for platform in Platform::ALL {
            out.push_str(&format!(
                " {:>10}",
                by_platform.get(&platform).copied().unwrap_or(0)
            ));
        }
        out.push('\n');
    }
    out
}

/// Table 7.
pub fn render_table7(analysis: &StudyAnalysis) -> String {
    let mut out = String::from("== Table 7 (Appendix A): post-liquidation price movements ==\n");
    out.push_str(&format!(
        "{:<18} {:>14} {:>14} {:>14}\n",
        "Movement", "Liquidations", "Max price", "Min price"
    ));
    for (pattern, row) in &analysis.table7.rows {
        out.push_str(&format!(
            "{:<18} {:>14} {:>13.2}% {:>13.2}%\n",
            format!("{pattern:?}"),
            row.liquidations,
            row.mean_max_excursion * 100.0,
            row.mean_min_excursion * 100.0
        ));
    }
    out.push_str(&format!(
        "  share ending below the liquidation price: {:.2}%\n",
        analysis.table7.share_ending_below * 100.0
    ));
    out
}

/// Tables 5 and 6 plus the mitigation threshold.
pub fn render_case_study(study: &CaseStudy) -> String {
    let t5 = &study.table5;
    let t6 = &study.table6;
    let mut out =
        String::from("== Table 5: case-study position (block 11,333,036 → 11,333,037) ==\n");
    out.push_str(&format!(
        "  collateral: {} DAI + {} USDC\n  debt:       {} DAI + {} USDC\n",
        t5.dai_collateral, t5.usdc_collateral, t5.dai_debt, t5.usdc_debt
    ));
    out.push_str(&format!(
        "  DAI price {} -> {}\n",
        t5.dai_price_before, t5.dai_price_after
    ));
    out.push_str(&format!(
        "  total collateral {} -> {}\n  borrowing capacity (after) {}\n  total debt {} -> {}\n  health factor after update: {}\n",
        usd(t5.collateral_before),
        usd(t5.collateral_after),
        usd(t5.borrowing_capacity_after),
        usd(t5.debt_before),
        usd(t5.debt_after),
        t5.health_factor_after
    ));
    out.push_str("== Table 6: liquidation strategies ==\n");
    for row in [
        t6.original,
        t6.up_to_close_factor,
        t6.optimal_step_1,
        t6.optimal_step_2,
        t6.optimal,
    ] {
        out.push_str(&format!(
            "  {:<24} repay {:>14}  receive {:>14}  profit {:>12}\n",
            row.label,
            usd(row.repay_usd),
            usd(row.receive_usd),
            usd(row.profit_usd)
        ));
    }
    out.push_str(&format!(
        "  optimal strategy advantage over the original: {}\n  predicted increase rate over up-to-close-factor (Eq. 9): {:.4}%\n",
        usd(t6.optimal_advantage_over_original),
        t6.predicted_increase_rate * 100.0
    ));
    if let Some(alpha) = study.mitigation_mining_power_threshold {
        out.push_str(&format!(
            "== §5.2.3 mitigation ==\n  one-liquidation-per-block: optimal strategy rational only for mining power > {:.2}%\n",
            alpha * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::{run_case_study, CaseStudyInput};

    #[test]
    fn case_study_renders_all_rows() {
        let study = run_case_study(&CaseStudyInput::default());
        let text = render_case_study(&study);
        assert!(text.contains("Table 5"));
        assert!(text.contains("Table 6"));
        assert!(text.contains("optimal (total)"));
        assert!(text.contains("mining power"));
    }

    #[test]
    fn usd_formatting() {
        assert_eq!(usd(Wad::from_int(1_500)), "1.50K USD");
        assert_eq!(usd(Wad::from_int(2_500_000)), "2.50M USD");
        assert_eq!(usd(Wad::from_f64(3.25)), "3.25 USD");
        assert_eq!(usd(Wad::from_int(7_000_000_000)), "7.00B USD");
        assert_eq!(
            signed_usd(SignedWad::negative(Wad::from_int(5_000))),
            "-5.00K USD"
        );
    }
}
