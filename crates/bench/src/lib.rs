//! # defi-bench
//!
//! The reproduction harness. Two entry points:
//!
//! * the **`repro` binary** (`cargo run --release -p defi-bench --bin repro`)
//!   runs the two-year simulation, pipes it through `defi-analytics`, and
//!   prints every table and figure series of the paper's evaluation
//!   (`repro all`, or a single artefact such as `repro table1` / `repro fig8`);
//! * the **Criterion benches** (`cargo bench -p defi-bench`) measure the
//!   computational kernels behind each experiment (Algorithm 1 sweeps,
//!   Algorithm 2 closed forms, liquidation calls, auction rounds, the
//!   analytics pipeline) on fixed-size inputs.
//!
//! The [`case_study`] module reconstructs the §5.2.2 position (Table 5) and
//! replays the three liquidation strategies against the Compound
//! implementation (Table 6), which is the simulation-substrate equivalent of
//! the authors' mainnet-fork validation.

#![forbid(unsafe_code)]

pub mod case_study;
pub mod json;
pub mod render;

pub use case_study::{CaseStudy, StrategyRow, Table5, Table6};
