//! Criterion benchmarks of the computational kernels behind each experiment.
//!
//! One benchmark group per table/figure of the paper. Each group benchmarks
//! the computation that regenerates the artefact (the simulation data is
//! generated once, outside the timing loops); the `repro` binary prints the
//! actual rows/series.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::BTreeMap;

use defi_analytics::records::collect_records;
use defi_analytics::{
    auctions, bad_debt, flashloan, gas, overall, price_movement, profit_volume, sensitivity,
    stablecoin, unprofitable,
};
use defi_bench::case_study::{run_case_study, CaseStudyInput};
use defi_core::params::RiskParams;
use defi_core::position::{CollateralHolding, DebtHolding, Position};
use defi_core::sensitivity::SensitivityCurve;
use defi_core::strategy::StrategyComparison;
use defi_lending::{compound, InterestRateModel};
use defi_oracle::{OracleConfig, PriceOracle};
use defi_sim::{SimConfig, SimulationEngine, SimulationReport};
use defi_types::{Address, Platform, Token, Wad};

/// One shared smoke-scale simulation for every analytics benchmark.
fn shared_report() -> &'static SimulationReport {
    use std::sync::OnceLock;
    static REPORT: OnceLock<SimulationReport> = OnceLock::new();
    REPORT.get_or_init(|| SimulationEngine::new(SimConfig::smoke_test(77)).run())
}

/// A synthetic position book for the Algorithm 1 benchmarks.
fn synthetic_book(count: u64) -> Vec<Position> {
    (0..count)
        .map(|i| {
            Position::new(Address::from_seed(i))
                .with_collateral(CollateralHolding {
                    token: Token::ETH,
                    amount: Wad::from_int(10),
                    value_usd: Wad::from_int(20_000 + (i % 7) * 1_000),
                    liquidation_threshold: Wad::from_f64(0.8),
                    liquidation_spread: Wad::from_f64(0.08),
                })
                .with_collateral(CollateralHolding {
                    token: Token::USDC,
                    amount: Wad::from_int(5_000),
                    value_usd: Wad::from_int(5_000),
                    liquidation_threshold: Wad::from_f64(0.85),
                    liquidation_spread: Wad::from_f64(0.04),
                })
                .with_debt(DebtHolding {
                    token: Token::DAI,
                    amount: Wad::from_int(12_000 + (i % 11) * 500),
                    value_usd: Wad::from_int(12_000 + (i % 11) * 500),
                })
        })
        .collect()
}

/// Figure 4 / Figure 5 / Table 1: ledger extraction and profit aggregation.
fn bench_overall(c: &mut Criterion) {
    let report = shared_report();
    let records = collect_records(&report.chain, &report.market_oracle);
    let mut group = c.benchmark_group("table1_fig4_fig5_overall");
    group.bench_function("collect_records", |b| {
        b.iter(|| collect_records(&report.chain, &report.market_oracle))
    });
    group.bench_function("table1", |b| b.iter(|| overall::table1(&records)));
    group.bench_function("fig4_accumulative", |b| {
        b.iter(|| overall::accumulative_collateral_sold(&records))
    });
    group.bench_function("fig5_monthly_profit", |b| {
        b.iter(|| overall::monthly_profit(&records))
    });
    group.finish();
}

/// Figure 6: gas-price competition.
fn bench_fig6_gas(c: &mut Criterion) {
    let report = shared_report();
    let records = collect_records(&report.chain, &report.market_oracle);
    c.bench_function("fig6_gas_competition", |b| {
        b.iter(|| gas::gas_competition(&report.chain, &records, 6_000))
    });
}

/// Figure 7 / §4.3.3: auction statistics.
fn bench_fig7_auctions(c: &mut Criterion) {
    let report = shared_report();
    let records = collect_records(&report.chain, &report.market_oracle);
    let time_map = *report.chain.time_map();
    c.bench_function("fig7_auction_stats", |b| {
        b.iter(|| auctions::auction_stats(&report.chain, &records, &time_map))
    });
}

/// Table 2 / Table 3: bad debts and unprofitable opportunities.
fn bench_table2_table3(c: &mut Criterion) {
    let report = shared_report();
    let mut group = c.benchmark_group("table2_table3_bad_debt");
    group.bench_function("table2_bad_debts", |b| {
        b.iter(|| bad_debt::table2(&report.final_positions))
    });
    group.bench_function("table3_unprofitable", |b| {
        b.iter(|| unprofitable::table3(&report.final_positions))
    });
    group.finish();
}

/// Table 4: flash-loan usage join.
fn bench_table4_flash_loans(c: &mut Criterion) {
    let report = shared_report();
    c.bench_function("table4_flash_loans", |b| {
        b.iter(|| flashloan::table4(&report.chain))
    });
}

/// Figure 8: Algorithm 1 sensitivity sweeps at several book sizes.
fn bench_fig8_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_sensitivity");
    for size in [100u64, 1_000, 5_000] {
        let book = synthetic_book(size);
        group.bench_function(format!("algorithm1_sweep_{size}_positions"), |b| {
            b.iter(|| SensitivityCurve::compute(&book, Token::ETH, 100))
        });
    }
    let report = shared_report();
    group.bench_function("fig8_all_platforms", |b| {
        b.iter(|| sensitivity::figure8(&report.final_positions, 50))
    });
    group.finish();
}

/// §4.5.2: stablecoin stability scan.
fn bench_stablecoin_stability(c: &mut Criterion) {
    let report = shared_report();
    c.bench_function("stablecoin_stability", |b| {
        b.iter(|| {
            stablecoin::stablecoin_stability(
                &report.market_oracle,
                &[Token::DAI, Token::USDC, Token::USDT],
                report.config.start_block,
                report.snapshot_block,
                report.config.tick_blocks,
                0.05,
            )
        })
    });
}

/// Figure 9 / Table 8: profit–volume comparison.
fn bench_fig9_table8(c: &mut Criterion) {
    let report = shared_report();
    let records = collect_records(&report.chain, &report.market_oracle);
    let time_map = *report.chain.time_map();
    let mut group = c.benchmark_group("fig9_table8_profit_volume");
    group.bench_function("fig9_comparison", |b| {
        b.iter(|| profit_volume::figure9(&records, &report.volume_samples, &time_map))
    });
    group.bench_function("table8_monthly_counts", |b| {
        b.iter(|| profit_volume::table8(&records))
    });
    group.finish();
}

/// Table 7: post-liquidation price-movement classification.
fn bench_table7_price_movement(c: &mut Criterion) {
    let report = shared_report();
    let records = collect_records(&report.chain, &report.market_oracle);
    c.bench_function("table7_price_movements", |b| {
        b.iter(|| {
            price_movement::table7(
                &records,
                &report.market_oracle,
                1_440,
                report.config.tick_blocks,
            )
        })
    });
}

/// Tables 5–6 / §5.2: the optimal-strategy case study and the strategy math.
fn bench_table5_table6_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_table6_strategy");
    group.bench_function("case_study_closed_form", |b| {
        b.iter(|| run_case_study(&CaseStudyInput::default()))
    });
    let params = RiskParams::paper_example();
    group.bench_function("algorithm2_strategy_comparison", |b| {
        b.iter(|| StrategyComparison::evaluate(Wad::from_int(9_900), Wad::from_int(8_400), params))
    });
    group.finish();
}

/// Protocol substrate micro-benchmarks: a liquidation call on a populated pool.
fn bench_liquidation_call(c: &mut Criterion) {
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
    oracle.set_price(0, Token::USDC, Wad::ONE);

    c.bench_function("protocol_liquidation_call", |b| {
        b.iter_batched(
            || {
                // A fresh Compound pool with one liquidatable borrower.
                let mut protocol = compound();
                protocol.list_market(
                    Token::ETH,
                    RiskParams::new(0.8, 0.08, 0.5),
                    InterestRateModel::default(),
                    0,
                );
                let mut ledger = defi_chain::Ledger::new();
                let mut events = Vec::new();
                let lender = Address::from_seed(1);
                ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
                protocol
                    .deposit(
                        &mut ledger,
                        &mut events,
                        lender,
                        Token::USDC,
                        Wad::from_int(1_000_000),
                    )
                    .unwrap();
                let borrower = Address::from_seed(2);
                ledger.mint(borrower, Token::ETH, Wad::from_int(3));
                protocol
                    .deposit(
                        &mut ledger,
                        &mut events,
                        borrower,
                        Token::ETH,
                        Wad::from_int(3),
                    )
                    .unwrap();
                protocol
                    .borrow(
                        &mut ledger,
                        &mut events,
                        &oracle,
                        1,
                        borrower,
                        Token::USDC,
                        Wad::from_int(8_000),
                    )
                    .unwrap();
                let mut crash_oracle = oracle.clone();
                crash_oracle.set_price(2, Token::ETH, Wad::from_int(3_000));
                let liquidator = Address::from_seed(3);
                ledger.mint(liquidator, Token::USDC, Wad::from_int(10_000));
                (protocol, ledger, crash_oracle, borrower, liquidator)
            },
            |(mut protocol, mut ledger, crash_oracle, borrower, liquidator)| {
                let mut events = Vec::new();
                protocol
                    .liquidation_call(
                        &mut ledger,
                        &mut events,
                        &crash_oracle,
                        2,
                        liquidator,
                        borrower,
                        Token::USDC,
                        Token::ETH,
                        Wad::from_int(4_000),
                        false,
                    )
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// End-to-end: ticks per second of the simulation engine (drives every other
/// experiment's data generation).
fn bench_simulation_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_engine");
    group.sample_size(10);
    group.bench_function("smoke_scenario_full_run", |b| {
        b.iter(|| SimulationEngine::new(SimConfig::smoke_test(5)).run())
    });
    group.finish();
}

/// Session-loop throughput: the tick rate of the streaming run surface, with
/// and without the full analytics collector attached. The smoke scenario is
/// 333 ticks, so ticks/sec = 333 / (reported seconds per iteration). This is
/// the perf baseline future PRs compare against.
fn bench_session_loop(c: &mut Criterion) {
    use defi_analytics::StudyCollector;
    use defi_sim::NullObserver;

    let ticks = SimConfig::smoke_test(5).tick_count();
    let mut group = c.benchmark_group("session_loop");
    group.sample_size(10);
    group.bench_function(format!("null_observer_{ticks}_ticks"), |b| {
        b.iter(|| {
            SimulationEngine::new(SimConfig::smoke_test(5))
                .session()
                .run_to_end(&mut NullObserver)
                .unwrap()
        })
    });
    group.bench_function(format!("study_collector_{ticks}_ticks"), |b| {
        b.iter(|| {
            let mut collector = StudyCollector::new();
            let report = SimulationEngine::new(SimConfig::smoke_test(5))
                .session()
                .run_to_end(&mut collector)
                .unwrap();
            (collector.into_analysis(), report)
        })
    });
    group.finish();
}

/// Single-pass streaming analytics vs. the legacy run-then-rescan pipeline.
fn bench_streaming_vs_batch_analytics(c: &mut Criterion) {
    use defi_analytics::StudyAnalysis;

    let mut group = c.benchmark_group("study_pipeline");
    group.sample_size(10);
    group.bench_function("batch_run_then_from_report", |b| {
        b.iter(|| {
            let report = SimulationEngine::new(SimConfig::smoke_test(6)).run();
            StudyAnalysis::from_report(&report)
        })
    });
    group.bench_function("streaming_single_pass", |b| {
        b.iter(|| StudyAnalysis::stream(SimulationEngine::new(SimConfig::smoke_test(6))).unwrap())
    });
    group.finish();
}

/// A populated fixed-spread pool with `n` borrowers at staggered health
/// factors, plus the oracle it was built against — the synthetic book behind
/// the `positions-scale` group.
fn scale_fixed_spread_pool(
    n: u64,
) -> (
    defi_lending::FixedSpreadProtocol,
    defi_chain::Ledger,
    PriceOracle,
) {
    let mut protocol = compound();
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
    oracle.set_price(0, Token::USDC, Wad::ONE);
    oracle.set_price(0, Token::DAI, Wad::ONE);
    let mut ledger = defi_chain::Ledger::new();
    let mut events = Vec::new();
    let lender = Address::from_seed(1);
    let liquidity = Wad::from_int(n * 20_000 + 1_000_000);
    ledger.mint(lender, Token::USDC, liquidity);
    protocol
        .deposit(&mut ledger, &mut events, lender, Token::USDC, liquidity)
        .unwrap();
    for i in 0..n {
        let account = Address::from_seed(1_000 + i);
        let eth = Wad::from_f64(1.0 + (i % 50) as f64 * 0.1);
        ledger.mint(account, Token::ETH, eth);
        protocol
            .deposit(&mut ledger, &mut events, account, Token::ETH, eth)
            .unwrap();
        let capacity = protocol
            .position(&oracle, account)
            .map(|p| p.borrowing_capacity())
            .unwrap_or(Wad::ZERO);
        // Staggered usage: most borrowers comfortable, a thin tail close to
        // the threshold so small price moves flip a few per tick.
        let usage = 0.55 + (i % 89) as f64 * 0.005;
        let borrow = Wad::from_f64(capacity.to_f64() * usage.min(0.985));
        protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                account,
                Token::USDC,
                borrow,
            )
            .unwrap();
    }
    (protocol, ledger, oracle)
}

/// A Maker book with `n` CDPs at staggered collateralization.
fn scale_maker_pool(n: u64) -> (defi_lending::MakerProtocol, defi_chain::Ledger, PriceOracle) {
    use defi_lending::maker_protocol;
    let mut maker = maker_protocol();
    let mut oracle = PriceOracle::new(OracleConfig::every_update());
    oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
    oracle.set_price(0, Token::DAI, Wad::ONE);
    let mut ledger = defi_chain::Ledger::new();
    let mut events = Vec::new();
    for i in 0..n {
        let owner = Address::from_seed(500_000 + i);
        let eth = Wad::from_f64(1.0 + (i % 40) as f64 * 0.25);
        ledger.mint(owner, Token::ETH, eth);
        maker
            .lock_collateral(&mut ledger, &mut events, owner, Token::ETH, eth)
            .unwrap();
        // Collateralization between ~152 % and ~240 %.
        let ratio = 1.52 + (i % 89) as f64 * 0.01;
        let dai = Wad::from_f64(eth.to_f64() * 3_500.0 / ratio);
        maker
            .draw_dai(&mut ledger, &mut events, &oracle, owner, dai)
            .unwrap();
    }
    (maker, ledger, oracle)
}

/// The position work of one engine tick on a fixed-spread platform: accrue,
/// run the borrower-management pass over the *banded* at-risk iterator,
/// discover liquidatable positions, and — every `volume_sample_interval`
/// (10) ticks, as the engine does — take a volume sample from the running
/// totals (the sample pays the full lazy-stale drain). Exactly the calls
/// `SimulationEngine::tick` makes per platform.
fn fixed_spread_tick_work(
    protocol: &mut defi_lending::FixedSpreadProtocol,
    oracle: &PriceOracle,
    block: u64,
) -> usize {
    use defi_lending::LendingProtocol;
    LendingProtocol::accrue(protocol, block);
    // Borrower-management pass: only at-risk positions (HF below the rescue
    // band or above the releverage band) are read; quiet accounts whose
    // certified envelope holds are skipped without re-valuation.
    let mut actionable = 0usize;
    let rescue = Wad::from_f64(defi_lending::RESCUE_BAND_HF);
    let releverage = Wad::from_f64(defi_lending::RELEVERAGE_BAND_HF);
    LendingProtocol::for_each_at_risk(protocol, oracle, rescue, releverage, &mut |_position| {
        actionable += 1;
    });
    // Liquidation discovery.
    let opportunities = LendingProtocol::liquidatable(protocol, oracle).len();
    let mut out = actionable + opportunities;
    // Periodic volume sampling (Figures 4/9 denominators).
    if block.is_multiple_of(10) {
        let totals = LendingProtocol::book_totals(protocol, oracle);
        out += totals.collateral_usd.is_zero() as usize;
    }
    out
}

/// Incremental-book scale benchmarks: 1k/10k/100k-account books, driving the
/// exact per-tick position surface the engine uses. `BENCH_baseline.json`
/// tracks these numbers across PRs.
fn bench_positions_scale(c: &mut Criterion) {
    use defi_lending::LendingProtocol;

    let mut group = c.benchmark_group("positions_scale");
    group.sample_size(5);
    // Machine-record the host's parallelism next to the numbers: every
    // `BENCH_baseline.json` entry copies this into its "host" field as data
    // instead of a prose caveat.
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("bench host: {cpus} cpu(s)");
    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        let (mut protocol, _ledger, mut oracle) = scale_fixed_spread_pool(n);
        // The million-account row exercises the sharded parallel valuation
        // path: fan flush work across as many workers as the host offers
        // (clamped to the shard count; results are byte-identical either
        // way, which the band-differential harness proves).
        if n >= 1_000_000 {
            let workers = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            protocol.set_book_workers(workers);
        }
        let mut block = 10u64;
        // Warm: the first flush after pool construction values every account
        // exactly once; the row measures the steady-state incremental tick
        // (in `--test` quick mode criterion runs one iteration, unwarmed).
        fixed_spread_tick_work(&mut protocol, &oracle, block);
        group.bench_function(format!("fixed_spread_tick_{n}_accounts"), |b| {
            b.iter(|| {
                block += 1;
                // A small ETH move every tick, as a deviation-threshold write.
                let wiggle = 3_450.0 + (block % 7) as f64 * 2.0;
                oracle.set_price(block, Token::ETH, Wad::from_f64(wiggle));
                fixed_spread_tick_work(&mut protocol, &oracle, block)
            })
        });
        group.bench_function(
            format!("fixed_spread_noop_liquidatable_{n}_accounts"),
            |b| {
                // No price moved and no interest accrued since the last call:
                // discovery should not rebuild (or allocate) the book.
                b.iter(|| LendingProtocol::liquidatable(&mut protocol, &oracle).len())
            },
        );
        // Regression guard (runs in CI quick mode too): a no-op tick must
        // answer from the index, not rescan the book. Warm the cache first —
        // under a bench filter the timed bodies above may not have run.
        let _ = LendingProtocol::liquidatable(&mut protocol, &oracle);
        let before = protocol.book_stats().revaluations;
        let _ = LendingProtocol::liquidatable(&mut protocol, &oracle);
        let after = protocol.book_stats().revaluations;
        assert_eq!(
            before,
            after,
            "no-op liquidatable re-valued {} accounts instead of using the index",
            after - before
        );

        // Allocation audit (runs in CI quick mode too): after one full
        // wiggle cycle the reusable scratch buffers have reached their
        // high-water capacities — further warm ticks must not grow any of
        // them.
        let mut warm_tick = |protocol: &mut defi_lending::FixedSpreadProtocol, block: &mut u64| {
            *block += 1;
            let wiggle = 3_450.0 + (*block % 7) as f64 * 2.0;
            oracle.set_price(*block, Token::ETH, Wad::from_f64(wiggle));
            fixed_spread_tick_work(protocol, &oracle, *block);
        };
        for _ in 0..7 {
            warm_tick(&mut protocol, &mut block);
        }
        let grows_before = protocol.book_stats().scratch_grows;
        for _ in 0..7 {
            warm_tick(&mut protocol, &mut block);
        }
        let grows_after = protocol.book_stats().scratch_grows;
        assert_eq!(
            grows_before,
            grows_after,
            "warm ticks grew a scratch buffer {} time(s) — the tick hot loop is allocating",
            grows_after - grows_before
        );

        // The Maker CDP book stops at 100k: its range-scan discovery is the
        // same shape at every scale and the 1M row is about the fixed-spread
        // sharded flush path.
        if n >= 1_000_000 {
            continue;
        }

        let (mut maker, _ledger, mut maker_oracle) = scale_maker_pool(n);
        let mut maker_block = 10u64;
        group.bench_function(format!("maker_discovery_{n}_accounts"), |b| {
            b.iter(|| {
                maker_block += 1;
                let wiggle = 3_430.0 + (maker_block % 9) as f64 * 3.0;
                maker_oracle.set_price(maker_block, Token::ETH, Wad::from_f64(wiggle));
                LendingProtocol::liquidatable(&mut maker, &maker_oracle).len()
            })
        });
        // Regression guard: CDP discovery must be a range scan — a price
        // move that crosses nobody re-values nobody. The first call warms
        // the cache (the timed bodies above may be filtered out).
        maker_block += 1;
        maker_oracle.set_price(maker_block, Token::ETH, Wad::from_int(3_500));
        let _ = LendingProtocol::liquidatable(&mut maker, &maker_oracle);
        let before = maker.book_stats().revaluations;
        maker_oracle.set_price(maker_block + 1, Token::ETH, Wad::from_int(3_499));
        let _ = LendingProtocol::liquidatable(&mut maker, &maker_oracle);
        let after = maker.book_stats().revaluations;
        assert_eq!(
            before,
            after,
            "a non-crossing price move re-valued {} CDPs instead of range-scanning",
            after - before
        );

        // Regression guard (quick mode too): a *crossing* move refreshes
        // exactly the crossed CDPs, and every refresh is served by the
        // term/light cache paths — full `fill_position` rebuilds inside
        // Maker discovery are the regression this guards against.
        let stats_before = maker.book_stats();
        maker_oracle.set_price(maker_block + 2, Token::ETH, Wad::from_int(3_430));
        let _ = LendingProtocol::liquidatable(&mut maker, &maker_oracle);
        let stats_after = maker.book_stats();
        let revalued = stats_after.revaluations - stats_before.revaluations;
        let termed = stats_after.term_reprices - stats_before.term_reprices;
        let lighted = stats_after.light_refreshes - stats_before.light_refreshes;
        assert!(
            revalued > 0,
            "the crossing move should refresh crossed CDPs"
        );
        assert_eq!(
            revalued,
            termed + lighted,
            "{} crossed CDPs took the full rebuild path instead of a cached refresh",
            revalued - termed - lighted
        );
    }
    group.finish();
}

/// Conservative HF band index: per-tick cost when only interest accrues (no
/// price move) and when prices wiggle inside most certified envelopes. The
/// in-bench assertions are the CI regression guard (quick mode runs them
/// too): an accrual-only tick must re-value strictly fewer accounts than the
/// book holds, and envelope skips must actually be happening — a band-index
/// regression fails the job instead of showing up as a slower number.
fn bench_band_index(c: &mut Criterion) {
    use defi_lending::LendingProtocol;

    let mut group = c.benchmark_group("band_index");
    group.sample_size(5);
    let rescue = Wad::from_f64(defi_lending::RESCUE_BAND_HF);
    let releverage = Wad::from_f64(defi_lending::RELEVERAGE_BAND_HF);
    for n in [1_000u64, 10_000] {
        let (mut protocol, _ledger, mut oracle) = scale_fixed_spread_pool(n);
        // Warm the cache: classify and certify every account once.
        let _ = LendingProtocol::liquidatable(&mut protocol, &oracle);
        LendingProtocol::for_each_at_risk(&mut protocol, &oracle, rescue, releverage, &mut |_| {});
        // Markets are listed at the platform's inception block, so accrual
        // only runs for blocks beyond it.
        let mut block = 7_800_000u64;
        group.bench_function(format!("accrual_only_tick_{n}_accounts"), |b| {
            b.iter(|| {
                block += 1;
                LendingProtocol::accrue(&mut protocol, block);
                let mut at_risk = 0usize;
                LendingProtocol::for_each_at_risk(
                    &mut protocol,
                    &oracle,
                    rescue,
                    releverage,
                    &mut |_| at_risk += 1,
                );
                at_risk + LendingProtocol::liquidatable(&mut protocol, &oracle).len()
            })
        });

        // Regression guard: an accrual-only tick is absorbed by the index
        // caps for the bulk of the book.
        block += 1;
        LendingProtocol::accrue(&mut protocol, block);
        let before = protocol.book_stats();
        let mut at_risk = 0usize;
        LendingProtocol::for_each_at_risk(&mut protocol, &oracle, rescue, releverage, &mut |_| {
            at_risk += 1
        });
        let _ = LendingProtocol::liquidatable(&mut protocol, &oracle);
        let after = protocol.book_stats();
        let revalued = after.revaluations - before.revaluations;
        assert!(
            (revalued as usize) < after.cached_accounts,
            "accrual-only tick re-valued {revalued} of {} accounts — the band index absorbed nothing",
            after.cached_accounts
        );
        assert!(
            after.envelope_skips > before.envelope_skips,
            "no envelope held the measured accrual move"
        );
        assert!(after.banded_accounts > 0, "no account was ever certified");

        group.bench_function(format!("price_wiggle_discovery_{n}_accounts"), |b| {
            b.iter(|| {
                block += 1;
                let wiggle = 3_450.0 + (block % 7) as f64 * 2.0;
                oracle.set_price(block, Token::ETH, Wad::from_f64(wiggle));
                let mut at_risk = 0usize;
                LendingProtocol::for_each_at_risk(
                    &mut protocol,
                    &oracle,
                    rescue,
                    releverage,
                    &mut |_| at_risk += 1,
                );
                at_risk + LendingProtocol::liquidatable(&mut protocol, &oracle).len()
            })
        });
    }
    group.finish();
}

/// Baseline comparison for the mechanism-comparison experiment: close-factor
/// ablation (50 % vs 100 % vs the optimal strategy) on a fixed position.
fn bench_close_factor_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_close_factor");
    let collateral = Wad::from_int(9_900);
    let debt = Wad::from_int(8_400);
    for close_factor in [0.25, 0.5, 1.0] {
        let params = RiskParams::new(0.8, 0.1, close_factor);
        group.bench_function(format!("strategy_cf_{close_factor}"), |b| {
            b.iter(|| StrategyComparison::evaluate(collateral, debt, params))
        });
    }
    group.finish();
}

/// Journal subsystem: the write-side tax on the session loop (the recording
/// overhead budget is <5% over a plain run — the measured pair is recorded
/// in `BENCH_baseline.json`) and replay throughput from a pre-recorded
/// journal through the full analytics collector.
fn bench_journal(c: &mut Criterion) {
    use defi_analytics::StudyAnalysis;
    use defi_journal::{JournalReader, JournalWriter};
    use defi_sim::NullObserver;

    let ticks = SimConfig::smoke_test(5).tick_count();
    let mut group = c.benchmark_group("journal");
    group.sample_size(10);

    let dir = std::env::temp_dir().join("djrn-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");

    group.bench_function(format!("plain_session_loop_{ticks}_ticks"), |b| {
        b.iter(|| {
            SimulationEngine::new(SimConfig::smoke_test(5))
                .session()
                .run_to_end(&mut NullObserver)
                .unwrap()
        })
    });

    let write_path = dir.join("bench-write.jrn");
    group.bench_function(format!("journaled_session_loop_{ticks}_ticks"), |b| {
        b.iter(|| {
            let mut writer = JournalWriter::create(&write_path).unwrap();
            let report = SimulationEngine::new(SimConfig::smoke_test(5))
                .session()
                .run_to_end(&mut writer)
                .unwrap();
            writer.finish().unwrap();
            report
        })
    });

    // Replay throughput: decode a pre-recorded smoke journal and drive the
    // full StudyCollector pipeline from it. In CI's `--test` quick mode the
    // single iteration doubles as a structural check: the recording must
    // reach its run end and produce a non-empty analysis.
    let recorded = dir.join("bench-replay.jrn");
    let mut writer = JournalWriter::create(&recorded).unwrap();
    let (live, _) =
        StudyAnalysis::stream_with(SimulationEngine::new(SimConfig::smoke_test(5)), &mut writer)
            .unwrap();
    writer.finish().unwrap();
    group.bench_function(format!("replay_to_analysis_{ticks}_ticks"), |b| {
        b.iter(|| {
            let reader = JournalReader::open(&recorded).unwrap();
            let replayed = StudyAnalysis::from_replay(|observer| reader.replay(observer))
                .unwrap()
                .expect("recording reaches its run end");
            assert_eq!(
                defi_bench::render::render_headline(&replayed),
                defi_bench::render::render_headline(&live),
                "replayed analysis diverged from the live run"
            );
            replayed
        })
    });
    group.finish();
}

fn bench_platform_books(c: &mut Criterion) {
    // Building position snapshots is the hot path of the measurement loop.
    let report = shared_report();
    c.bench_function("platform_position_books", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for positions in report.final_positions.values() {
                total += positions.len();
            }
            let _ = BTreeMap::from([(Platform::Compound, total)]);
            total
        })
    });
}

criterion_group!(
    benches,
    bench_overall,
    bench_fig6_gas,
    bench_fig7_auctions,
    bench_table2_table3,
    bench_table4_flash_loans,
    bench_fig8_sensitivity,
    bench_stablecoin_stability,
    bench_fig9_table8,
    bench_table7_price_movement,
    bench_table5_table6_strategy,
    bench_liquidation_call,
    bench_simulation_ticks,
    bench_session_loop,
    bench_streaming_vs_batch_analytics,
    bench_close_factor_ablation,
    bench_platform_books,
    bench_positions_scale,
    bench_band_index,
    bench_journal,
);
criterion_main!(benches);
