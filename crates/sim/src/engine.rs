//! The simulation engine: drives the price scenario, the chain, the protocol
//! implementations and the agent populations through the study window, and
//! hands the resulting observable surface (events, gas, positions, volumes)
//! to the analytics crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

use defi_amm::Dex;
use defi_chain::{
    mempool::BackgroundDemand, AuctionId, Blockchain, ChainConfig, GweiPrice,
};
use defi_core::mechanism::AuctionParams;
use defi_core::position::Position;
use defi_lending::{
    aave_v1, aave_v2, compound, dydx, maker_protocol, FixedSpreadProtocol, FlashLoanPool,
    MakerProtocol,
};
use defi_oracle::{MarketScenario, OracleConfig, PriceOracle, ScenarioEvent};
use defi_types::{Address, BlockNumber, Platform, Token, Wad};

use crate::agents::{
    sample_borrower, sample_keepers, sample_liquidators, BorrowerAgent, KeeperAgent,
    LiquidatorAgent,
};
use crate::config::SimConfig;

/// Gas consumed by a fixed-spread liquidation call (roughly what mainnet
/// liquidation transactions use).
const LIQUIDATION_GAS: u64 = 500_000;
/// Gas consumed by an auction bid / bite / deal.
const AUCTION_GAS: u64 = 180_000;
/// Gas consumed by ordinary user operations (deposit/borrow/repay).
const USER_OP_GAS: u64 = 250_000;

/// A periodic sample of collateral volume, used for Figures 4/9 denominators.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VolumeSample {
    /// Block of the sample.
    pub block: BlockNumber,
    /// Platform.
    pub platform: Platform,
    /// Total USD value of collateral backing *borrowing* positions.
    pub total_collateral_usd: Wad,
    /// USD value of ETH collateral backing DAI-debt positions (the DAI/ETH
    /// market the §5.1 comparison is restricted to).
    pub dai_eth_collateral_usd: Wad,
    /// Number of open borrowing positions.
    pub open_positions: u32,
}

/// Everything the analytics layer needs after a run.
#[derive(Debug)]
pub struct SimulationReport {
    /// The scenario configuration that produced the run.
    pub config: SimConfig,
    /// The chain: event log, gas history, block headers.
    pub chain: Blockchain,
    /// The "true" market price history (written every tick).
    pub market_oracle: PriceOracle,
    /// Each platform's own oracle (what its contracts actually saw).
    pub platform_oracles: BTreeMap<Platform, PriceOracle>,
    /// Periodic collateral-volume samples.
    pub volume_samples: Vec<VolumeSample>,
    /// Position books at the end of the run (the snapshot-block state used by
    /// Tables 2–3 and Figure 8).
    pub final_positions: BTreeMap<Platform, Vec<Position>>,
    /// The block of the final snapshot.
    pub snapshot_block: BlockNumber,
}

/// The simulation engine.
pub struct SimulationEngine {
    config: SimConfig,
    rng: StdRng,
    chain: Blockchain,
    scenario: MarketScenario,
    market_oracle: PriceOracle,
    oracles: BTreeMap<Platform, PriceOracle>,
    dex: Dex,
    flash_pools: BTreeMap<Platform, FlashLoanPool>,
    fixed: BTreeMap<Platform, FixedSpreadProtocol>,
    maker: MakerProtocol,
    borrowers: Vec<BorrowerAgent>,
    liquidators: Vec<LiquidatorAgent>,
    keepers: Vec<KeeperAgent>,
    borrower_counter: HashMap<Platform, u64>,
    /// Active platform-specific oracle irregularities:
    /// (platform, token, multiplier, last block).
    irregularities: Vec<(Platform, Token, f64, BlockNumber)>,
    volume_samples: Vec<VolumeSample>,
    maker_params_switched: bool,
    /// Auctions the engine has already seen (to pace bidding).
    auction_seen: HashMap<AuctionId, BlockNumber>,
    tick_index: u64,
}

impl SimulationEngine {
    /// Build an engine from a configuration, seeding pools and populations.
    pub fn new(config: SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut chain_config = ChainConfig::default();
        chain_config.start_block = config.start_block;
        let mut chain = Blockchain::new(chain_config);

        let scenario = MarketScenario::paper_two_year(config.seed ^ 0xfeed);
        let market_oracle = PriceOracle::new(OracleConfig::every_update());

        // Per-platform oracles: Chainlink-style deviation/heartbeat policies.
        let mut oracles = BTreeMap::new();
        for platform in Platform::ALL {
            oracles.insert(platform, PriceOracle::new(OracleConfig::default()));
        }

        // Protocols.
        let mut fixed = BTreeMap::new();
        fixed.insert(Platform::AaveV1, aave_v1());
        fixed.insert(Platform::AaveV2, aave_v2());
        fixed.insert(Platform::Compound, compound());
        fixed.insert(Platform::DyDx, dydx());
        let maker = maker_protocol();

        // Flash-loan pools (Aave V1/V2 and dYdX act as flash pools, Table 4).
        let mut flash_pools = BTreeMap::new();
        for platform in [Platform::AaveV1, Platform::AaveV2, Platform::DyDx] {
            let pool = FlashLoanPool::for_platform(platform);
            for token in [Token::DAI, Token::USDC, Token::USDT, Token::ETH] {
                pool.seed(chain.ledger_mut(), token, Wad::from_int(500_000_000));
            }
            flash_pools.insert(platform, pool);
        }

        // A deep DEX so flash-loan liquidators can unwind collateral.
        let mut dex = Dex::new();
        {
            let ledger = chain.ledger_mut();
            dex.seed_standard_pool(ledger, Token::ETH, 170.0, Token::DAI, 1.0, 400_000_000.0);
            dex.seed_standard_pool(ledger, Token::ETH, 170.0, Token::USDC, 1.0, 400_000_000.0);
            dex.seed_standard_pool(ledger, Token::ETH, 170.0, Token::USDT, 1.0, 200_000_000.0);
            dex.seed_standard_pool(ledger, Token::WBTC, 5_300.0, Token::ETH, 170.0, 200_000_000.0);
        }

        // Agent populations.
        let mut liquidators = Vec::new();
        for population in &config.populations {
            if population.platform == Platform::MakerDao {
                continue;
            }
            liquidators.extend(sample_liquidators(
                &mut rng,
                population,
                config.stale_bot_share,
                config.flash_loan_probability,
            ));
        }
        let keeper_count = config
            .population(Platform::MakerDao)
            .map(|p| p.liquidator_count)
            .unwrap_or(4);
        let keepers = sample_keepers(&mut rng, keeper_count, config.stale_bot_share);

        SimulationEngine {
            rng,
            chain,
            scenario,
            market_oracle,
            oracles,
            dex,
            flash_pools,
            fixed,
            maker,
            borrowers: Vec::new(),
            liquidators,
            keepers,
            borrower_counter: HashMap::new(),
            irregularities: Vec::new(),
            volume_samples: Vec::new(),
            maker_params_switched: false,
            auction_seen: HashMap::new(),
            tick_index: 0,
            config,
        }
    }

    /// Run the configured scenario to completion and return the report.
    pub fn run(mut self) -> SimulationReport {
        self.seed_initial_prices();
        self.seed_pool_liquidity();

        let mut block = self.config.start_block;
        while block < self.config.end_block {
            block += self.config.tick_blocks;
            self.tick(block);
            self.tick_index += 1;
        }

        let snapshot_block = self.chain.current_block();
        let mut final_positions = BTreeMap::new();
        for (platform, protocol) in &self.fixed {
            let oracle = &self.oracles[platform];
            final_positions.insert(*platform, borrower_positions(protocol.positions(oracle)));
        }
        final_positions.insert(
            Platform::MakerDao,
            self.maker.positions(&self.oracles[&Platform::MakerDao]),
        );

        SimulationReport {
            config: self.config,
            chain: self.chain,
            market_oracle: self.market_oracle,
            platform_oracles: self.oracles,
            volume_samples: self.volume_samples,
            final_positions,
            snapshot_block,
        }
    }

    // ------------------------------------------------------------------ setup

    fn seed_initial_prices(&mut self) {
        let block = self.config.start_block;
        let updates = self.scenario.advance(block);
        for (token, price) in &updates {
            self.market_oracle.set_price(block, *token, *price);
            for oracle in self.oracles.values_mut() {
                oracle.set_price(block, *token, *price);
            }
        }
    }

    /// Genesis lenders deposit deep liquidity in every fixed-spread market so
    /// borrowers can actually borrow.
    fn seed_pool_liquidity(&mut self) {
        let block = self.config.start_block;
        let chain = &mut self.chain;
        for (platform, protocol) in self.fixed.iter_mut() {
            let oracle = &self.oracles[platform];
            let lender = Address::from_label(&format!("genesis-lender-{}", platform.name()));
            let tokens: Vec<Token> = protocol.markets().map(|m| m.token).collect();
            for token in tokens {
                let price = oracle.price_or_zero(token).to_f64().max(1e-9);
                // 400M USD of depth per market.
                let amount = Wad::from_f64(400_000_000.0 / price);
                chain.fund(lender, token, amount);
                let outcome = chain.execute(lender, 20, USER_OP_GAS, "genesis-deposit", |ctx| {
                    protocol
                        .deposit(ctx.ledger, ctx.events, lender, token, amount)
                        .map_err(|e| e.to_string())
                });
                debug_assert!(outcome.is_success(), "genesis deposit failed");
            }
            let _ = block;
        }
    }

    // ------------------------------------------------------------------- tick

    fn tick(&mut self, block: BlockNumber) {
        self.update_prices(block);
        let congested = self.chain.gas_market().is_congested(block);
        self.chain.advance_to(block, if congested { 5_000 } else { 50 });

        self.maybe_switch_maker_params(block);
        self.spawn_borrowers(block);
        self.accrue_protocols(block);
        self.manage_and_liquidate_fixed_spread(block, congested);
        self.run_maker_keepers(block, congested);

        if self.tick_index % self.config.insurance_writeoff_interval.max(1) == 0 {
            let oracle = &self.oracles[&Platform::DyDx];
            if let Some(protocol) = self.fixed.get_mut(&Platform::DyDx) {
                protocol.write_off_insolvent_positions(oracle);
            }
        }
        if self.tick_index % self.config.volume_sample_interval.max(1) == 0 {
            self.sample_volumes(block);
        }
    }

    fn update_prices(&mut self, block: BlockNumber) {
        let previous_block = block.saturating_sub(self.config.tick_blocks);
        let updates = self.scenario.advance(block);

        // New scripted irregularities starting this tick.
        for event in self.scenario.events_between(previous_block, block) {
            match event {
                ScenarioEvent::OracleIrregularity {
                    block: start,
                    platform,
                    token,
                    price_multiplier,
                    duration_blocks,
                } => {
                    self.irregularities
                        .push((platform, token, price_multiplier, start + duration_blocks));
                }
            }
        }
        self.irregularities.retain(|(_, _, _, end)| *end >= block);

        for (token, price) in &updates {
            self.market_oracle.set_price(block, *token, *price);
            for (platform, oracle) in self.oracles.iter_mut() {
                let multiplier = self
                    .irregularities
                    .iter()
                    .find(|(p, t, _, _)| p == platform && t == token)
                    .map(|(_, _, m, _)| *m)
                    .unwrap_or(1.0);
                let effective = if (multiplier - 1.0).abs() > 1e-9 {
                    Wad::from_f64(price.to_f64() * multiplier)
                } else {
                    *price
                };
                if (multiplier - 1.0).abs() > 1e-9 {
                    // Irregular prices are pushed unconditionally (they came
                    // from a signed off-chain message, as on Compound).
                    oracle.set_price(block, *token, effective);
                } else {
                    oracle.observe(block, *token, effective);
                }
            }
        }
    }

    fn maybe_switch_maker_params(&mut self, block: BlockNumber) {
        if !self.maker_params_switched && block >= self.config.maker_param_change_block {
            self.maker
                .set_auction_params(AuctionParams::maker_post_march_2020());
            self.maker_params_switched = true;
        }
    }

    fn accrue_protocols(&mut self, block: BlockNumber) {
        for protocol in self.fixed.values_mut() {
            protocol.accrue_all(block);
        }
    }

    fn progress(&self, block: BlockNumber) -> f64 {
        let span = (self.config.end_block - self.config.start_block).max(1) as f64;
        ((block - self.config.start_block) as f64 / span).clamp(0.0, 1.0)
    }

    // -------------------------------------------------------------- borrowers

    fn platform_inception(&self, platform: Platform) -> BlockNumber {
        platform.inception_block()
    }

    fn spawn_borrowers(&mut self, block: BlockNumber) {
        let progress = self.progress(block);
        let populations = self.config.populations.clone();
        for population in &populations {
            let platform = population.platform;
            if block < self.platform_inception(platform) {
                continue;
            }
            // Aave V1 stops growing once V2 launches (liquidity migrated).
            let mut rate = population.borrower_arrival_rate * (0.10 + 0.90 * progress);
            if platform == Platform::AaveV1 && block >= Platform::AaveV2.inception_block() {
                rate *= 0.1;
            }
            let active = self
                .borrowers
                .iter()
                .filter(|b| b.platform == platform && !b.retired)
                .count();
            if active >= population.max_borrowers {
                continue;
            }
            let arrivals = if self.rng.gen_bool(rate.fract().clamp(0.0, 1.0)) {
                rate.trunc() as usize + 1
            } else {
                rate.trunc() as usize
            };
            for _ in 0..arrivals {
                let counter = self.borrower_counter.entry(platform).or_insert(0);
                *counter += 1;
                let index = *counter;
                let eth_heavy = self.rng.gen_bool(0.5);
                let borrower = sample_borrower(&mut self.rng, population, index, eth_heavy);
                if self.open_position_for(&borrower, block) {
                    self.borrowers.push(borrower);
                }
            }
        }
    }

    /// Open the borrower's position on-chain; returns false if it failed
    /// (e.g. the platform lacks liquidity for the debt token).
    fn open_position_for(&mut self, borrower: &BorrowerAgent, _block: BlockNumber) -> bool {
        let platform = borrower.platform;
        let gas = self.chain.gas_market_mut().competitive_bid(0.0);
        match platform {
            Platform::MakerDao => {
                let oracle = &self.oracles[&platform];
                let token = borrower.collateral_tokens[0];
                let price = oracle.price_or_zero(token).to_f64().max(1e-9);
                let collateral_amount = Wad::from_f64(borrower.collateral_value_usd / price);
                // Respect the 150% liquidation ratio with the agent's chosen buffer.
                let ratio = self
                    .maker
                    .ilk(token)
                    .map(|i| i.liquidation_ratio.to_f64())
                    .unwrap_or(1.5);
                let target = (ratio * borrower.target_collateralization).max(ratio * 1.02);
                let debt = Wad::from_f64(borrower.collateral_value_usd / target);
                self.chain.fund(borrower.address, token, collateral_amount);
                let maker = &mut self.maker;
                let oracle = &self.oracles[&platform];
                let address = borrower.address;
                let outcome = self.chain.execute(address, gas, USER_OP_GAS, "open-cdp", |ctx| {
                    maker
                        .lock_collateral(ctx.ledger, ctx.events, address, token, collateral_amount)
                        .map_err(|e| e.to_string())?;
                    maker
                        .draw_dai(ctx.ledger, ctx.events, oracle, address, debt)
                        .map_err(|e| e.to_string())
                });
                outcome.is_success()
            }
            _ => {
                let Some(protocol) = self.fixed.get_mut(&platform) else {
                    return false;
                };
                let oracle = &self.oracles[&platform];
                let address = borrower.address;
                // Fund and deposit each collateral token (split the value evenly).
                let share = borrower.collateral_value_usd / borrower.collateral_tokens.len() as f64;
                let mut deposits = Vec::new();
                for &token in &borrower.collateral_tokens {
                    let price = oracle.price_or_zero(token).to_f64().max(1e-9);
                    let amount = Wad::from_f64(share / price);
                    self.chain.fund(address, token, amount);
                    deposits.push((token, amount));
                }
                let debt_price = oracle.price_or_zero(borrower.debt_token).to_f64().max(1e-9);
                let desired_debt_usd =
                    borrower.collateral_value_usd / borrower.target_collateralization.max(1.05);
                let chain = &mut self.chain;
                let outcome = chain.execute(address, gas, USER_OP_GAS, "open-position", |ctx| {
                    for (token, amount) in &deposits {
                        protocol
                            .deposit(ctx.ledger, ctx.events, address, *token, *amount)
                            .map_err(|e| e.to_string())?;
                    }
                    // Cap the borrow just under the borrowing capacity.
                    let capacity = protocol
                        .position(oracle, address)
                        .map(|p| p.borrowing_capacity())
                        .unwrap_or(Wad::ZERO);
                    let borrow_usd = Wad::from_f64(desired_debt_usd)
                        .min(capacity.checked_mul(Wad::from_f64(0.985)).unwrap_or(capacity));
                    let amount = Wad::from_f64(borrow_usd.to_f64() / debt_price);
                    if amount.is_zero() {
                        return Err("zero borrow".to_string());
                    }
                    protocol
                        .borrow(ctx.ledger, ctx.events, oracle, ctx.block, address, borrower.debt_token, amount)
                        .map_err(|e| e.to_string())
                });
                outcome.is_success()
            }
        }
    }

    // --------------------------------------------- fixed-spread liquidations

    fn manage_and_liquidate_fixed_spread(&mut self, block: BlockNumber, congested: bool) {
        let platforms: Vec<Platform> = self.fixed.keys().copied().collect();
        let eth_price = self.market_oracle.price_or_zero(Token::ETH).to_f64();
        for platform in platforms {
            let positions = {
                let protocol = &self.fixed[&platform];
                let oracle = &self.oracles[&platform];
                borrower_positions(protocol.positions(oracle))
            };
            for position in positions {
                let Some(hf) = position.health_factor() else {
                    continue;
                };
                if hf >= Wad::ONE {
                    // Near-liquidation active management.
                    if hf < Wad::from_f64(1.05) {
                        self.maybe_manage_position(platform, &position, block, congested);
                    } else if hf > Wad::from_f64(2.2) {
                        // Collateral appreciated well beyond the borrower's
                        // target: many borrowers re-leverage, which is what
                        // keeps the aggregate book sensitive to price declines
                        // (Figure 8) throughout the bull market.
                        self.maybe_releverage_position(platform, &position, block);
                    }
                    continue;
                }
                self.attempt_liquidation(platform, &position, block, congested, eth_price);
            }
        }
    }

    /// A borrower whose collateral has appreciated far beyond their target
    /// borrows more against it (with some probability per tick), restoring a
    /// riskier health factor.
    fn maybe_releverage_position(
        &mut self,
        platform: Platform,
        position: &Position,
        _block: BlockNumber,
    ) {
        if !self.rng.gen_bool(0.10) {
            return;
        }
        let Some(agent) = self
            .borrowers
            .iter()
            .find(|b| b.address == position.owner && b.platform == platform)
        else {
            return;
        };
        if agent.retired {
            return;
        }
        let address = agent.address;
        let debt_token = agent.debt_token;
        let oracle = &self.oracles[&platform];
        let debt_price = oracle.price_or_zero(debt_token).to_f64().max(1e-9);
        // Borrow back up to ~80% of the borrowing capacity.
        let capacity = position.borrowing_capacity().to_f64();
        let current_debt = position.total_debt_value().to_f64();
        let target_debt = capacity * self.rng.gen_range(0.60..0.85);
        if target_debt <= current_debt {
            return;
        }
        let amount = Wad::from_f64((target_debt - current_debt) / debt_price);
        let gas = self.chain.gas_market_mut().competitive_bid(0.1);
        let Some(protocol) = self.fixed.get_mut(&platform) else {
            return;
        };
        let chain = &mut self.chain;
        chain.execute(address, gas, USER_OP_GAS, "re-leverage", |ctx| {
            protocol
                .borrow(ctx.ledger, ctx.events, oracle, ctx.block, address, debt_token, amount)
                .map(|_| ())
                .map_err(|e| e.to_string())
        });
    }

    /// An active borrower tops up collateral (or repays) when the position is
    /// close to liquidation; under congestion most such rescue transactions
    /// do not make it in time.
    fn maybe_manage_position(
        &mut self,
        platform: Platform,
        position: &Position,
        _block: BlockNumber,
        congested: bool,
    ) {
        let Some(agent) = self
            .borrowers
            .iter()
            .find(|b| b.address == position.owner && b.platform == platform)
        else {
            return;
        };
        if !agent.active_manager || agent.retired {
            return;
        }
        let rescue_probability = if congested { 0.15 } else { 0.70 };
        if !self.rng.gen_bool(rescue_probability) {
            return;
        }
        let address = agent.address;
        let debt_token = agent.debt_token;
        let gas = self.chain.gas_market_mut().competitive_bid(0.2);
        // Repay ~25% of the outstanding debt with fresh external funds.
        let repay_usd = position.total_debt_value().to_f64() * 0.25;
        let oracle = &self.oracles[&platform];
        let debt_price = oracle.price_or_zero(debt_token).to_f64().max(1e-9);
        let amount = Wad::from_f64(repay_usd / debt_price);
        self.chain.fund(address, debt_token, amount);
        let Some(protocol) = self.fixed.get_mut(&platform) else {
            return;
        };
        let chain = &mut self.chain;
        chain.execute(address, gas, USER_OP_GAS, "rescue-repay", |ctx| {
            protocol
                .repay(ctx.ledger, ctx.events, ctx.block, address, debt_token, amount)
                .map(|_| ())
                .map_err(|e| e.to_string())
        });
    }

    fn attempt_liquidation(
        &mut self,
        platform: Platform,
        position: &Position,
        block: BlockNumber,
        congested: bool,
        eth_price: f64,
    ) {
        // Choose a liquidator covering this platform.
        let candidates: Vec<usize> = self
            .liquidators
            .iter()
            .enumerate()
            .filter(|(_, l)| l.platforms.contains(&platform))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let liquidator = self.liquidators[candidates[self.rng.gen_range(0..candidates.len())]].clone();

        // Seize the most valuable collateral, repay the largest debt.
        let Some(collateral) = position
            .collateral
            .iter()
            .max_by_key(|c| c.value_usd)
            .copied()
        else {
            return;
        };
        let Some(debt) = position.debt.iter().max_by_key(|d| d.value_usd).copied() else {
            return;
        };

        let close_factor = self.fixed[&platform].config().close_factor;
        let repay_amount = debt.amount.checked_mul(close_factor).unwrap_or(Wad::ZERO);
        let repay_usd = debt.value_usd.checked_mul(close_factor).unwrap_or(Wad::ZERO);
        let expected_bonus = repay_usd
            .checked_mul(collateral.liquidation_spread)
            .unwrap_or(Wad::ZERO);

        // Gas bidding: competitive unless the bot is stale under congestion.
        // A minority of bots bid frugally below the prevailing median even in
        // calm conditions, which is what puts some liquidations below the
        // average line in Figure 6.
        let frugal = self.rng.gen_bool(0.25);
        let gas_price: GweiPrice = if congested && liquidator.stale_under_congestion {
            self.chain.gas_market_mut().passive_bid(0.4)
        } else if frugal {
            let discount = self.rng.gen_range(0.05..0.35);
            self.chain.gas_market_mut().passive_bid(discount)
        } else {
            self.chain
                .gas_market_mut()
                .competitive_bid(liquidator.gas_aggressiveness)
        };
        // Inclusion against background demand.
        let median = self.chain.median_gas_price() as f64;
        let demand = if congested {
            BackgroundDemand::congested(median)
        } else {
            BackgroundDemand::calm(median)
        };
        let limit = self.chain.gas_market().block_gas_limit();
        let included =
            demand.gas_above(gas_price, limit) + LIQUIDATION_GAS as f64 <= limit as f64;
        if !included {
            return;
        }
        // Profitability check (§4.4.3): the bonus must cover the transaction fee.
        let fee_usd = gas_price as f64 * LIQUIDATION_GAS as f64 * 1e-9 * eth_price;
        if expected_bonus.to_f64() <= fee_usd {
            return;
        }

        let use_flash = liquidator.uses_flash_loans
            && self.rng.gen_bool(0.75)
            && matches!(debt.token, Token::DAI | Token::USDC | Token::USDT | Token::ETH);

        let borrower = position.owner;
        let oracle = &self.oracles[&platform];
        let protocol = self.fixed.get_mut(&platform).expect("platform exists");
        let dex = &mut self.dex;
        let flash_pool = self.flash_pools.get(&liquidator.flash_loan_pool).copied();
        let chain = &mut self.chain;

        if !use_flash {
            // Inventory-funded liquidation: the bot holds the debt asset.
            chain.fund(liquidator.address, debt.token, repay_amount);
        }

        chain.execute(liquidator.address, gas_price, LIQUIDATION_GAS, "liquidation", |ctx| {
            if let (true, Some(pool)) = (use_flash, flash_pool) {
                let mut seized: Option<(Token, Wad)> = None;
                pool.flash_loan(
                    ctx.ledger,
                    ctx.events,
                    oracle,
                    liquidator.address,
                    debt.token,
                    repay_amount,
                    |ledger, events| {
                        let receipt = protocol.liquidation_call(
                            ledger,
                            events,
                            oracle,
                            block,
                            liquidator.address,
                            borrower,
                            debt.token,
                            collateral.token,
                            repay_amount,
                            true,
                        )?;
                        seized = Some((collateral.token, receipt.collateral_seized));
                        // Unwind the seized collateral into the debt asset to
                        // repay the flash loan.
                        if collateral.token != debt.token {
                            if let Some((token, amount)) = seized {
                                dex.swap(ledger, liquidator.address, token, debt.token, amount)
                                    .map_err(|e| {
                                        defi_lending::ProtocolError::Ledger(e.to_string())
                                    })?;
                            }
                        }
                        Ok(())
                    },
                )
                .map_err(|e| e.to_string())
            } else {
                protocol
                    .liquidation_call(
                        ctx.ledger,
                        ctx.events,
                        oracle,
                        block,
                        liquidator.address,
                        borrower,
                        debt.token,
                        collateral.token,
                        repay_amount,
                        false,
                    )
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
        });
    }

    // ------------------------------------------------------------ MakerDAO

    fn run_maker_keepers(&mut self, block: BlockNumber, congested: bool) {
        let oracle_price = |oracles: &BTreeMap<Platform, PriceOracle>, token: Token| {
            oracles[&Platform::MakerDao].price_or_zero(token)
        };

        // 1. Bite liquidatable CDPs.
        let liquidatable = self
            .maker
            .liquidatable_cdps(&self.oracles[&Platform::MakerDao]);
        for borrower in liquidatable {
            let keeper = self.keepers[self.rng.gen_range(0..self.keepers.len())].clone();
            if congested && keeper.stale_under_congestion && self.rng.gen_bool(0.8) {
                continue; // overdue liquidation
            }
            let gas = self.chain.gas_market_mut().competitive_bid(0.3);
            let maker = &mut self.maker;
            let oracle = &self.oracles[&Platform::MakerDao];
            let chain = &mut self.chain;
            chain.execute(keeper.address, gas, AUCTION_GAS, "bite", |ctx| {
                maker
                    .bite(ctx.events, oracle, ctx.block, borrower)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            });
        }

        // 2. Bid on / finalise open auctions.
        let open = self.maker.open_auctions();
        for auction_id in open {
            self.auction_seen.entry(auction_id).or_insert(block);
            let (can_finalize, snapshot) = {
                let auction = self.maker.auction(auction_id).expect("open auction exists");
                (
                    self.maker.can_finalize(auction_id, block),
                    (
                        auction.phase,
                        auction.debt,
                        auction.collateral,
                        auction.collateral_token,
                        auction.best_bid,
                    ),
                )
            };
            if can_finalize {
                // The winner (or any keeper) settles; occasionally nobody
                // bothers for a while, producing the duration outliers of
                // Figure 7.
                if self.rng.gen_bool(0.85) {
                    let finalizer = snapshot
                        .4
                        .map(|b| b.bidder)
                        .unwrap_or_else(|| self.keepers[0].address);
                    let gas = self.chain.gas_market_mut().competitive_bid(0.1);
                    let maker = &mut self.maker;
                    let oracle = &self.oracles[&Platform::MakerDao];
                    let chain = &mut self.chain;
                    chain.execute(finalizer, gas, AUCTION_GAS, "deal", |ctx| {
                        maker
                            .deal(ctx.ledger, ctx.events, oracle, ctx.block, auction_id)
                            .map(|_| ())
                            .map_err(|e| e.to_string())
                    });
                }
                continue;
            }

            // Several bids can land inside one simulation tick (a tick spans
            // hours while real keepers react within minutes), so run a few
            // bidding rounds against the refreshed auction state.
            for _round in 0..3 {
                let Some(auction) = self.maker.auction(auction_id) else {
                    break;
                };
                if auction.finalized || auction.has_terminated(block, self.maker.auction_params()) {
                    break;
                }
                let (phase, debt, collateral_amount, collateral_token, best_bid) = (
                    auction.phase,
                    auction.debt,
                    auction.collateral,
                    auction.collateral_token,
                    auction.best_bid,
                );
                let started_at = auction.started_at;
                let auction_length = self.maker.auction_params().auction_length_blocks;
                let collateral_price = oracle_price(&self.oracles, collateral_token);
                let collateral_value = collateral_amount
                    .checked_mul(collateral_price)
                    .unwrap_or(Wad::ZERO);

                // Pick a keeper willing to act in this round.
                let keeper = self.keepers[self.rng.gen_range(0..self.keepers.len())].clone();
                let keeper_active = if congested {
                    if keeper.stale_under_congestion {
                        false
                    } else {
                        self.rng.gen_bool(0.35)
                    }
                } else {
                    self.rng.gen_bool(0.8)
                };

                if !keeper_active {
                    // Congestion sniping: an opportunistic keeper places a
                    // near-zero tend bid on an auction that is approaching its
                    // termination with no bids at all (the March 2020
                    // "zero-bid" wins).
                    let abandoned = best_bid.is_none()
                        && block.saturating_sub(started_at) * 2 >= auction_length;
                    if congested && abandoned {
                        if let Some(sniper) =
                            self.keepers.iter().find(|k| k.opportunistic_sniper).cloned()
                        {
                            let bid = debt
                                .checked_mul(Wad::from_f64(0.02))
                                .unwrap_or(Wad::ONE)
                                .max(Wad::ONE);
                            self.place_maker_bid(block, auction_id, &sniper, bid, Wad::ZERO);
                        }
                    }
                    continue;
                }

                let margin = keeper.target_margin;
                match phase {
                    defi_chain::AuctionPhase::Tend => {
                        let max_pay = Wad::from_f64(collateral_value.to_f64() * (1.0 - margin));
                        let current = best_bid.map(|b| b.debt_bid).unwrap_or(Wad::ZERO);
                        let next = if max_pay >= debt {
                            // A well-collateralized auction: rational keepers bid
                            // the full debt straight away to flip into the dent
                            // phase (the tend phase is a race, not a price walk).
                            debt
                        } else {
                            // Under-collateralized (crash) auction: walk towards
                            // the keeper's maximum willingness to pay.
                            let step = self.rng.gen_range(0.4..0.9);
                            Wad::from_f64(
                                current.to_f64()
                                    + (max_pay.to_f64() - current.to_f64()).max(0.0) * step,
                            )
                            .max(Wad::from_f64(max_pay.to_f64() * 0.3))
                        };
                        let floor = current
                            .checked_mul(Wad::from_f64(
                                1.0 + self.maker.auction_params().min_bid_increment,
                            ))
                            .unwrap_or(current);
                        let next = next.max(floor).min(debt);
                        if next > current && !next.is_zero() {
                            self.place_maker_bid(block, auction_id, &keeper, next, Wad::ZERO);
                        }
                    }
                    defi_chain::AuctionPhase::Dent => {
                        let desired = Wad::from_f64(
                            debt.to_f64() * (1.0 + margin) / collateral_price.to_f64().max(1e-9),
                        );
                        let previous =
                            best_bid.map(|b| b.collateral_bid).unwrap_or(collateral_amount);
                        let ceiling = Wad::from_f64(
                            previous.to_f64()
                                / (1.0 + self.maker.auction_params().min_bid_increment),
                        );
                        if desired <= ceiling && !desired.is_zero() {
                            self.place_maker_bid(block, auction_id, &keeper, debt, desired);
                        }
                    }
                }
            }
        }
    }

    fn place_maker_bid(
        &mut self,
        _block: BlockNumber,
        auction_id: AuctionId,
        keeper: &KeeperAgent,
        debt_bid: Wad,
        collateral_bid: Wad,
    ) {
        // Keepers fund their bids from inventory (minted on demand here).
        let auction_debt = self
            .maker
            .auction(auction_id)
            .map(|a| a.debt)
            .unwrap_or(debt_bid);
        let escrow = debt_bid.max(auction_debt);
        self.chain.fund(keeper.address, Token::DAI, escrow);
        let gas = self.chain.gas_market_mut().competitive_bid(0.2);
        let maker = &mut self.maker;
        let chain = &mut self.chain;
        let address = keeper.address;
        chain.execute(address, gas, AUCTION_GAS, "auction-bid", |ctx| {
            maker
                .bid(ctx.ledger, ctx.events, ctx.block, auction_id, address, debt_bid, collateral_bid)
                .map(|_| ())
                .map_err(|e| e.to_string())
        });
    }

    // ------------------------------------------------------------- sampling

    fn sample_volumes(&mut self, block: BlockNumber) {
        for (platform, protocol) in &self.fixed {
            let oracle = &self.oracles[platform];
            let positions = borrower_positions(protocol.positions(oracle));
            self.volume_samples
                .push(make_sample(block, *platform, &positions));
        }
        let maker_positions = self.maker.positions(&self.oracles[&Platform::MakerDao]);
        self.volume_samples
            .push(make_sample(block, Platform::MakerDao, &maker_positions));
    }
}

/// Keep only positions that actually borrow (lender-only deposits are not
/// "borrowing positions" for the paper's metrics).
fn borrower_positions(positions: Vec<Position>) -> Vec<Position> {
    positions
        .into_iter()
        .filter(|p| !p.total_debt_value().is_zero())
        .collect()
}

fn make_sample(block: BlockNumber, platform: Platform, positions: &[Position]) -> VolumeSample {
    let total = positions
        .iter()
        .map(|p| p.total_collateral_value())
        .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
    let dai_eth = positions
        .iter()
        .filter(|p| p.has_debt_in(Token::DAI))
        .map(|p| {
            p.collateral_value_in(Token::ETH)
                .saturating_add(p.collateral_value_in(Token::WETH))
        })
        .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
    VolumeSample {
        block,
        platform,
        total_collateral_usd: total,
        dai_eth_collateral_usd: dai_eth,
        open_positions: positions.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_chain::{EventFilter, EventKind};

    fn smoke_report(seed: u64) -> SimulationReport {
        SimulationEngine::new(SimConfig::smoke_test(seed)).run()
    }

    #[test]
    fn smoke_scenario_produces_liquidations() {
        let report = smoke_report(42);
        let liquidations = report
            .chain
            .query_events(&EventFilter::any().kind(EventKind::Liquidation))
            .len();
        let auctions = report
            .chain
            .query_events(&EventFilter::any().kind(EventKind::AuctionFinalized))
            .len();
        assert!(
            liquidations > 10,
            "expected fixed-spread liquidations across the March 2020 crash, got {liquidations}"
        );
        assert!(auctions > 0, "expected at least one finalised Maker auction");
    }

    #[test]
    fn smoke_scenario_records_volumes_and_positions() {
        let report = smoke_report(43);
        assert!(!report.volume_samples.is_empty());
        // Every platform with borrowers shows up in the final snapshot.
        assert!(report.final_positions.contains_key(&Platform::Compound));
        assert!(report.final_positions.contains_key(&Platform::MakerDao));
        let open: usize = report.final_positions.values().map(|v| v.len()).sum();
        assert!(open > 10, "expected open positions at the snapshot, got {open}");
        assert!(report.snapshot_block >= report.config.end_block);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = smoke_report(7);
        let b = smoke_report(7);
        assert_eq!(a.chain.events().len(), b.chain.events().len());
        assert_eq!(a.volume_samples.len(), b.volume_samples.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = smoke_report(1);
        let b = smoke_report(2);
        // Not a strict requirement, but overwhelmingly likely.
        assert_ne!(a.chain.events().len(), b.chain.events().len());
    }

    #[test]
    fn market_oracle_has_full_history() {
        let report = smoke_report(44);
        let history = report.market_oracle.history(Token::ETH);
        assert!(history.len() as u64 >= report.config.tick_count() - 2);
    }

    #[test]
    fn liquidation_events_carry_gas_prices() {
        let report = smoke_report(45);
        for (logged, _) in report.chain.events().liquidations() {
            assert!(logged.gas_price > 0);
            assert_eq!(logged.gas_used, LIQUIDATION_GAS);
        }
    }
}
