//! The simulation engine: drives the price scenario, the chain, the protocol
//! registry and the agent populations through the study window, and hands the
//! resulting observable surface (events, gas, positions, volumes) to the
//! analytics crate.
//!
//! Protocols are held behind the unified
//! [`LendingProtocol`](defi_lending::LendingProtocol) trait in a
//! [`ProtocolRegistry`], so every loop here — liquidity seeding, borrower
//! arrivals, accrual, liquidation driving, volume sampling, the end-of-run
//! snapshot — is registry-driven. The only mechanism-specific dispatch is on
//! [`MechanismKind`]: atomic fixed-spread platforms are worked by liquidator
//! bots, auction platforms by keeper bots, both through the one
//! `execute_liquidation` entry point. Engines are assembled through
//! [`EngineBuilder`](crate::EngineBuilder).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

use defi_amm::Dex;
use defi_chain::{
    mempool::BackgroundDemand, AuctionPhase, Blockchain, ChainConfig, ChainEvent, GweiPrice,
};
use defi_core::mechanism::AuctionParams;
use defi_core::position::{CollateralHolding, DebtHolding, Position};
use defi_lending::{
    AuctionSnapshot, FlashLoanPool, LiquidationExecution, LiquidationRequest, MechanismKind,
    Opportunity,
};
use defi_oracle::{MarketScenario, OracleConfig, PriceOracle, ScenarioEvent};
use defi_types::{Address, BlockNumber, Platform, Token, Wad};

use crate::agents::{
    sample_borrower, sample_keepers, sample_liquidators, BorrowerAgent, KeeperAgent,
    LiquidatorAgent,
};
use crate::behavior::{BehaviorEngine, BehaviorReport, PendingOpportunity};
use crate::builder::{DexSetup, ProtocolRegistry};
use crate::config::SimConfig;

/// A periodic sample of collateral volume, used for Figures 4/9 denominators.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VolumeSample {
    /// Block of the sample.
    pub block: BlockNumber,
    /// Platform.
    pub platform: Platform,
    /// Total USD value of collateral backing *borrowing* positions.
    pub total_collateral_usd: Wad,
    /// USD value of ETH collateral backing DAI-debt positions (the DAI/ETH
    /// market the §5.1 comparison is restricted to).
    pub dai_eth_collateral_usd: Wad,
    /// Number of open borrowing positions.
    pub open_positions: u32,
}

/// Sell-pressure volume the feedback pass could not route through the DEX,
/// accumulated per token over the whole run. Surfaced in the report (and the
/// repro CLI) so truncated spiral pressure is visible rather than silently
/// dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SkippedVolume {
    /// Token units that found no DEX route.
    pub amount: Wad,
    /// USD value of those units at the market price when skipped.
    pub usd: Wad,
    /// Number of per-tick lots skipped.
    pub lots: u32,
}

/// Everything the analytics layer needs after a run.
#[derive(Debug)]
pub struct SimulationReport {
    /// The scenario configuration that produced the run.
    pub config: SimConfig,
    /// The chain: event log, gas history, block headers.
    pub chain: Blockchain,
    /// The "true" market price history (written every tick).
    pub market_oracle: PriceOracle,
    /// Each platform's own oracle (what its contracts actually saw).
    pub platform_oracles: BTreeMap<Platform, PriceOracle>,
    /// Periodic collateral-volume samples.
    pub volume_samples: Vec<VolumeSample>,
    /// Position books at the end of the run (the snapshot-block state used by
    /// Tables 2–3 and Figure 8).
    pub final_positions: BTreeMap<Platform, Vec<Position>>,
    /// The block of the final snapshot.
    pub snapshot_block: BlockNumber,
    /// Sell-pressure volume per token that the feedback pass skipped for lack
    /// of a DEX route (empty when no feedback scenario ran).
    pub feedback_skipped: BTreeMap<Token, SkippedVolume>,
    /// Behavioural-layer outcome: latency/inventory/panic counters and
    /// per-agent capital exhaustions. `None` when the layer was disabled.
    pub behavior: Option<BehaviorReport>,
}

/// The simulation engine.
pub struct SimulationEngine {
    pub(crate) config: SimConfig,
    rng: StdRng,
    pub(crate) chain: Blockchain,
    scenario: MarketScenario,
    pub(crate) market_oracle: PriceOracle,
    pub(crate) oracles: BTreeMap<Platform, PriceOracle>,
    pub(crate) dex: Dex,
    flash_pools: BTreeMap<Platform, FlashLoanPool>,
    /// Every protocol behind the unified trait, keyed by platform.
    pub(crate) protocols: ProtocolRegistry,
    borrowers: Vec<BorrowerAgent>,
    liquidators: Vec<LiquidatorAgent>,
    keepers: Vec<KeeperAgent>,
    borrower_counter: HashMap<Platform, u64>,
    /// Active platform-specific oracle irregularities:
    /// (platform, token, multiplier, last block).
    irregularities: Vec<(Platform, Token, f64, BlockNumber)>,
    /// Per-tick index of the active irregularities, rebuilt once per tick so
    /// price application is a hash lookup instead of a linear scan.
    irregularity_index: HashMap<(Platform, Token), f64>,
    pub(crate) volume_samples: Vec<VolumeSample>,
    auction_params_switched: bool,
    pub(crate) tick_index: u64,
    /// Health factor each settled liquidation's borrower had when the
    /// opportunity was discovered, keyed by the settlement event's index in
    /// the chain log (surfaced to observers for invariant checking).
    pub(crate) liquidation_hf: HashMap<usize, Wad>,
    /// Health factor at bite time, keyed by auction id (resolved into
    /// `liquidation_hf` when the auction finalises).
    auction_bite_hf: HashMap<u64, Wad>,
    /// Collateral seized this tick, awaiting the sell-pressure pass
    /// (liquidation-spiral scenarios only).
    pending_sell_pressure: Vec<(Token, Wad)>,
    /// Account through which the spiral pass unwinds seized collateral.
    spiral_trader: Address,
    /// Reusable buffer for liquidation-opportunity discovery
    /// ([`LendingProtocol::liquidatable_into`]): one allocation serves every
    /// platform on every tick instead of a fresh vector per discovery call.
    opportunity_scratch: Vec<Opportunity>,
    /// Behavioural agent layer (inventory, latency queues, panic exits);
    /// `None` when `config.behavior.enabled` is false, in which case the
    /// engine runs the baseline perfectly-capitalized instant-reaction model.
    pub(crate) behavior: Option<BehaviorEngine>,
    /// Per-token sell-pressure volume skipped for lack of a DEX route.
    pub(crate) feedback_skipped: BTreeMap<Token, SkippedVolume>,
}

impl SimulationEngine {
    /// Build an engine from a configuration with the paper's default protocol
    /// set, scenario and DEX — shorthand for
    /// [`EngineBuilder::new(config).build()`](crate::EngineBuilder).
    pub fn new(config: SimConfig) -> Self {
        crate::EngineBuilder::new(config).build()
    }

    /// Assemble an engine from its pluggable parts (called by
    /// [`EngineBuilder::build`](crate::EngineBuilder::build)).
    pub(crate) fn from_parts(
        config: SimConfig,
        mut protocols: ProtocolRegistry,
        scenario: MarketScenario,
        dex_setup: DexSetup,
    ) -> Self {
        // Fan each protocol's book re-valuation across the configured worker
        // count (byte-identical results for every value — a throughput knob).
        for protocol in protocols.values_mut() {
            protocol.set_book_workers(config.book_workers);
        }
        let rng = StdRng::seed_from_u64(config.seed);
        let mut chain_config = ChainConfig {
            start_block: config.start_block,
            ..ChainConfig::default()
        };
        chain_config
            .gas
            .episodes
            .extend(config.extra_congestion_episodes.iter().copied());
        let mut chain = Blockchain::new(chain_config);

        let market_oracle = PriceOracle::new(OracleConfig::every_update());

        // Per-platform oracles: Chainlink-style deviation/heartbeat policies.
        let mut oracles = BTreeMap::new();
        for &platform in protocols.keys() {
            oracles.insert(platform, PriceOracle::new(OracleConfig::default()));
        }

        // Flash-loan pools (Aave V1/V2 and dYdX act as flash pools, Table 4).
        let mut flash_pools = BTreeMap::new();
        for platform in [Platform::AaveV1, Platform::AaveV2, Platform::DyDx] {
            let pool = FlashLoanPool::for_platform(platform);
            for token in [Token::DAI, Token::USDC, Token::USDT, Token::ETH] {
                pool.seed(chain.ledger_mut(), token, Wad::from_int(500_000_000));
            }
            flash_pools.insert(platform, pool);
        }

        // A deep DEX so flash-loan liquidators can unwind collateral.
        let dex = dex_setup(&mut chain);

        // Agent populations: liquidator bots for fixed-spread platforms,
        // keeper bots for auction platforms. Sampling is seed-derived per
        // platform (not drawn from the engine RNG), so the populations are
        // independent of registry iteration order and `book_workers`.
        let max_latency = config.behavior.max_latency_ticks;
        let mut liquidators = Vec::new();
        let mut keeper_count = 4;
        for population in &config.populations {
            let mechanism = protocols.get(&population.platform).map(|p| p.mechanism());
            match mechanism {
                Some(MechanismKind::FixedSpread) => {
                    liquidators.extend(sample_liquidators(
                        config.seed,
                        population,
                        config.stale_bot_share,
                        config.flash_loan_probability,
                        max_latency,
                    ));
                }
                Some(MechanismKind::Auction) => {
                    keeper_count = population.liquidator_count;
                }
                None => {}
            }
        }
        let keepers = sample_keepers(
            config.seed,
            keeper_count,
            config.stale_bot_share,
            max_latency,
        );

        let behavior = config.behavior.enabled.then(|| {
            BehaviorEngine::new(config.behavior.clone(), config.seed)
                .with_tick_blocks(config.tick_blocks)
        });

        SimulationEngine {
            rng,
            chain,
            scenario,
            market_oracle,
            oracles,
            dex,
            flash_pools,
            protocols,
            borrowers: Vec::new(),
            liquidators,
            keepers,
            borrower_counter: HashMap::new(),
            irregularities: Vec::new(),
            irregularity_index: HashMap::new(),
            volume_samples: Vec::new(),
            auction_params_switched: false,
            tick_index: 0,
            liquidation_hf: HashMap::new(),
            auction_bite_hf: HashMap::new(),
            pending_sell_pressure: Vec::new(),
            spiral_trader: Address::from_label("spiral-unwind"),
            opportunity_scratch: Vec::new(),
            behavior,
            feedback_skipped: BTreeMap::new(),
            config,
        }
    }

    /// Open a streaming [`Session`](crate::Session) over this engine — the
    /// primary run surface: step, pause, inspect and checkpoint the run while
    /// [`SimObserver`](crate::SimObserver)s consume it.
    pub fn session(self) -> crate::Session {
        crate::Session::new(self)
    }

    /// Run the configured scenario to completion and return the report.
    ///
    /// Thin compatibility wrapper over the session API, equivalent to
    /// `self.session().run_to_end(&mut NullObserver)`. Panics if genesis
    /// liquidity seeding fails; use [`Session`](crate::Session) directly for
    /// the recoverable error path.
    pub fn run(self) -> SimulationReport {
        self.session()
            .run_to_end(&mut crate::NullObserver)
            // lint:allow(hot-unwrap) documented infallible compatibility wrapper: a genesis seeding failure is a configuration error that must abort; Session::run_to_end is the recoverable path
            .expect("simulation start-up failed")
    }

    // ------------------------------------------------------------------ setup

    pub(crate) fn seed_initial_prices(&mut self) {
        let block = self.config.start_block;
        let updates = self.scenario.advance(block);
        for (token, price) in &updates {
            self.market_oracle.set_price(block, *token, *price);
            for oracle in self.oracles.values_mut() {
                oracle.set_price(block, *token, *price);
            }
        }
    }

    /// Genesis lenders deposit deep liquidity in every pool-funded market so
    /// borrowers can actually borrow. Mint-on-demand protocols (MakerDAO)
    /// report no lendable tokens and are skipped. A reverted deposit is a
    /// hard error — the run would otherwise start with an unfunded market
    /// and silently produce no borrowing activity on that platform.
    pub(crate) fn seed_pool_liquidity(&mut self) -> Result<(), crate::SimError> {
        let user_op_gas = self.config.user_op_gas;
        let chain = &mut self.chain;
        for (platform, protocol) in self.protocols.iter_mut() {
            let Some(oracle) = self.oracles.get(platform) else {
                continue; // registry and oracle map share keys by construction
            };
            let lender = Address::from_label(&format!("genesis-lender-{}", platform.name()));
            for token in protocol.lendable_tokens() {
                let price = oracle.price_or_zero(token).to_f64().max(1e-9);
                // 400M USD of depth per market.
                let amount = Wad::from_f64(400_000_000.0 / price);
                chain.fund(lender, token, amount);
                let outcome = chain.execute(lender, 20, user_op_gas, "genesis-deposit", |ctx| {
                    protocol
                        .deposit(ctx.ledger, ctx.events, lender, token, amount)
                        .map_err(|e| e.to_string())
                });
                if let Err(error) = outcome.result {
                    return Err(crate::SimError::GenesisDeposit {
                        platform: *platform,
                        token,
                        reason: error.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------- tick

    pub(crate) fn tick(&mut self, block: BlockNumber) {
        self.update_prices(block);
        let congested = self.chain.gas_market().is_congested(block);
        self.chain
            .advance_to(block, if congested { 5_000 } else { 50 });

        self.maybe_switch_auction_regime(block);
        self.replenish_behavior_inventory();
        self.spawn_borrowers(block);
        self.accrue_protocols(block);
        self.run_market_panic_exits(block);
        self.drive_liquidations(block, congested);
        self.apply_sell_pressure_feedback();

        if self
            .tick_index
            .is_multiple_of(self.config.insurance_writeoff_interval.max(1))
        {
            // Protocols without an insurance fund report zero and skip.
            for (platform, protocol) in self.protocols.iter_mut() {
                if let Some(oracle) = self.oracles.get(platform) {
                    protocol.write_off_insolvent_positions(oracle);
                }
            }
        }
        if self
            .tick_index
            .is_multiple_of(self.config.volume_sample_interval.max(1))
        {
            self.sample_volumes(block);
        }
    }

    fn update_prices(&mut self, block: BlockNumber) {
        let previous_block = block.saturating_sub(self.config.tick_blocks);
        let updates = self.scenario.advance(block);

        // New scripted irregularities starting this tick.
        for event in self.scenario.events_between(previous_block, block) {
            match event {
                ScenarioEvent::OracleIrregularity {
                    block: start,
                    platform,
                    token,
                    price_multiplier,
                    duration_blocks,
                } => {
                    self.irregularities.push((
                        platform,
                        token,
                        price_multiplier,
                        start + duration_blocks,
                    ));
                }
            }
        }
        self.irregularities.retain(|(_, _, _, end)| *end >= block);

        // Index the active irregularities once per tick; the per-token loop
        // below then pays one hash lookup per oracle instead of a scan over
        // every irregularity.
        self.irregularity_index.clear();
        for &(platform, token, multiplier, _) in &self.irregularities {
            self.irregularity_index
                .insert((platform, token), multiplier);
        }

        for (token, price) in &updates {
            self.market_oracle.set_price(block, *token, *price);
            for (platform, oracle) in self.oracles.iter_mut() {
                let multiplier = self
                    .irregularity_index
                    .get(&(*platform, *token))
                    .copied()
                    .unwrap_or(1.0);
                if (multiplier - 1.0).abs() > 1e-9 {
                    // Irregular prices are pushed unconditionally (they came
                    // from a signed off-chain message, as on Compound).
                    let effective = Wad::from_f64(price.to_f64() * multiplier);
                    oracle.set_price(block, *token, effective);
                } else {
                    oracle.observe(block, *token, *price);
                }
            }
        }
    }

    /// Apply MakerDAO's post-March-2020 auction-parameter governance change
    /// (Figure 7). The switch is scoped to the platform whose history it
    /// models — other auction protocols in the registry keep the parameters
    /// they were built with.
    fn maybe_switch_auction_regime(&mut self, block: BlockNumber) {
        if !self.auction_params_switched && block >= self.config.maker_param_change_block {
            if let Some(protocol) = self.protocols.get_mut(&Platform::MakerDao) {
                protocol.set_auction_params(AuctionParams::maker_post_march_2020());
            }
            self.auction_params_switched = true;
        }
    }

    fn accrue_protocols(&mut self, block: BlockNumber) {
        for protocol in self.protocols.values_mut() {
            protocol.accrue(block);
        }
    }

    fn progress(&self, block: BlockNumber) -> f64 {
        let span = (self.config.end_block - self.config.start_block).max(1) as f64;
        ((block - self.config.start_block) as f64 / span).clamp(0.0, 1.0)
    }

    // -------------------------------------------------------------- borrowers

    fn spawn_borrowers(&mut self, block: BlockNumber) {
        let progress = self.progress(block);
        let populations = self.config.populations.clone();
        for population in &populations {
            let platform = population.platform;
            if !self.protocols.contains_key(&platform) || block < platform.inception_block() {
                continue;
            }
            // Aave V1 stops growing once V2 launches (liquidity migrated).
            let mut rate = population.borrower_arrival_rate * (0.10 + 0.90 * progress);
            if platform == Platform::AaveV1 && block >= Platform::AaveV2.inception_block() {
                rate *= 0.1;
            }
            let active = self
                .borrowers
                .iter()
                .filter(|b| b.platform == platform && !b.retired)
                .count();
            if active >= population.max_borrowers {
                continue;
            }
            let arrivals = if self.rng.gen_bool(rate.fract().clamp(0.0, 1.0)) {
                rate.trunc() as usize + 1
            } else {
                rate.trunc() as usize
            };
            for _ in 0..arrivals {
                let counter = self.borrower_counter.entry(platform).or_insert(0);
                *counter += 1;
                let index = *counter;
                let borrower = sample_borrower(
                    self.config.seed,
                    population,
                    index,
                    self.config.behavior.panic_share,
                );
                if self.open_position_for(&borrower, block) {
                    self.borrowers.push(borrower);
                }
            }
        }
    }

    /// Open the borrower's position on-chain through the unified protocol
    /// API: deposit the collateral basket, then borrow towards the agent's
    /// target collateralization, never exceeding ~98.5 % of the
    /// protocol-reported borrowing capacity. Returns false if it failed.
    ///
    /// The target is interpreted per mechanism, preserving each population's
    /// calibration: fixed-spread borrowers target `collateral / debt`
    /// (their buffer sits inside the liquidation threshold), while CDP
    /// owners size their buffer *on top of* the protocol's required
    /// collateralization ratio — i.e. relative to the borrowing capacity.
    fn open_position_for(&mut self, borrower: &BorrowerAgent, _block: BlockNumber) -> bool {
        let platform = borrower.platform;
        let gas = self.chain.gas_market_mut().competitive_bid(0.0);
        let Some(protocol) = self.protocols.get_mut(&platform) else {
            return false;
        };
        let mechanism = protocol.mechanism();
        let Some(oracle) = self.oracles.get(&platform) else {
            return false;
        };
        let address = borrower.address;
        // Fund and deposit each collateral token (split the value evenly).
        let share = borrower.collateral_value_usd / borrower.collateral_tokens.len() as f64;
        let mut deposits = Vec::new();
        for &token in &borrower.collateral_tokens {
            let price = oracle.price_or_zero(token).to_f64().max(1e-9);
            let amount = Wad::from_f64(share / price);
            self.chain.fund(address, token, amount);
            deposits.push((token, amount));
        }
        let debt_price = oracle.price_or_zero(borrower.debt_token).to_f64().max(1e-9);
        let collateral_value_usd = borrower.collateral_value_usd;
        let target_collateralization = borrower.target_collateralization;
        let debt_token = borrower.debt_token;
        let chain = &mut self.chain;
        let outcome = chain.execute(
            address,
            gas,
            self.config.user_op_gas,
            "open-position",
            |ctx| {
                for (token, amount) in &deposits {
                    protocol
                        .deposit(ctx.ledger, ctx.events, address, *token, *amount)
                        .map_err(|e| e.to_string())?;
                }
                let capacity = protocol
                    .position(oracle, address)
                    .map(|p| p.borrowing_capacity())
                    .unwrap_or(Wad::ZERO);
                let desired_debt_usd = match mechanism {
                    MechanismKind::FixedSpread => {
                        collateral_value_usd / target_collateralization.max(1.05)
                    }
                    MechanismKind::Auction => {
                        capacity.to_f64() / target_collateralization.max(1.02)
                    }
                };
                // Cap the borrow just under the borrowing capacity.
                let borrow_usd = Wad::from_f64(desired_debt_usd).min(
                    capacity
                        .checked_mul(Wad::from_f64(0.985))
                        .unwrap_or(capacity),
                );
                let amount = Wad::from_f64(borrow_usd.to_f64() / debt_price);
                if amount.is_zero() {
                    return Err("zero borrow".to_string());
                }
                protocol
                    .borrow(
                        ctx.ledger, ctx.events, oracle, ctx.block, address, debt_token, amount,
                    )
                    .map_err(|e| e.to_string())
            },
        );
        outcome.is_success()
    }

    // ------------------------------------------------------------ liquidation

    /// Work every platform's liquidatable positions with the agent population
    /// matching its mechanism: liquidator bots race fixed-spread calls,
    /// keeper bots run auctions. Both act through `execute_liquidation`.
    fn drive_liquidations(&mut self, block: BlockNumber, congested: bool) {
        let platforms: Vec<(Platform, MechanismKind)> = self
            .protocols
            .iter()
            .map(|(platform, protocol)| (*platform, protocol.mechanism()))
            .collect();
        let eth_price = self.market_oracle.price_or_zero(Token::ETH).to_f64();
        for (platform, mechanism) in platforms {
            match mechanism {
                MechanismKind::FixedSpread => {
                    self.manage_borrower_positions(platform, block, congested);
                    let (Some(oracle), Some(protocol)) = (
                        self.oracles.get(&platform),
                        self.protocols.get_mut(&platform),
                    ) else {
                        continue;
                    };
                    let mut opportunities = std::mem::take(&mut self.opportunity_scratch);
                    protocol.liquidatable_into(oracle, &mut opportunities);
                    if let Some(behavior) = self.behavior.as_mut() {
                        // Behavioural layer: discoveries enter the latency
                        // queue; execution happens once an agent's latency
                        // has elapsed (possibly this very tick for
                        // zero-latency agents).
                        for opportunity in &opportunities {
                            behavior.queue(platform, opportunity.borrower, block);
                        }
                        opportunities.clear();
                        self.opportunity_scratch = opportunities;
                        self.process_due_liquidations(platform, block, congested, eth_price);
                    } else {
                        for opportunity in &opportunities {
                            self.attempt_liquidation(opportunity, block, congested, eth_price);
                        }
                        opportunities.clear();
                        self.opportunity_scratch = opportunities;
                    }
                }
                MechanismKind::Auction => {
                    self.run_auction_keepers(platform, block, congested);
                }
            }
        }
    }

    /// Borrower-side management on a fixed-spread platform: rescue positions
    /// close to liquidation, re-leverage positions whose collateral has
    /// appreciated far beyond the target. The scan consumes the protocol's
    /// *banded* at-risk iterator — far-from-threshold borrowers whose
    /// certified health-factor envelope holds are never read, let alone
    /// re-valued — and the few positions in the actionable bands are
    /// extracted and acted on afterwards (the actions mutate the protocol,
    /// never the scan's snapshot — same semantics the old full walk had).
    fn manage_borrower_positions(
        &mut self,
        platform: Platform,
        block: BlockNumber,
        congested: bool,
    ) {
        enum Action {
            /// HF in [1, RESCUE_BAND_HF): the borrower may rescue-repay (or,
            /// under the behavioural layer, panic-exit).
            Rescue {
                owner: Address,
                debt_value: Wad,
                hf: Wad,
            },
            /// HF > RELEVERAGE_BAND_HF: the borrower may re-leverage.
            Releverage {
                owner: Address,
                capacity: Wad,
                debt_value: Wad,
            },
        }
        let mut actions: Vec<Action> = Vec::new();
        {
            let (Some(oracle), Some(protocol)) = (
                self.oracles.get(&platform),
                self.protocols.get_mut(&platform),
            ) else {
                return;
            };
            let rescue_band = Wad::from_f64(defi_lending::RESCUE_BAND_HF);
            let releverage_band = Wad::from_f64(defi_lending::RELEVERAGE_BAND_HF);
            protocol.for_each_at_risk(oracle, rescue_band, releverage_band, &mut |position| {
                let Some(hf) = position.health_factor() else {
                    return;
                };
                if hf < Wad::ONE {
                    return; // handled by the liquidation pass
                }
                if hf < rescue_band {
                    actions.push(Action::Rescue {
                        owner: position.owner,
                        debt_value: position.total_debt_value(),
                        hf,
                    });
                } else if hf > releverage_band {
                    // Collateral appreciated well beyond the borrower's
                    // target: many borrowers re-leverage, which is what keeps
                    // the aggregate book sensitive to price declines
                    // (Figure 8) throughout the bull market.
                    actions.push(Action::Releverage {
                        owner: position.owner,
                        capacity: position.borrowing_capacity(),
                        debt_value: position.total_debt_value(),
                    });
                }
            });
        }
        for action in actions {
            match action {
                Action::Rescue {
                    owner,
                    debt_value,
                    hf,
                } => {
                    self.maybe_manage_position(platform, owner, debt_value, hf, block, congested);
                }
                Action::Releverage {
                    owner,
                    capacity,
                    debt_value,
                } => {
                    self.maybe_releverage_position(platform, owner, capacity, debt_value, block);
                }
            }
        }
    }

    /// A borrower whose collateral has appreciated far beyond their target
    /// borrows more against it (with some probability per tick), restoring a
    /// riskier health factor.
    fn maybe_releverage_position(
        &mut self,
        platform: Platform,
        owner: Address,
        capacity: Wad,
        debt_value: Wad,
        _block: BlockNumber,
    ) {
        if !self.rng.gen_bool(0.10) {
            return;
        }
        let Some(agent) = self
            .borrowers
            .iter()
            .find(|b| b.address == owner && b.platform == platform)
        else {
            return;
        };
        if agent.retired {
            return;
        }
        let address = agent.address;
        let debt_token = agent.debt_token;
        let Some(oracle) = self.oracles.get(&platform) else {
            return;
        };
        let debt_price = oracle.price_or_zero(debt_token).to_f64().max(1e-9);
        // Borrow back up to ~80% of the borrowing capacity.
        let capacity = capacity.to_f64();
        let current_debt = debt_value.to_f64();
        let target_debt = capacity * self.rng.gen_range(0.60..0.85);
        if target_debt <= current_debt {
            return;
        }
        let amount = Wad::from_f64((target_debt - current_debt) / debt_price);
        let gas = self.chain.gas_market_mut().competitive_bid(0.1);
        let Some(protocol) = self.protocols.get_mut(&platform) else {
            return;
        };
        let chain = &mut self.chain;
        chain.execute(
            address,
            gas,
            self.config.user_op_gas,
            "re-leverage",
            |ctx| {
                protocol
                    .borrow(
                        ctx.ledger, ctx.events, oracle, ctx.block, address, debt_token, amount,
                    )
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        );
    }

    /// An active borrower tops up collateral (or repays) when the position is
    /// close to liquidation; under congestion most such rescue transactions
    /// do not make it in time. Under the behavioural layer, panic-prone
    /// borrowers whose health factor has slipped below the panic threshold
    /// deleverage hard instead, selling collateral into the market.
    fn maybe_manage_position(
        &mut self,
        platform: Platform,
        owner: Address,
        debt_value: Wad,
        hf: Wad,
        _block: BlockNumber,
        congested: bool,
    ) {
        let Some(agent) = self
            .borrowers
            .iter()
            .find(|b| b.address == owner && b.platform == platform)
        else {
            return;
        };
        if agent.retired {
            return;
        }
        let active_manager = agent.active_manager;
        let panic_exiter = agent.panic_exiter;
        let address = agent.address;
        let debt_token = agent.debt_token;
        let primary_collateral = agent.collateral_tokens.first().copied();
        let panics = panic_exiter
            && match self.behavior.as_mut() {
                Some(behavior) if hf.to_f64() < behavior.config.panic_hf => behavior.draw_panic(),
                _ => false,
            };
        if panics {
            self.panic_deleverage(
                platform,
                address,
                debt_token,
                primary_collateral,
                debt_value,
            );
            return;
        }
        if !active_manager {
            return;
        }
        let rescue_probability = if congested { 0.15 } else { 0.70 };
        if !self.rng.gen_bool(rescue_probability) {
            return;
        }
        let gas = self.chain.gas_market_mut().competitive_bid(0.2);
        // Repay ~25% of the outstanding debt with fresh external funds.
        let repay_usd = debt_value.to_f64() * 0.25;
        let Some(oracle) = self.oracles.get(&platform) else {
            return;
        };
        let debt_price = oracle.price_or_zero(debt_token).to_f64().max(1e-9);
        let amount = Wad::from_f64(repay_usd / debt_price);
        self.chain.fund(address, debt_token, amount);
        let Some(protocol) = self.protocols.get_mut(&platform) else {
            return;
        };
        let chain = &mut self.chain;
        chain.execute(
            address,
            gas,
            self.config.user_op_gas,
            "rescue-repay",
            |ctx| {
                protocol
                    .repay(
                        ctx.ledger, ctx.events, ctx.block, address, debt_token, amount,
                    )
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        );
    }

    /// One liquidator bot races a fixed-spread liquidation of `opportunity`
    /// (baseline model: a random covering bot acts instantly with unlimited
    /// inventory).
    fn attempt_liquidation(
        &mut self,
        opportunity: &Opportunity,
        block: BlockNumber,
        congested: bool,
        eth_price: f64,
    ) {
        let platform = opportunity.platform;
        let position = &opportunity.position;
        // Choose a liquidator covering this platform.
        let candidates: Vec<usize> = self
            .liquidators
            .iter()
            .enumerate()
            .filter(|(_, l)| l.platforms.contains(&platform))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let pick = candidates[self.rng.gen_range(0..candidates.len())]; // lint:allow(hot-index) gen_range(0..len) is in bounds by construction
        let liquidator = self.liquidators[pick].clone(); // lint:allow(hot-index) candidates holds valid liquidator indices from the enumerate above

        let Some((collateral, debt)) = Self::pick_exposures(position) else {
            return;
        };
        let use_flash = liquidator.uses_flash_loans
            && self.rng.gen_bool(0.75)
            && matches!(
                debt.token,
                Token::DAI | Token::USDC | Token::USDT | Token::ETH
            );
        let position = position.clone();
        self.execute_fixed_spread(
            platform,
            &position,
            collateral,
            debt,
            &liquidator,
            use_flash,
            block,
            congested,
            eth_price,
        );
    }

    /// Seize the most valuable collateral, repay the largest debt.
    fn pick_exposures(position: &Position) -> Option<(CollateralHolding, DebtHolding)> {
        let collateral = position
            .collateral
            .iter()
            .max_by_key(|c| c.value_usd)
            .copied()?;
        let debt = position.debt.iter().max_by_key(|d| d.value_usd).copied()?;
        Some((collateral, debt))
    }

    /// Process the latency queue of a fixed-spread platform: expire stale
    /// entries, re-check each surviving borrower's health factor at execution
    /// time, and hand still-liquidatable positions to the first ready agent.
    fn process_due_liquidations(
        &mut self,
        platform: Platform,
        block: BlockNumber,
        congested: bool,
        eth_price: f64,
    ) {
        let pending = match self.behavior.as_mut() {
            Some(behavior) => behavior.take_platform_queue(platform),
            None => return,
        };
        for entry in pending {
            if block > entry.expires_at_block {
                if let Some(behavior) = self.behavior.as_mut() {
                    behavior.stats.stale_dropped += 1;
                }
                continue;
            }
            // Stale opportunities re-check HF at execution: the position may
            // have been rescued, repaid or already liquidated since discovery.
            let position = {
                let (Some(oracle), Some(protocol)) =
                    (self.oracles.get(&platform), self.protocols.get(&platform))
                else {
                    continue;
                };
                protocol.position(oracle, entry.borrower)
            };
            let still_liquidatable = position
                .as_ref()
                .and_then(|p| p.health_factor())
                .is_some_and(|hf| hf < Wad::ONE);
            let Some(position) = position.filter(|_| still_liquidatable) else {
                if let Some(behavior) = self.behavior.as_mut() {
                    behavior.stats.stale_dropped += 1;
                }
                continue;
            };
            self.attempt_liquidation_behavioral(
                platform, &position, entry, block, congested, eth_price,
            );
        }
    }

    /// Behavioural execution of one due opportunity: the covering liquidators
    /// are ranked by `(latency, address)`; the first whose latency has
    /// elapsed *and* whose inventory covers the repay executes it. If no
    /// funded bot exists, a flash-capable bot may step in; otherwise the
    /// cohort is recorded as capital-exhausted and the opportunity requeued
    /// (replenishment may re-enable it before the TTL lapses).
    fn attempt_liquidation_behavioral(
        &mut self,
        platform: Platform,
        position: &Position,
        entry: PendingOpportunity,
        block: BlockNumber,
        congested: bool,
        eth_price: f64,
    ) {
        let tick_blocks = self.config.tick_blocks.max(1);
        let mut candidates: Vec<LiquidatorAgent> = self
            .liquidators
            .iter()
            .filter(|l| l.platforms.contains(&platform))
            .cloned()
            .collect();
        if candidates.is_empty() {
            return;
        }
        candidates.sort_by_key(|l| (l.latency_ticks, l.address));
        let Some((collateral, debt)) = Self::pick_exposures(position) else {
            return;
        };
        let Some(close_factor) = self.protocols.get(&platform).map(|p| p.close_factor()) else {
            return;
        };
        let repay_amount = debt.amount.checked_mul(close_factor).unwrap_or(Wad::ZERO);
        let debt_price = self.market_oracle.price_or_zero(debt.token).to_f64();

        let elapsed: Vec<LiquidatorAgent> = candidates
            .into_iter()
            .filter(|l| {
                entry
                    .discovered_block
                    .saturating_add(l.latency_ticks.saturating_mul(tick_blocks))
                    <= block
            })
            .collect();
        if elapsed.is_empty() {
            if let Some(behavior) = self.behavior.as_mut() {
                behavior.requeue(entry);
            }
            return;
        }

        // First ready bot with inventory; otherwise a flash-capable ready bot.
        let mut executor: Option<(LiquidatorAgent, bool)> = None;
        if let Some(behavior) = self.behavior.as_mut() {
            for agent in &elapsed {
                if behavior.can_cover(agent.address, debt.token, repay_amount, debt_price) {
                    executor = Some((agent.clone(), false));
                    break;
                }
            }
        }
        if executor.is_none()
            && matches!(
                debt.token,
                Token::DAI | Token::USDC | Token::USDT | Token::ETH
            )
        {
            if let Some(agent) = elapsed.iter().find(|l| l.uses_flash_loans) {
                executor = Some((agent.clone(), true));
            }
        }
        let Some((agent, use_flash)) = executor else {
            // Everyone ready is out of capital: the cascade has outrun the
            // liquidators. Requeue — replenishment may fund it next tick.
            let addresses: Vec<Address> = elapsed.iter().map(|l| l.address).collect();
            if let Some(behavior) = self.behavior.as_mut() {
                behavior.record_exhaustion(&addresses);
                behavior.requeue(entry);
            }
            return;
        };

        let executed = self.execute_fixed_spread(
            platform, position, collateral, debt, &agent, use_flash, block, congested, eth_price,
        );
        if executed {
            if let Some(behavior) = self.behavior.as_mut() {
                if !use_flash {
                    behavior.consume(agent.address, debt.token, repay_amount, debt_price);
                }
                behavior.stats.executed_delayed += 1;
            }
        } else if let Some(behavior) = self.behavior.as_mut() {
            // Excluded or unprofitable this tick: keep it pending until the
            // TTL lapses (gas conditions change tick to tick).
            behavior.requeue(entry);
        }
    }

    /// Execute one fixed-spread liquidation for a chosen liquidator: gas
    /// bidding, mempool inclusion, the §4.4.3 profitability check, then an
    /// inventory- or flash-loan-funded `execute_liquidation`. Returns whether
    /// the liquidation settled on-chain.
    #[allow(clippy::too_many_arguments)]
    fn execute_fixed_spread(
        &mut self,
        platform: Platform,
        position: &Position,
        collateral: CollateralHolding,
        debt: DebtHolding,
        liquidator: &LiquidatorAgent,
        use_flash: bool,
        block: BlockNumber,
        congested: bool,
        eth_price: f64,
    ) -> bool {
        let Some(close_factor) = self.protocols.get(&platform).map(|p| p.close_factor()) else {
            return false;
        };
        let repay_amount = debt.amount.checked_mul(close_factor).unwrap_or(Wad::ZERO);
        let repay_usd = debt
            .value_usd
            .checked_mul(close_factor)
            .unwrap_or(Wad::ZERO);
        let expected_bonus = repay_usd
            .checked_mul(collateral.liquidation_spread)
            .unwrap_or(Wad::ZERO);

        // Gas bidding: competitive unless the bot is stale under congestion.
        // A minority of bots bid frugally below the prevailing median even in
        // calm conditions, which is what puts some liquidations below the
        // average line in Figure 6.
        let frugal = self.rng.gen_bool(0.25);
        let gas_price: GweiPrice = if congested && liquidator.stale_under_congestion {
            self.chain.gas_market_mut().passive_bid(0.4)
        } else if frugal {
            let discount = self.rng.gen_range(0.05..0.35);
            self.chain.gas_market_mut().passive_bid(discount)
        } else {
            self.chain
                .gas_market_mut()
                .competitive_bid(liquidator.gas_aggressiveness)
        };
        // Inclusion against background demand.
        let liquidation_gas = self.config.liquidation_gas;
        let median = self.chain.median_gas_price() as f64;
        let demand = if congested {
            BackgroundDemand::congested(median)
        } else {
            BackgroundDemand::calm(median)
        };
        let limit = self.chain.gas_market().block_gas_limit();
        let included = demand.gas_above(gas_price, limit) + liquidation_gas as f64 <= limit as f64;
        if !included {
            return false;
        }
        // Profitability check (§4.4.3): the bonus must cover the transaction fee.
        let fee_usd = gas_price as f64 * liquidation_gas as f64 * 1e-9 * eth_price;
        if expected_bonus.to_f64() <= fee_usd {
            return false;
        }

        let borrower = position.owner;
        let hf_before = position.health_factor();
        let feedback = self.scenario.feedback().is_some();
        let events_before = self.chain.events().len();
        let mut receipt_slot: Option<defi_lending::LiquidationReceipt> = None;
        let (Some(oracle), Some(protocol)) = (
            self.oracles.get(&platform),
            self.protocols.get_mut(&platform),
        ) else {
            return false;
        };
        // Pool reserves are ledger balances, so an in-transaction unwind swap
        // reverts with the transaction's checkpoint like everything else.
        let dex = &self.dex;
        let flash_pool = self.flash_pools.get(&liquidator.flash_loan_pool).copied();
        let chain = &mut self.chain;

        if !use_flash {
            // Inventory-funded liquidation: the bot holds the debt asset.
            chain.fund(liquidator.address, debt.token, repay_amount);
        }

        let request = LiquidationRequest::FixedSpread {
            liquidator: liquidator.address,
            borrower,
            debt_token: debt.token,
            collateral_token: collateral.token,
            repay_amount,
            used_flash_loan: use_flash,
        };
        let receipt_out = &mut receipt_slot;
        let outcome = chain.execute(
            liquidator.address,
            gas_price,
            liquidation_gas,
            "liquidation",
            |ctx| {
                if let (true, Some(pool)) = (use_flash, flash_pool) {
                    pool.flash_loan(
                        ctx.ledger,
                        ctx.events,
                        oracle,
                        liquidator.address,
                        debt.token,
                        repay_amount,
                        |ledger, events| {
                            let execution = protocol
                                .execute_liquidation(ledger, events, oracle, block, &request)?;
                            let LiquidationExecution::FixedSpread(receipt) = execution else {
                                return Err(
                                    defi_lending::ProtocolError::UnsupportedLiquidationRequest {
                                        platform,
                                    },
                                );
                            };
                            // Unwind the seized collateral into the debt asset to
                            // repay the flash loan.
                            if collateral.token != debt.token {
                                dex.swap(
                                    ledger,
                                    liquidator.address,
                                    collateral.token,
                                    debt.token,
                                    receipt.collateral_seized,
                                )
                                .map_err(|e| defi_lending::ProtocolError::Ledger(e.to_string()))?;
                            }
                            *receipt_out = Some(receipt);
                            Ok(())
                        },
                    )
                    .map_err(|e| e.to_string())
                } else {
                    protocol
                        .execute_liquidation(ctx.ledger, ctx.events, oracle, block, &request)
                        .map(|execution| {
                            if let LiquidationExecution::FixedSpread(receipt) = execution {
                                *receipt_out = Some(receipt);
                            }
                        })
                        .map_err(|e| e.to_string())
                }
            },
        );
        if outcome.is_success() {
            if feedback && !use_flash {
                // Flash-loan unwinds already traded through the DEX inside
                // the transaction; everything else queues for the spiral pass.
                if let Some(receipt) = &receipt_slot {
                    self.pending_sell_pressure
                        .push((collateral.token, receipt.collateral_seized));
                }
            }
            self.record_liquidation_context(events_before, hf_before);
        }
        outcome.is_success()
    }

    // --------------------------------------------------------------- auctions

    /// One keeper attempts to start an auction on a liquidatable borrower.
    /// Returns whether the bite settled on-chain.
    fn try_bite(
        &mut self,
        platform: Platform,
        keeper: &KeeperAgent,
        borrower: Address,
        hf_at_bite: Option<Wad>,
    ) -> bool {
        let events_before = self.chain.events().len();
        let gas = self.chain.gas_market_mut().competitive_bid(0.3);
        let (Some(oracle), Some(protocol)) = (
            self.oracles.get(&platform),
            self.protocols.get_mut(&platform),
        ) else {
            return false;
        };
        let chain = &mut self.chain;
        let request = LiquidationRequest::StartAuction {
            keeper: keeper.address,
            borrower,
        };
        let outcome = chain.execute(
            keeper.address,
            gas,
            self.config.auction_gas,
            "bite",
            |ctx| {
                protocol
                    .execute_liquidation(ctx.ledger, ctx.events, oracle, ctx.block, &request)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        );
        if outcome.is_success() {
            if let Some(hf) = hf_at_bite {
                let started: Vec<u64> = self
                    .chain
                    .events()
                    .as_slice()
                    .get(events_before..)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|logged| match logged.event {
                        ChainEvent::AuctionStarted { auction_id, .. } => Some(auction_id),
                        _ => None,
                    })
                    .collect();
                for auction_id in started {
                    self.auction_bite_hf.insert(auction_id, hf);
                }
            }
        }
        outcome.is_success()
    }

    /// Process the keeper latency queue of an auction platform: expired or
    /// recovered entries are dropped; the first keeper whose latency has
    /// elapsed (by `(latency, address)`) bites, with stale keepers still
    /// liable to sit out under congestion.
    fn process_due_bites(&mut self, platform: Platform, block: BlockNumber, congested: bool) {
        let pending = match self.behavior.as_mut() {
            Some(behavior) => behavior.take_platform_queue(platform),
            None => return,
        };
        let tick_blocks = self.config.tick_blocks.max(1);
        let mut keepers = self.keepers.clone();
        keepers.sort_by_key(|k| (k.latency_ticks, k.address));
        for entry in pending {
            if block > entry.expires_at_block {
                if let Some(behavior) = self.behavior.as_mut() {
                    behavior.stats.stale_dropped += 1;
                }
                continue;
            }
            let hf_at_bite = {
                let (Some(oracle), Some(protocol)) =
                    (self.oracles.get(&platform), self.protocols.get(&platform))
                else {
                    continue;
                };
                protocol
                    .position(oracle, entry.borrower)
                    .and_then(|p| p.health_factor())
            };
            if hf_at_bite.is_none_or(|hf| hf >= Wad::ONE) {
                if let Some(behavior) = self.behavior.as_mut() {
                    behavior.stats.stale_dropped += 1;
                }
                continue;
            }
            let ready = keepers.iter().find(|k| {
                entry
                    .discovered_block
                    .saturating_add(k.latency_ticks.saturating_mul(tick_blocks))
                    <= block
            });
            let Some(keeper) = ready.cloned() else {
                if let Some(behavior) = self.behavior.as_mut() {
                    behavior.requeue(entry);
                }
                continue;
            };
            if congested && keeper.stale_under_congestion && self.rng.gen_bool(0.8) {
                if let Some(behavior) = self.behavior.as_mut() {
                    behavior.requeue(entry);
                }
                continue;
            }
            if self.try_bite(platform, &keeper, entry.borrower, hf_at_bite) {
                if let Some(behavior) = self.behavior.as_mut() {
                    behavior.stats.executed_delayed += 1;
                }
            } else if let Some(behavior) = self.behavior.as_mut() {
                behavior.requeue(entry);
            }
        }
    }

    /// Keeper bots work an auction-mechanism platform: bite liquidatable
    /// positions, bid on open auctions, settle terminated ones — all through
    /// the unified `execute_liquidation` entry point.
    fn run_auction_keepers(&mut self, platform: Platform, block: BlockNumber, congested: bool) {
        if self.keepers.is_empty() {
            return;
        }

        // 1. Start auctions on liquidatable positions — a critical-price
        // range scan on the cached book, not a full CDP rebuild.
        let mut opportunities = std::mem::take(&mut self.opportunity_scratch);
        {
            let (Some(oracle), Some(protocol)) = (
                self.oracles.get(&platform),
                self.protocols.get_mut(&platform),
            ) else {
                return;
            };
            protocol.liquidatable_into(oracle, &mut opportunities);
        }
        if let Some(behavior) = self.behavior.as_mut() {
            // Behavioural layer: bites wait out keeper latency like
            // fixed-spread liquidations wait out liquidator latency.
            for opportunity in &opportunities {
                behavior.queue(platform, opportunity.borrower, block);
            }
            opportunities.clear();
            self.opportunity_scratch = opportunities;
            self.process_due_bites(platform, block, congested);
        } else {
            for opportunity in &opportunities {
                let keeper = self.keepers[self.rng.gen_range(0..self.keepers.len())].clone(); // lint:allow(hot-index) gen_range(0..len) is in bounds, and keepers is checked non-empty at fn entry
                if congested && keeper.stale_under_congestion && self.rng.gen_bool(0.8) {
                    continue; // overdue liquidation
                }
                let hf_at_bite = opportunity.position.health_factor();
                self.try_bite(platform, &keeper, opportunity.borrower, hf_at_bite);
            }
            opportunities.clear();
            self.opportunity_scratch = opportunities;
        }

        // 2. Bid on / finalise open auctions.
        let Some(params) = self
            .protocols
            .get(&platform)
            .and_then(|p| p.auction_params())
        else {
            return;
        };
        let open = self
            .protocols
            .get(&platform)
            .map(|p| p.open_auctions())
            .unwrap_or_default();
        for auction_id in open {
            let snapshot = self
                .protocols
                .get(&platform)
                .and_then(|p| p.auction_snapshot(auction_id));
            let Some(snapshot) = snapshot else {
                continue;
            };
            let finalizable = self
                .protocols
                .get(&platform)
                .is_some_and(|p| p.can_finalize_auction(auction_id, block));
            if finalizable {
                // The winner (or any keeper) settles; occasionally nobody
                // bothers for a while, producing the duration outliers of
                // Figure 7.
                if self.rng.gen_bool(0.85) {
                    let fallback = self.keepers.first().map(|k| k.address);
                    let Some(finalizer) = snapshot.best_bid.map(|b| b.bidder).or(fallback) else {
                        continue;
                    };
                    let feedback = self.scenario.feedback().is_some();
                    let events_before = self.chain.events().len();
                    let mut settled: Option<defi_lending::AuctionOutcome> = None;
                    let gas = self.chain.gas_market_mut().competitive_bid(0.1);
                    let (Some(oracle), Some(protocol)) = (
                        self.oracles.get(&platform),
                        self.protocols.get_mut(&platform),
                    ) else {
                        continue;
                    };
                    let chain = &mut self.chain;
                    let request = LiquidationRequest::SettleAuction {
                        caller: finalizer,
                        auction_id,
                    };
                    let settled_out = &mut settled;
                    let outcome =
                        chain.execute(finalizer, gas, self.config.auction_gas, "deal", |ctx| {
                            protocol
                                .execute_liquidation(
                                    ctx.ledger, ctx.events, oracle, ctx.block, &request,
                                )
                                .map(|execution| {
                                    if let LiquidationExecution::AuctionSettled(result) = execution
                                    {
                                        *settled_out = Some(result);
                                    }
                                })
                                .map_err(|e| e.to_string())
                        });
                    if outcome.is_success() {
                        if feedback {
                            if let Some(result) = &settled {
                                if result.winner.is_some() && !result.collateral_received.is_zero()
                                {
                                    self.pending_sell_pressure.push((
                                        snapshot.collateral_token,
                                        result.collateral_received,
                                    ));
                                }
                            }
                        }
                        self.record_liquidation_context(events_before, None);
                    }
                }
                continue;
            }

            // Several bids can land inside one simulation tick (a tick spans
            // hours while real keepers react within minutes), so run a few
            // bidding rounds against the refreshed auction state.
            for _round in 0..3 {
                let auction = self
                    .protocols
                    .get(&platform)
                    .and_then(|p| p.auction_snapshot(auction_id));
                let Some(auction) = auction else {
                    break;
                };
                if auction.finalized
                    || self
                        .protocols
                        .get(&platform)
                        .is_some_and(|p| p.can_finalize_auction(auction_id, block))
                {
                    break;
                }
                self.run_bidding_round(platform, block, congested, &params, &auction);
            }
        }
    }

    /// One keeper considers one bid on one open auction.
    fn run_bidding_round(
        &mut self,
        platform: Platform,
        block: BlockNumber,
        congested: bool,
        params: &AuctionParams,
        auction: &AuctionSnapshot,
    ) {
        let Some(collateral_price) = self
            .oracles
            .get(&platform)
            .map(|o| o.price_or_zero(auction.collateral_token))
        else {
            return;
        };
        let collateral_value = auction
            .collateral
            .checked_mul(collateral_price)
            .unwrap_or(Wad::ZERO);

        // Pick a keeper willing to act in this round.
        let keeper = self.keepers[self.rng.gen_range(0..self.keepers.len())].clone(); // lint:allow(hot-index) gen_range(0..len) is in bounds; run_auction_keepers checks keepers non-empty before any round runs
        let keeper_active = if congested {
            if keeper.stale_under_congestion {
                false
            } else {
                self.rng.gen_bool(0.35)
            }
        } else {
            self.rng.gen_bool(0.8)
        };

        if !keeper_active {
            // Congestion sniping: an opportunistic keeper places a near-zero
            // tend bid on an auction that is approaching its termination with
            // no bids at all (the March 2020 "zero-bid" wins).
            let abandoned = auction.best_bid.is_none()
                && block.saturating_sub(auction.started_at) * 2 >= params.auction_length_blocks;
            if congested && abandoned {
                if let Some(sniper) = self
                    .keepers
                    .iter()
                    .find(|k| k.opportunistic_sniper)
                    .cloned()
                {
                    let bid = auction
                        .debt
                        .checked_mul(Wad::from_f64(0.02))
                        .unwrap_or(Wad::ONE)
                        .max(Wad::ONE);
                    self.place_auction_bid(platform, auction, &sniper, bid, Wad::ZERO);
                }
            }
            return;
        }

        let margin = keeper.target_margin;
        match auction.phase {
            AuctionPhase::Tend => {
                let max_pay = Wad::from_f64(collateral_value.to_f64() * (1.0 - margin));
                let current = auction.best_bid.map(|b| b.debt_bid).unwrap_or(Wad::ZERO);
                let next = if max_pay >= auction.debt {
                    // A well-collateralized auction: rational keepers bid the
                    // full debt straight away to flip into the dent phase (the
                    // tend phase is a race, not a price walk).
                    auction.debt
                } else {
                    // Under-collateralized (crash) auction: walk towards the
                    // keeper's maximum willingness to pay.
                    let step = self.rng.gen_range(0.4..0.9);
                    Wad::from_f64(
                        current.to_f64() + (max_pay.to_f64() - current.to_f64()).max(0.0) * step,
                    )
                    .max(Wad::from_f64(max_pay.to_f64() * 0.3))
                };
                let floor = current
                    .checked_mul(Wad::from_f64(1.0 + params.min_bid_increment))
                    .unwrap_or(current);
                let next = next.max(floor).min(auction.debt);
                if next > current && !next.is_zero() {
                    self.place_auction_bid(platform, auction, &keeper, next, Wad::ZERO);
                }
            }
            AuctionPhase::Dent => {
                let desired = Wad::from_f64(
                    auction.debt.to_f64() * (1.0 + margin) / collateral_price.to_f64().max(1e-9),
                );
                let previous = auction
                    .best_bid
                    .map(|b| b.collateral_bid)
                    .unwrap_or(auction.collateral);
                let ceiling = Wad::from_f64(previous.to_f64() / (1.0 + params.min_bid_increment));
                if desired <= ceiling && !desired.is_zero() {
                    self.place_auction_bid(platform, auction, &keeper, auction.debt, desired);
                }
            }
        }
    }

    fn place_auction_bid(
        &mut self,
        platform: Platform,
        auction: &AuctionSnapshot,
        keeper: &KeeperAgent,
        debt_bid: Wad,
        collateral_bid: Wad,
    ) {
        // Keepers fund their bids from inventory (minted on demand here).
        let escrow = debt_bid.max(auction.debt);
        self.chain.fund(keeper.address, Token::DAI, escrow);
        let gas = self.chain.gas_market_mut().competitive_bid(0.2);
        let (Some(oracle), Some(protocol)) = (
            self.oracles.get(&platform),
            self.protocols.get_mut(&platform),
        ) else {
            return;
        };
        let chain = &mut self.chain;
        let address = keeper.address;
        let request = LiquidationRequest::AuctionBid {
            bidder: address,
            auction_id: auction.id,
            debt_bid,
            collateral_bid,
        };
        chain.execute(
            address,
            gas,
            self.config.auction_gas,
            "auction-bid",
            |ctx| {
                protocol
                    .execute_liquidation(ctx.ledger, ctx.events, oracle, ctx.block, &request)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        );
    }

    // --------------------------------------------------------------- behavior

    /// Trickle USD-denominated inventory back into every liquidator slot the
    /// behavioural layer has touched, capped at the initial endowment.
    fn replenish_behavior_inventory(&mut self) {
        let Some(behavior) = self.behavior.as_mut() else {
            return;
        };
        let oracle = &self.market_oracle;
        behavior.replenish(|token| oracle.price_or_zero(token).to_f64());
    }

    /// When the market gaps down hard within one tick, panic-prone borrowers
    /// deleverage en masse regardless of their own health factor, each gated
    /// by the panic-probability draw.
    fn run_market_panic_exits(&mut self, _block: BlockNumber) {
        let eth_price = self.market_oracle.price_or_zero(Token::ETH).to_f64();
        let triggered = match self.behavior.as_mut() {
            Some(behavior) => behavior.market_panic_triggered(eth_price),
            None => return,
        };
        if !triggered {
            return;
        }
        let candidates: Vec<(Platform, Address, Token, Option<Token>)> = self
            .borrowers
            .iter()
            .filter(|b| b.panic_exiter && !b.retired)
            .map(|b| {
                (
                    b.platform,
                    b.address,
                    b.debt_token,
                    b.collateral_tokens.first().copied(),
                )
            })
            .collect();
        for (platform, address, debt_token, primary_collateral) in candidates {
            let panics = match self.behavior.as_mut() {
                Some(behavior) => behavior.draw_panic(),
                None => false,
            };
            if !panics {
                continue;
            }
            let debt_value = {
                let (Some(oracle), Some(protocol)) =
                    (self.oracles.get(&platform), self.protocols.get(&platform))
                else {
                    continue;
                };
                match protocol.position(oracle, address) {
                    Some(position) => position.total_debt_value(),
                    None => continue,
                }
            };
            if debt_value.is_zero() {
                continue;
            }
            self.panic_deleverage(
                platform,
                address,
                debt_token,
                primary_collateral,
                debt_value,
            );
        }
    }

    /// A panicking borrower repays a large slice of their debt with the
    /// proceeds of selling collateral into the market: the repay goes through
    /// the protocol, and the matching collateral sale joins the tick's
    /// sell-pressure queue (feeding the spiral in feedback scenarios).
    fn panic_deleverage(
        &mut self,
        platform: Platform,
        address: Address,
        debt_token: Token,
        primary_collateral: Option<Token>,
        debt_value: Wad,
    ) {
        let fraction = match self.behavior.as_ref() {
            Some(behavior) => behavior.config.panic_deleverage_fraction.clamp(0.0, 1.0),
            None => return,
        };
        let repay_usd = debt_value.to_f64() * fraction;
        if repay_usd <= 0.0 {
            return;
        }
        let Some(oracle) = self.oracles.get(&platform) else {
            return;
        };
        let debt_price = oracle.price_or_zero(debt_token).to_f64().max(1e-9);
        let collateral_price = primary_collateral
            .map(|token| oracle.price_or_zero(token).to_f64().max(1e-9))
            .unwrap_or(1.0);
        let amount = Wad::from_f64(repay_usd / debt_price);
        // Panicking borrowers bid hot — they want out *now*.
        let gas = self.chain.gas_market_mut().competitive_bid(0.3);
        self.chain.fund(address, debt_token, amount);
        let Some(protocol) = self.protocols.get_mut(&platform) else {
            return;
        };
        let chain = &mut self.chain;
        let outcome = chain.execute(
            address,
            gas,
            self.config.user_op_gas,
            "panic-repay",
            |ctx| {
                protocol
                    .repay(
                        ctx.ledger, ctx.events, ctx.block, address, debt_token, amount,
                    )
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        );
        if outcome.is_success() {
            if let Some(token) = primary_collateral {
                let sell_amount = Wad::from_f64(repay_usd / collateral_price);
                self.pending_sell_pressure.push((token, sell_amount));
            }
            if let Some(behavior) = self.behavior.as_mut() {
                behavior.record_panic_exit(repay_usd);
            }
        }
    }

    // --------------------------------------------------------------- feedback

    /// The liquidation-spiral pass: sell every lot of collateral seized this
    /// tick through the DEX and feed the realised pool price impact back into
    /// the market scenario. The swap is executed (not just quoted) so pool
    /// depth depletes across ticks — sustained liquidation pressure has a
    /// compounding impact, which is the toxic-spiral dynamic. Tokens without
    /// a DEX route are *counted* into `feedback_skipped` rather than silently
    /// dropped. No-op unless the scenario enables
    /// [`SellPressureFeedback`](defi_oracle::SellPressureFeedback).
    fn apply_sell_pressure_feedback(&mut self) {
        if self.scenario.feedback().is_none() || self.pending_sell_pressure.is_empty() {
            self.pending_sell_pressure.clear();
            return;
        }
        let mut by_token: BTreeMap<Token, Wad> = BTreeMap::new();
        for (token, amount) in self.pending_sell_pressure.drain(..) {
            let entry = by_token.entry(token).or_insert(Wad::ZERO);
            *entry = entry.saturating_add(amount);
        }
        for (token, amount) in by_token {
            if amount.is_zero() {
                continue;
            }
            // Stablecoin lots unwind into ETH, everything else into DAI (the
            // deepest legs of the standard DEX).
            let target = if matches!(token, Token::DAI | Token::USDC | Token::USDT) {
                Token::ETH
            } else {
                Token::DAI
            };
            match self.settle_pressure_sale(token, target, amount) {
                Ok(price_impact) => self.scenario.apply_sell_pressure(token, price_impact),
                Err(_) => self.record_skipped_pressure(token, amount),
            }
        }
    }

    /// Quote, then execute, one sell-pressure lot. Any failure — no route, or
    /// a swap error after a successful quote — leaves the ledger exactly as
    /// it was and surfaces as an `Err` for the skip accounting.
    fn settle_pressure_sale(
        &mut self,
        token: Token,
        target: Token,
        amount: Wad,
    ) -> Result<f64, String> {
        let quote = self
            .dex
            .quote(self.chain.ledger(), token, target, amount)
            .map_err(|e| e.to_string())?;
        self.execute_pressure_sale(token, target, amount)?;
        Ok(quote.price_impact)
    }

    /// Execute one pressure sale under a ledger checkpoint: the sold lot is
    /// minted to the spiral trader, and if the swap fails — including a
    /// multi-hop route that dies after its first hop executed — the
    /// checkpoint revert unwinds both the mint and any partial hop, so total
    /// supply is conserved on every path.
    fn execute_pressure_sale(
        &mut self,
        token: Token,
        target: Token,
        amount: Wad,
    ) -> Result<(), String> {
        let trader = self.spiral_trader;
        let ledger = self.chain.ledger_mut();
        ledger.begin_checkpoint();
        ledger.mint(trader, token, amount);
        match self.dex.swap(ledger, trader, token, target, amount) {
            Ok(_) => {
                ledger.commit_checkpoint();
                Ok(())
            }
            Err(error) => {
                ledger.revert_checkpoint();
                Err(error.to_string())
            }
        }
    }

    /// Accumulate a lot the feedback pass could not route (no-silent-caps:
    /// truncated spiral pressure must be visible in the run summary).
    fn record_skipped_pressure(&mut self, token: Token, amount: Wad) {
        let price = self.market_oracle.price_or_zero(token);
        let usd = amount.checked_mul(price).unwrap_or(Wad::ZERO);
        let entry = self.feedback_skipped.entry(token).or_default();
        entry.amount = entry.amount.saturating_add(amount);
        entry.usd = entry.usd.saturating_add(usd);
        entry.lots += 1;
    }

    /// Map settlement events appended at or after `from_index` to the health
    /// factor their borrower had at discovery (fixed-spread, passed in) or at
    /// bite time (auctions, resolved through `auction_bite_hf`), for
    /// observers that verify liquidations only happen below the threshold.
    fn record_liquidation_context(&mut self, from_index: usize, fixed_spread_hf: Option<Wad>) {
        let mut contexts = Vec::new();
        for (offset, logged) in self
            .chain
            .events()
            .as_slice()
            .get(from_index..)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            match logged.event {
                ChainEvent::Liquidation(_) => {
                    if let Some(hf) = fixed_spread_hf {
                        contexts.push((from_index + offset, hf));
                    }
                }
                ChainEvent::AuctionFinalized { auction_id, .. } => {
                    if let Some(hf) = self.auction_bite_hf.get(&auction_id) {
                        contexts.push((from_index + offset, *hf));
                    }
                }
                _ => {}
            }
        }
        for (index, hf) in contexts {
            self.liquidation_hf.insert(index, hf);
        }
    }

    // ------------------------------------------------------------- sampling

    fn sample_volumes(&mut self, block: BlockNumber) {
        for (platform, protocol) in self.protocols.iter_mut() {
            let Some(oracle) = self.oracles.get(platform) else {
                continue;
            };
            // Running totals maintained by each protocol's incremental book —
            // sampling no longer materialises the position vector.
            let totals = protocol.book_totals(oracle);
            self.volume_samples.push(VolumeSample {
                block,
                platform: *platform,
                total_collateral_usd: totals.collateral_usd,
                dai_eth_collateral_usd: totals.dai_eth_collateral_usd,
                open_positions: totals.open_positions,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;
    use defi_chain::{EventFilter, EventKind};

    fn smoke_report(seed: u64) -> SimulationReport {
        SimulationEngine::new(SimConfig::smoke_test(seed)).run()
    }

    #[test]
    fn smoke_scenario_produces_liquidations() {
        let report = smoke_report(42);
        let liquidations = report
            .chain
            .query_events(&EventFilter::any().kind(EventKind::Liquidation))
            .len();
        let auctions = report
            .chain
            .query_events(&EventFilter::any().kind(EventKind::AuctionFinalized))
            .len();
        assert!(
            liquidations > 10,
            "expected fixed-spread liquidations across the March 2020 crash, got {liquidations}"
        );
        assert!(
            auctions > 0,
            "expected at least one finalised Maker auction"
        );
    }

    #[test]
    fn smoke_scenario_records_volumes_and_positions() {
        let report = smoke_report(43);
        assert!(!report.volume_samples.is_empty());
        // Every platform with borrowers shows up in the final snapshot.
        assert!(report.final_positions.contains_key(&Platform::Compound));
        assert!(report.final_positions.contains_key(&Platform::MakerDao));
        let open: usize = report.final_positions.values().map(|v| v.len()).sum();
        assert!(
            open > 10,
            "expected open positions at the snapshot, got {open}"
        );
        assert!(report.snapshot_block >= report.config.end_block);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = smoke_report(7);
        let b = smoke_report(7);
        assert_eq!(a.chain.events().len(), b.chain.events().len());
        assert_eq!(a.volume_samples.len(), b.volume_samples.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = smoke_report(1);
        let b = smoke_report(2);
        // Not a strict requirement, but overwhelmingly likely.
        assert_ne!(a.chain.events().len(), b.chain.events().len());
    }

    #[test]
    fn market_oracle_has_full_history() {
        let report = smoke_report(44);
        let history = report.market_oracle.history(Token::ETH);
        assert!(history.len() as u64 >= report.config.tick_count() - 2);
    }

    #[test]
    fn liquidation_events_carry_gas_prices() {
        let report = smoke_report(45);
        for (logged, _) in report.chain.events().liquidations() {
            assert!(logged.gas_price > 0);
            assert_eq!(logged.gas_used, report.config.liquidation_gas);
        }
    }

    #[test]
    fn builder_engine_matches_default_construction() {
        let direct = smoke_report(11);
        let built = EngineBuilder::new(SimConfig::smoke_test(11)).build().run();
        assert_eq!(direct.chain.events().len(), built.chain.events().len());
        assert_eq!(direct.volume_samples.len(), built.volume_samples.len());
    }

    #[test]
    fn failed_pressure_sale_conserves_total_supply() {
        // WBTC -> MKR quotes through the WBTC/ETH pool but has no ETH/MKR
        // pool to finish on, so the swap dies after its first hop executed.
        // The checkpoint revert must unwind both the funding mint and the
        // partial hop: total supply of every involved token is unchanged and
        // the spiral trader ends flat.
        let mut engine = EngineBuilder::new(SimConfig::smoke_test(21))
            .with_named_scenario("liquidation-spiral")
            .build();
        engine.seed_initial_prices();
        let trader = engine.spiral_trader;
        let supply_before: Vec<Wad> = [Token::WBTC, Token::ETH, Token::MKR]
            .iter()
            .map(|token| engine.chain.ledger().total_supply(*token))
            .collect();

        let result = engine.execute_pressure_sale(Token::WBTC, Token::MKR, Wad::from_f64(2.0));
        assert!(result.is_err(), "no ETH/MKR pool: the swap must fail");

        for (token, before) in [Token::WBTC, Token::ETH, Token::MKR]
            .iter()
            .zip(supply_before)
        {
            assert_eq!(
                engine.chain.ledger().total_supply(*token),
                before,
                "{token}: forced swap failure leaked supply"
            );
            assert!(
                engine.chain.ledger().balance(trader, *token).is_zero(),
                "{token}: spiral trader kept a residual balance"
            );
        }
    }

    #[test]
    fn unroutable_sell_pressure_is_counted_not_dropped() {
        // LINK has no DEX route at all; the feedback pass must surface the
        // skipped volume instead of silently discarding it.
        let mut engine = EngineBuilder::new(SimConfig::smoke_test(22))
            .with_named_scenario("liquidation-spiral")
            .build();
        engine.seed_initial_prices();
        engine
            .pending_sell_pressure
            .push((Token::LINK, Wad::from_f64(100.0)));
        engine.apply_sell_pressure_feedback();
        let skipped = engine
            .feedback_skipped
            .get(&Token::LINK)
            .expect("LINK lot recorded as skipped");
        assert_eq!(skipped.lots, 1);
        assert_eq!(skipped.amount, Wad::from_f64(100.0));
        assert!(
            skipped.usd > Wad::ZERO,
            "skipped volume valued at the market price"
        );
    }

    #[test]
    fn agent_populations_are_identical_across_book_workers() {
        // Population sampling must not depend on the book-worker throughput
        // knob (or anything else outside seed + identity).
        let serial = SimConfig::smoke_test(23);
        let mut sharded = SimConfig::smoke_test(23);
        sharded.book_workers = 4;
        let a = SimulationEngine::new(serial);
        let b = SimulationEngine::new(sharded);
        assert_eq!(a.liquidators, b.liquidators);
        assert_eq!(a.keepers, b.keepers);
    }

    #[test]
    fn engine_without_maker_runs_fixed_spread_only() {
        let report = EngineBuilder::new(SimConfig::smoke_test(13))
            .without_protocol(Platform::MakerDao)
            .build()
            .run();
        assert!(!report.final_positions.contains_key(&Platform::MakerDao));
        let auctions = report
            .chain
            .query_events(&EventFilter::any().kind(EventKind::AuctionStarted))
            .len();
        assert_eq!(auctions, 0, "no auction platform, no auctions");
        let liquidations = report
            .chain
            .query_events(&EventFilter::any().kind(EventKind::Liquidation))
            .len();
        assert!(liquidations > 0);
    }
}
