//! Behavioural agent layer: capital-constrained liquidators, latency
//! staggering and borrower panic exits.
//!
//! The baseline engine models liquidators as perfectly-capitalized bots that
//! act the instant a position crosses HF < 1. The paper's instability results
//! (§5–6) hinge on the opposite: cascades are shaped by *who shows up with
//! what capital*. This module holds the state for that richer model:
//!
//! - **Inventory**: each liquidator carries finite per-token inventory that
//!   depletes as it funds repayments and replenishes at a configurable USD
//!   rate per tick. A bot can run out mid-cascade; the opportunity stays
//!   queued until someone can fund it or it goes stale.
//! - **Latency**: a discovered [`Opportunity`](defi_lending::Opportunity) is
//!   not executed immediately — it is queued, and the first agent whose
//!   latency has elapsed (ties broken by address) and whose inventory covers
//!   the repay executes it. Stale opportunities re-check HF at execution and
//!   are dropped if the position recovered.
//! - **Panic exits**: a configurable share of borrowers deleverage hard when
//!   their HF or the market drops past a threshold, selling collateral into
//!   the DEX and adding to the spiral's sell pressure.
//!
//! Everything here is deterministic: the layer owns its own `StdRng` derived
//! from the run seed, and no decision depends on map iteration order or
//! `book_workers`. None of this state is journaled — like the worker count it
//! is reconstructed from `SimConfig` on replay (see CONTRACTS.md).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use defi_types::{Address, Platform, Token, Wad};

/// Role tag for the behaviour layer's RNG stream (see `agents::derive_seed`).
const TAG_BEHAVIOR: u64 = 0xBEE5_0004;

fn default_inventory_usd() -> f64 {
    250_000.0
}
fn default_replenish_usd() -> f64 {
    25_000.0
}
fn default_max_latency() -> u64 {
    3
}
fn default_ttl() -> u64 {
    8
}
fn default_panic_hf() -> f64 {
    1.03
}
fn default_panic_market_drop() -> f64 {
    0.08
}
fn default_panic_probability() -> f64 {
    0.35
}
fn default_panic_deleverage_fraction() -> f64 {
    0.5
}
fn default_panic_share() -> f64 {
    0.2
}

/// Configuration for the behavioural agent layer. Disabled by default; the
/// baseline engine then behaves exactly as before.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Master switch. When false every other field is ignored.
    #[serde(default)]
    pub enabled: bool,
    /// Initial per-token inventory of each liquidator, valued in USD at the
    /// price when the token is first needed. Also the replenishment cap.
    #[serde(default = "default_inventory_usd")]
    pub liquidator_inventory_usd: f64,
    /// USD worth of each touched token restored to a liquidator per tick,
    /// capped at the initial inventory.
    #[serde(default = "default_replenish_usd")]
    pub inventory_replenish_per_tick_usd: f64,
    /// Upper bound for sampled per-agent reaction latency, in ticks.
    #[serde(default = "default_max_latency")]
    pub max_latency_ticks: u64,
    /// Ticks a queued opportunity survives before being dropped as stale.
    #[serde(default = "default_ttl")]
    pub opportunity_ttl_ticks: u64,
    /// Health factor below which a panic-prone borrower considers exiting.
    /// Must sit below the rescue band (1.05) so ordinary management still
    /// fires first for calm borrowers.
    #[serde(default = "default_panic_hf")]
    pub panic_hf: f64,
    /// Per-tick ETH return at or below `-panic_market_drop` triggers a
    /// market-wide panic among panic-prone borrowers.
    #[serde(default = "default_panic_market_drop")]
    pub panic_market_drop: f64,
    /// Probability a panic-prone borrower actually exits once triggered.
    #[serde(default = "default_panic_probability")]
    pub panic_probability: f64,
    /// Fraction of outstanding debt repaid (and matching collateral sold)
    /// in a panic exit.
    #[serde(default = "default_panic_deleverage_fraction")]
    pub panic_deleverage_fraction: f64,
    /// Share of sampled borrowers that are panic-prone.
    #[serde(default = "default_panic_share")]
    pub panic_share: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            liquidator_inventory_usd: default_inventory_usd(),
            inventory_replenish_per_tick_usd: default_replenish_usd(),
            max_latency_ticks: default_max_latency(),
            opportunity_ttl_ticks: default_ttl(),
            panic_hf: default_panic_hf(),
            panic_market_drop: default_panic_market_drop(),
            panic_probability: default_panic_probability(),
            panic_deleverage_fraction: default_panic_deleverage_fraction(),
            panic_share: default_panic_share(),
        }
    }
}

impl BehaviorConfig {
    /// Enabled layer with realistically scarce liquidator capital: bots hold
    /// ~$60k per token and trickle back $4k/tick, so a deep cascade exhausts
    /// them mid-run.
    pub fn capital_constrained() -> Self {
        Self {
            enabled: true,
            liquidator_inventory_usd: 60_000.0,
            inventory_replenish_per_tick_usd: 4_000.0,
            ..Self::default()
        }
    }

    /// Enabled layer whose inventory never binds — the control arm for the
    /// capital-constraint experiments. Latency, TTLs and panic behaviour are
    /// identical to [`Self::capital_constrained`], so the two runs consume
    /// identical RNG streams until the inventory constraint bites.
    pub fn perfectly_capitalized() -> Self {
        Self {
            enabled: true,
            liquidator_inventory_usd: 1e13,
            inventory_replenish_per_tick_usd: 1e12,
            ..Self::default()
        }
    }
}

/// Per-token inventory slot of one liquidator.
#[derive(Debug, Clone, Copy)]
struct TokenInventory {
    available: Wad,
    cap: Wad,
}

/// Capital book of one liquidator.
#[derive(Debug, Clone, Default)]
struct LiquidatorCapital {
    tokens: BTreeMap<Token, TokenInventory>,
    exhaustions: u32,
}

/// A discovered liquidation opportunity waiting out agent latency.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingOpportunity {
    pub platform: Platform,
    pub borrower: Address,
    pub discovered_block: u64,
    pub expires_at_block: u64,
}

/// Counters the behaviour layer accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BehaviorStats {
    /// Opportunities that entered the latency queue.
    pub opportunities_queued: u64,
    /// Opportunities executed after their latency elapsed.
    pub executed_delayed: u64,
    /// Queued opportunities dropped because the position recovered or the
    /// TTL lapsed before anyone could act.
    pub stale_dropped: u64,
    /// Times every latency-elapsed liquidator lacked inventory to fund a
    /// repay (the opportunity was requeued).
    pub inventory_exhaustions: u64,
    /// Borrower panic exits executed.
    pub panic_exits: u64,
    /// USD of collateral panic exits pushed into the sell-pressure queue.
    pub panic_sell_usd: f64,
}

/// Per-liquidator capital outcome, reported at the end of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentCapital {
    /// Liquidator identity.
    pub address: Address,
    /// Times this specific agent was latency-ready but could not fund a repay.
    pub exhaustions: u32,
}

/// End-of-run report of the behavioural layer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BehaviorReport {
    /// Aggregate counters.
    pub stats: BehaviorStats,
    /// Capital-exhaustion counts per liquidator, sorted by address; only
    /// agents that exhausted at least once are listed.
    pub agents: Vec<AgentCapital>,
}

/// Engine-side state of the behavioural layer.
#[derive(Debug)]
pub(crate) struct BehaviorEngine {
    pub(crate) config: BehaviorConfig,
    rng: StdRng,
    capital: BTreeMap<Address, LiquidatorCapital>,
    queue: VecDeque<PendingOpportunity>,
    queued_keys: BTreeSet<(Platform, Address)>,
    last_eth_price: Option<f64>,
    tick_blocks: u64,
    pub(crate) stats: BehaviorStats,
}

impl BehaviorEngine {
    pub(crate) fn new(config: BehaviorConfig, run_seed: u64) -> Self {
        let seed = crate::agents::derive_seed(run_seed, TAG_BEHAVIOR, 0);
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            capital: BTreeMap::new(),
            queue: VecDeque::new(),
            queued_keys: BTreeSet::new(),
            last_eth_price: None,
            tick_blocks: 1,
            stats: BehaviorStats::default(),
        }
    }

    /// Queue a discovered opportunity unless an entry for the same
    /// `(platform, borrower)` is already pending.
    pub(crate) fn queue(&mut self, platform: Platform, borrower: Address, block: u64) {
        if !self.queued_keys.insert((platform, borrower)) {
            return;
        }
        let ttl_blocks = self
            .config
            .opportunity_ttl_ticks
            .saturating_mul(self.tick_blocks.max(1));
        self.queue.push_back(PendingOpportunity {
            platform,
            borrower,
            discovered_block: block,
            expires_at_block: block.saturating_add(ttl_blocks),
        });
        self.stats.opportunities_queued += 1;
    }

    /// Drain the pending entries for one platform, removing them from the
    /// dedupe set. Entries the caller cannot act on yet must be re-queued
    /// with [`Self::requeue`].
    pub(crate) fn take_platform_queue(&mut self, platform: Platform) -> Vec<PendingOpportunity> {
        let mut taken = Vec::new();
        let mut rest = VecDeque::with_capacity(self.queue.len());
        for entry in self.queue.drain(..) {
            if entry.platform == platform {
                self.queued_keys.remove(&(entry.platform, entry.borrower));
                taken.push(entry);
            } else {
                rest.push_back(entry);
            }
        }
        self.queue = rest;
        taken
    }

    /// Put an entry back on the queue (inventory shortfall or latency not yet
    /// elapsed), preserving its discovery block and TTL.
    pub(crate) fn requeue(&mut self, entry: PendingOpportunity) {
        if self.queued_keys.insert((entry.platform, entry.borrower)) {
            self.queue.push_back(entry);
        }
    }

    /// Whether `liquidator` holds at least `amount` of `token`, lazily
    /// seeding the inventory slot at the current price on first touch.
    pub(crate) fn can_cover(
        &mut self,
        liquidator: Address,
        token: Token,
        amount: Wad,
        price: f64,
    ) -> bool {
        let slot = self.slot(liquidator, token, price);
        slot.available >= amount
    }

    /// Deduct `amount` of `token` from `liquidator`'s inventory.
    pub(crate) fn consume(&mut self, liquidator: Address, token: Token, amount: Wad, price: f64) {
        let slot = self.slot(liquidator, token, price);
        slot.available = slot.available.saturating_sub(amount);
    }

    /// Record that a latency-ready cohort could not fund a repay.
    pub(crate) fn record_exhaustion(&mut self, agents: &[Address]) {
        self.stats.inventory_exhaustions += 1;
        for address in agents {
            self.capital.entry(*address).or_default().exhaustions += 1;
        }
    }

    /// Replenish every previously-touched inventory slot by the configured
    /// USD rate at the given price-lookup, capped at the slot's cap.
    pub(crate) fn replenish(&mut self, mut price_of: impl FnMut(Token) -> f64) {
        let usd = self.config.inventory_replenish_per_tick_usd;
        if usd <= 0.0 {
            return;
        }
        for capital in self.capital.values_mut() {
            for (token, slot) in capital.tokens.iter_mut() {
                let price = price_of(*token);
                if price <= 0.0 {
                    continue;
                }
                let topup = Wad::from_f64(usd / price);
                slot.available = slot.available.saturating_add(topup).min(slot.cap);
            }
        }
    }

    /// Draw the panic gate for one triggered borrower.
    pub(crate) fn draw_panic(&mut self) -> bool {
        self.rng
            .gen_bool(self.config.panic_probability.clamp(0.0, 1.0))
    }

    /// Track the per-tick ETH return; returns true when it drops at or below
    /// `-panic_market_drop`, signalling a market-wide panic.
    pub(crate) fn market_panic_triggered(&mut self, eth_price: f64) -> bool {
        let triggered = match self.last_eth_price {
            Some(last) if last > 0.0 => (eth_price - last) / last <= -self.config.panic_market_drop,
            _ => false,
        };
        self.last_eth_price = Some(eth_price);
        triggered
    }

    pub(crate) fn record_panic_exit(&mut self, sell_usd: f64) {
        self.stats.panic_exits += 1;
        self.stats.panic_sell_usd += sell_usd;
    }

    pub(crate) fn into_report(self) -> BehaviorReport {
        let agents = self
            .capital
            .into_iter()
            .filter(|(_, c)| c.exhaustions > 0)
            .map(|(address, c)| AgentCapital {
                address,
                exhaustions: c.exhaustions,
            })
            .collect();
        BehaviorReport {
            stats: self.stats,
            agents,
        }
    }

    fn slot(&mut self, liquidator: Address, token: Token, price: f64) -> &mut TokenInventory {
        let initial_usd = self.config.liquidator_inventory_usd;
        self.capital
            .entry(liquidator)
            .or_default()
            .tokens
            .entry(token)
            .or_insert_with(|| {
                let units = if price > 0.0 {
                    Wad::from_f64(initial_usd / price)
                } else {
                    Wad::ZERO
                };
                TokenInventory {
                    available: units,
                    cap: units,
                }
            })
    }
}

// `tick_blocks` is stamped by the engine at construction (the config does not
// know the tick size); kept as a plain field to avoid threading it through
// every `queue` call.
impl BehaviorEngine {
    pub(crate) fn with_tick_blocks(mut self, tick_blocks: u64) -> Self {
        self.tick_blocks = tick_blocks;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(config: BehaviorConfig) -> BehaviorEngine {
        BehaviorEngine::new(config, 9).with_tick_blocks(600)
    }

    #[test]
    fn inventory_depletes_and_replenishes_to_cap() {
        let mut b = engine(BehaviorConfig {
            enabled: true,
            liquidator_inventory_usd: 1_000.0,
            inventory_replenish_per_tick_usd: 400.0,
            ..BehaviorConfig::default()
        });
        let bot = Address::from_label("bot");
        // $1000 at price 2.0 -> 500 units.
        assert!(b.can_cover(bot, Token::DAI, Wad::from_f64(500.0), 2.0));
        assert!(!b.can_cover(bot, Token::DAI, Wad::from_f64(500.5), 2.0));
        b.consume(bot, Token::DAI, Wad::from_f64(500.0), 2.0);
        assert!(!b.can_cover(bot, Token::DAI, Wad::from_f64(1.0), 2.0));
        // $400/tick at price 2.0 -> 200 units per replenish, capped at 500.
        b.replenish(|_| 2.0);
        assert!(b.can_cover(bot, Token::DAI, Wad::from_f64(200.0), 2.0));
        for _ in 0..10 {
            b.replenish(|_| 2.0);
        }
        assert!(b.can_cover(bot, Token::DAI, Wad::from_f64(500.0), 2.0));
        assert!(!b.can_cover(bot, Token::DAI, Wad::from_f64(500.5), 2.0));
    }

    #[test]
    fn queue_dedupes_and_takes_per_platform() {
        let mut b = engine(BehaviorConfig::capital_constrained());
        let borrower = Address::from_seed(1);
        b.queue(Platform::Compound, borrower, 100);
        b.queue(Platform::Compound, borrower, 101);
        b.queue(Platform::AaveV1, borrower, 100);
        assert_eq!(b.stats.opportunities_queued, 2);
        let compound = b.take_platform_queue(Platform::Compound);
        assert_eq!(compound.len(), 1);
        assert_eq!(compound[0].discovered_block, 100);
        // TTL: 8 ticks of 600 blocks.
        assert_eq!(compound[0].expires_at_block, 100 + 8 * 600);
        // Taken entries may be re-queued; the dedupe slot was freed.
        b.requeue(compound[0]);
        assert_eq!(b.take_platform_queue(Platform::Compound).len(), 1);
        assert_eq!(b.take_platform_queue(Platform::AaveV1).len(), 1);
    }

    #[test]
    fn market_panic_fires_on_large_drop_only() {
        let mut b = engine(BehaviorConfig::default());
        assert!(!b.market_panic_triggered(170.0));
        assert!(!b.market_panic_triggered(165.0)); // -2.9%
        assert!(b.market_panic_triggered(150.0)); // -9.1%
        assert!(!b.market_panic_triggered(149.0));
    }

    #[test]
    fn report_lists_only_exhausted_agents_sorted() {
        let mut b = engine(BehaviorConfig::capital_constrained());
        let a1 = Address::from_seed(2);
        let a2 = Address::from_seed(3);
        // Touch a1 without exhausting it.
        let _ = b.can_cover(a1, Token::ETH, Wad::from_f64(1.0), 170.0);
        b.record_exhaustion(&[a2]);
        b.record_exhaustion(&[a2]);
        let report = b.into_report();
        assert_eq!(report.stats.inventory_exhaustions, 2);
        assert_eq!(report.agents.len(), 1);
        assert_eq!(report.agents[0].address, a2);
        assert_eq!(report.agents[0].exhaustions, 2);
    }
}
