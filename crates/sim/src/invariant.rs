//! Per-tick conservation and solvency invariant checking.
//!
//! [`InvariantObserver`] is a [`SimObserver`] that audits a run as it
//! streams, independently of the analytics pipeline. It is attached to every
//! scenario-catalog entry in CI (`repro --check-invariants`) so that engine
//! or protocol drift — a claim rule that over-pays, an auction settling more
//! than its lot, a valuation that desynchronises from the oracle — fails the
//! build instead of silently skewing the measurements.
//!
//! Checked invariants:
//!
//! * **event stream** (every tick, no extra cost):
//!   event blocks are monotone; user-operation and settlement amounts are
//!   strictly positive; fixed-spread settlements obey the Eq. 1 claim rule
//!   envelope `repaid ≤ seized ≤ repaid × (1 + LS)` against the *seized
//!   market's own* liquidation spread (learned from the run-start context or
//!   [`InvariantObserver::with_market_spread`]; markets the observer has no
//!   spread for fall back to the global `MAX_SPREAD` worst case); oracle
//!   pushes carry positive prices; settlement transactions carry real gas
//!   context;
//! * **auction lifecycle**: bids and settlements reference started,
//!   un-finalised auctions; bids never exceed the lot; a settlement never
//!   pays out more collateral (or recovers more debt) than the lot that was
//!   put up at `bite`; no double finalisation;
//! * **liquidation only below the threshold**: every settlement observed via
//!   [`SimObserver::on_liquidation`] must carry a discovery health factor
//!   below 1 (the engine records it when the opportunity is found);
//! * **per-tick state** (via [`SimObserver::on_tick_end`], which the observer
//!   opts into): the chain head matches the tick block; every position book
//!   entry values its holdings at the platform oracle's current price (no
//!   stale or saturated valuations — the "no negative balances" failure mode
//!   of unsigned arithmetic is a saturated blow-up, which the sanity ceiling
//!   catches); health factors exist exactly for indebted positions and agree
//!   with `is_liquidatable`; and no DEX pool is drained to zero on either
//!   side (pool reserves *are* ledger balances since they moved into the
//!   journaled ledger, so reserve-vs-ledger conservation now holds by
//!   construction and depletion is the remaining failure mode).
//!
//! Violations are recorded (not panicked) by default so a run can be audited
//! post-hoc; [`InvariantObserver::strict`] panics at the first violation.

use std::collections::BTreeMap;

use defi_chain::{ChainEvent, LoggedEvent};
use defi_types::{BlockNumber, Platform, Token, Wad};

use crate::observer::{LiquidationObservation, RunEnd, RunStart, SimObserver, TickEnd};

/// Fallback upper bound on any plausible fixed-spread bonus (the studied
/// platforms use 5–15 %; MakerDAO's penalty is 13 %), used only for markets
/// whose actual liquidation spread the observer was not given.
const MAX_SPREAD: f64 = 0.25;

/// Sanity ceiling on any single USD valuation (catches saturated u128
/// arithmetic masquerading as astronomically large balances).
const MAX_SANE_USD: f64 = 1e15;

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// Block at which the violation was observed.
    pub block: BlockNumber,
    /// Human-readable description of the broken invariant.
    pub description: String,
}

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "block {}: {}", self.block, self.description)
    }
}

/// Lot recorded when an auction starts, checked at every later step.
#[derive(Debug, Clone, Copy)]
struct AuctionLot {
    collateral: Wad,
    debt: Wad,
    finalized: bool,
}

/// `a ≤ b` up to fixed-point rounding dust.
fn le_dust(a: Wad, b: Wad) -> bool {
    a.to_f64() <= b.to_f64() * (1.0 + 1e-9) + 1e-9
}

/// `a ≈ b` within a relative tolerance.
fn approx(a: Wad, b: Wad, rel: f64) -> bool {
    let (a, b) = (a.to_f64(), b.to_f64());
    (a - b).abs() <= rel * a.abs().max(b.abs()).max(1.0)
}

/// Streaming invariant checker; see the module docs for the invariant list.
#[derive(Debug, Default)]
pub struct InvariantObserver {
    strict: bool,
    last_event_block: BlockNumber,
    auctions: BTreeMap<u64, AuctionLot>,
    /// Per-market liquidation spreads, keyed by (platform, collateral
    /// token); populated from the run-start context and/or
    /// [`with_market_spread`](InvariantObserver::with_market_spread).
    market_spreads: BTreeMap<(Platform, Token), Wad>,
    violations: Vec<InvariantViolation>,
}

impl InvariantObserver {
    /// A recording observer: violations accumulate and are inspected after
    /// the run via [`violations`](InvariantObserver::violations) /
    /// [`assert_clean`](InvariantObserver::assert_clean).
    pub fn new() -> Self {
        InvariantObserver::default()
    }

    /// A panicking observer: the first violation aborts the run with the
    /// violation as the panic message (CI mode).
    pub fn strict() -> Self {
        InvariantObserver {
            strict: true,
            ..InvariantObserver::default()
        }
    }

    /// Teach the observer one market's actual liquidation spread: Eq. 1
    /// settlements seizing `token` collateral on `platform` are then held to
    /// `repaid × (1 + spread)` instead of the global `MAX_SPREAD` envelope.
    /// Driven runs learn the whole table from the run-start context; this is
    /// for post-hoc audits of bare event streams.
    pub fn with_market_spread(mut self, platform: Platform, token: Token, spread: Wad) -> Self {
        self.market_spreads.insert((platform, token), spread);
        self
    }

    /// Every violation recorded so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Whether the run satisfied every invariant so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a summary if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "{} invariant violation(s): {}",
            self.violations.len(),
            self.violations
                .iter()
                .take(5)
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    fn report(&mut self, block: BlockNumber, description: String) {
        let violation = InvariantViolation { block, description };
        if self.strict {
            panic!("invariant violation at {violation}");
        }
        self.violations.push(violation);
    }

    fn check_positive(&mut self, block: BlockNumber, what: &str, amount: Wad) {
        if amount.is_zero() {
            self.report(block, format!("{what} has a zero amount"));
        }
    }
}

impl SimObserver for InvariantObserver {
    fn on_run_start(&mut self, run: &RunStart<'_>) {
        // Learn each market's actual liquidation spread; explicitly taught
        // spreads (with_market_spread) take precedence.
        for (&key, &spread) in &run.market_spreads {
            self.market_spreads.entry(key).or_insert(spread);
        }
    }

    fn on_event(&mut self, logged: &LoggedEvent) {
        let block = logged.block;
        if block < self.last_event_block {
            self.report(
                block,
                format!(
                    "event block regressed: {} after {}",
                    block, self.last_event_block
                ),
            );
        }
        self.last_event_block = self.last_event_block.max(block);

        match &logged.event {
            ChainEvent::Liquidation(event) => {
                if logged.gas_price == 0 || logged.gas_used == 0 {
                    self.report(block, "liquidation settled without gas context".to_string());
                }
                self.check_positive(block, "liquidation debt repaid", event.debt_repaid);
                self.check_positive(
                    block,
                    "liquidation collateral seized",
                    event.collateral_seized,
                );
                if event.collateral_seized_usd < event.debt_repaid_usd {
                    self.report(
                        block,
                        format!(
                            "claim rule violated: seized {} USD < repaid {} USD",
                            event.collateral_seized_usd, event.debt_repaid_usd
                        ),
                    );
                }
                // The seized market's own spread when known, the global
                // worst case otherwise.
                let spread = self
                    .market_spreads
                    .get(&(event.platform, event.collateral_token))
                    .map(|s| s.to_f64())
                    .unwrap_or(MAX_SPREAD);
                let envelope = Wad::from_f64(event.debt_repaid_usd.to_f64() * (1.0 + spread));
                if !le_dust(event.collateral_seized_usd, envelope) {
                    self.report(
                        block,
                        format!(
                            "claim rule violated: seized {} USD exceeds repaid {} USD × (1+{spread}) on {} {}",
                            event.collateral_seized_usd,
                            event.debt_repaid_usd,
                            event.platform,
                            event.collateral_token,
                        ),
                    );
                }
            }
            ChainEvent::AuctionStarted {
                auction_id,
                collateral_amount,
                debt,
                ..
            } => {
                self.check_positive(block, "auction lot collateral", *collateral_amount);
                self.check_positive(block, "auction lot debt", *debt);
                if self
                    .auctions
                    .insert(
                        *auction_id,
                        AuctionLot {
                            collateral: *collateral_amount,
                            debt: *debt,
                            finalized: false,
                        },
                    )
                    .is_some()
                {
                    self.report(block, format!("auction {auction_id} started twice"));
                }
            }
            ChainEvent::AuctionBid {
                auction_id,
                debt_bid,
                collateral_bid,
                ..
            } => match self.auctions.get(auction_id).copied() {
                None => self.report(block, format!("bid on unknown auction {auction_id}")),
                Some(lot) if lot.finalized => {
                    self.report(block, format!("bid on finalised auction {auction_id}"))
                }
                Some(lot) => {
                    if !le_dust(*debt_bid, lot.debt) {
                        self.report(
                            block,
                            format!(
                                "auction {auction_id} debt bid {} exceeds lot debt {}",
                                debt_bid, lot.debt
                            ),
                        );
                    }
                    if !le_dust(*collateral_bid, lot.collateral) {
                        self.report(
                            block,
                            format!(
                                "auction {auction_id} collateral bid {} exceeds lot {}",
                                collateral_bid, lot.collateral
                            ),
                        );
                    }
                }
            },
            ChainEvent::AuctionFinalized {
                auction_id,
                debt_repaid,
                collateral_received,
                started_at,
                ..
            } => {
                if *started_at > block {
                    self.report(
                        block,
                        format!("auction {auction_id} finalised before it started"),
                    );
                }
                match self.auctions.get_mut(auction_id) {
                    None => {
                        let id = *auction_id;
                        self.report(block, format!("settled unknown auction {id}"));
                    }
                    Some(lot) if lot.finalized => {
                        let id = *auction_id;
                        self.report(block, format!("auction {id} finalised twice"));
                    }
                    Some(lot) => {
                        lot.finalized = true;
                        let lot = *lot;
                        if !le_dust(*collateral_received, lot.collateral) {
                            self.report(
                                block,
                                format!(
                                    "auction {auction_id} paid out {} collateral, lot was {}",
                                    collateral_received, lot.collateral
                                ),
                            );
                        }
                        if !le_dust(*debt_repaid, lot.debt) {
                            self.report(
                                block,
                                format!(
                                    "auction {auction_id} recovered {} DAI, lot debt was {}",
                                    debt_repaid, lot.debt
                                ),
                            );
                        }
                    }
                }
            }
            ChainEvent::FlashLoan { amount, .. } => {
                self.check_positive(block, "flash loan", *amount);
            }
            ChainEvent::OracleUpdate { token, price } => {
                if price.is_zero() {
                    self.report(block, format!("oracle pushed a zero {token} price"));
                }
            }
            ChainEvent::Borrow { amount, .. } => self.check_positive(block, "borrow", *amount),
            ChainEvent::Deposit { amount, .. } => self.check_positive(block, "deposit", *amount),
            ChainEvent::Repay { amount, .. } => self.check_positive(block, "repay", *amount),
        }
    }

    fn on_liquidation(&mut self, liquidation: &LiquidationObservation<'_>) {
        let block = liquidation.logged.block;
        match liquidation.health_factor_before {
            Some(hf) if hf >= Wad::ONE => self.report(
                block,
                format!("liquidation of a healthy position (HF {hf} ≥ 1 at discovery)"),
            ),
            Some(_) => {}
            None => self.report(
                block,
                "liquidation settled without a recorded discovery health factor".to_string(),
            ),
        }
    }

    fn wants_tick_end(&self) -> bool {
        true
    }

    fn on_tick_end(&mut self, tick: &TickEnd<'_>) {
        let block = tick.block;
        if tick.chain.current_block() != block {
            self.report(
                block,
                format!(
                    "chain head {} does not match the tick block",
                    tick.chain.current_block()
                ),
            );
        }

        // Position books: valuations track the platform oracle, health
        // factors exist exactly for indebted positions, nothing saturated.
        for (platform, positions) in &tick.positions {
            let Some(oracle) = tick.oracles.get(platform) else {
                self.report(block, format!("{platform} book without an oracle"));
                continue;
            };
            for position in positions {
                let has_debt = !position.total_debt_value().is_zero();
                if has_debt && position.health_factor().is_none() {
                    self.report(
                        block,
                        format!("{platform}: indebted position without a health factor"),
                    );
                }
                if position.is_liquidatable()
                    && position.health_factor().map(|hf| hf >= Wad::ONE) == Some(true)
                {
                    self.report(
                        block,
                        format!("{platform}: position flagged liquidatable with HF ≥ 1"),
                    );
                }
                for holding in &position.collateral {
                    let expected = holding
                        .amount
                        .checked_mul(oracle.price_or_zero(holding.token))
                        .unwrap_or(Wad::MAX);
                    if !approx(holding.value_usd, expected, 1e-6) {
                        self.report(
                            block,
                            format!(
                                "{platform}: {} collateral valued {} USD, oracle says {}",
                                holding.token, holding.value_usd, expected
                            ),
                        );
                    }
                    if holding.value_usd.to_f64() > MAX_SANE_USD {
                        self.report(block, format!("{platform}: saturated collateral valuation"));
                    }
                }
                for holding in &position.debt {
                    // MakerDAO's vat accounts DAI debt at its 1-USD par
                    // price regardless of the market price.
                    let expected = if *platform == Platform::MakerDao && holding.token == Token::DAI
                    {
                        holding.amount
                    } else {
                        holding
                            .amount
                            .checked_mul(oracle.price_or_zero(holding.token))
                            .unwrap_or(Wad::MAX)
                    };
                    if !approx(holding.value_usd, expected, 1e-6) {
                        self.report(
                            block,
                            format!(
                                "{platform}: {} debt valued {} USD, oracle says {}",
                                holding.token, holding.value_usd, expected
                            ),
                        );
                    }
                    if holding.value_usd.to_f64() > MAX_SANE_USD {
                        self.report(block, format!("{platform}: saturated debt valuation"));
                    }
                }
            }
        }

        // AMM depletion: pool reserves *are* the pool account's journaled
        // ledger balances (reserve-vs-ledger conservation holds by
        // construction), so the remaining failure mode is a pool drained to
        // zero on one side — swaps against it would divide by an empty
        // reserve.
        let ledger = tick.chain.ledger();
        for pool in tick.dex.pools() {
            let config = pool.config();
            let (reserve_a, reserve_b) = pool.reserves(ledger);
            for (token, reserve) in [(config.token_a, reserve_a), (config.token_b, reserve_b)] {
                if reserve.is_zero() {
                    self.report(
                        block,
                        format!(
                            "DEX pool {} drained: zero {token} reserve",
                            pool.address.short(),
                        ),
                    );
                }
            }
        }
    }

    fn on_run_end(&mut self, end: &RunEnd<'_>) {
        // Every auction must resolve exactly once over a completed window;
        // an auction still open at the snapshot is fine (truncated runs), so
        // only structural double-settlement is checked here, which already
        // happened in the event pass. Record a final head check instead.
        if end.snapshot_block < self.last_event_block {
            self.report(
                end.snapshot_block,
                format!(
                    "snapshot block precedes the last event block {}",
                    self.last_event_block
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::{Address, Platform, Token, TxHash};

    fn logged(block: BlockNumber, event: ChainEvent) -> LoggedEvent {
        LoggedEvent {
            block,
            tx_index: 0,
            tx_hash: TxHash::derive(block, 0, 0),
            sender: Address::from_seed(1),
            gas_price: 50,
            gas_used: 400_000,
            event,
        }
    }

    fn liquidation_event(repaid_usd: u64, seized_usd: u64) -> ChainEvent {
        ChainEvent::Liquidation(defi_chain::LiquidationEvent {
            platform: Platform::Compound,
            liquidator: Address::from_seed(2),
            borrower: Address::from_seed(3),
            debt_token: Token::USDC,
            debt_repaid: Wad::from_int(repaid_usd),
            debt_repaid_usd: Wad::from_int(repaid_usd),
            collateral_token: Token::ETH,
            collateral_seized: Wad::ONE,
            collateral_seized_usd: Wad::from_int(seized_usd),
            used_flash_loan: false,
        })
    }

    #[test]
    fn clean_events_record_no_violations() {
        let mut observer = InvariantObserver::new();
        observer.on_event(&logged(10, liquidation_event(1_000, 1_080)));
        observer.on_event(&logged(
            11,
            ChainEvent::AuctionStarted {
                auction_id: 1,
                borrower: Address::from_seed(4),
                collateral_token: Token::ETH,
                collateral_amount: Wad::from_int(5),
                debt: Wad::from_int(9_000),
            },
        ));
        observer.on_event(&logged(
            12,
            ChainEvent::AuctionFinalized {
                auction_id: 1,
                winner: Address::from_seed(5),
                debt_repaid: Wad::from_int(9_000),
                debt_repaid_usd: Wad::from_int(9_000),
                collateral_token: Token::ETH,
                collateral_received: Wad::from_int(4),
                collateral_received_usd: Wad::from_int(10_000),
                borrower: Address::from_seed(4),
                started_at: 11,
                last_bid_at: 12,
                tend_bids: 1,
                dent_bids: 1,
                final_phase: defi_chain::AuctionPhase::Dent,
            },
        ));
        assert!(observer.is_clean(), "{:?}", observer.violations());
        observer.assert_clean();
    }

    #[test]
    fn claim_rule_violations_are_caught() {
        let mut observer = InvariantObserver::new();
        // Seized below repaid: negative spread.
        observer.on_event(&logged(10, liquidation_event(1_000, 900)));
        // Seized far above the spread envelope.
        observer.on_event(&logged(11, liquidation_event(1_000, 2_000)));
        assert_eq!(observer.violations().len(), 2);
    }

    #[test]
    fn auction_overpayment_and_double_settlement_are_caught() {
        let mut observer = InvariantObserver::new();
        observer.on_event(&logged(
            10,
            ChainEvent::AuctionStarted {
                auction_id: 7,
                borrower: Address::from_seed(4),
                collateral_token: Token::ETH,
                collateral_amount: Wad::from_int(5),
                debt: Wad::from_int(9_000),
            },
        ));
        let settle = |received: u64| ChainEvent::AuctionFinalized {
            auction_id: 7,
            winner: Address::from_seed(5),
            debt_repaid: Wad::from_int(9_000),
            debt_repaid_usd: Wad::from_int(9_000),
            collateral_token: Token::ETH,
            collateral_received: Wad::from_int(received),
            collateral_received_usd: Wad::from_int(10_000),
            borrower: Address::from_seed(4),
            started_at: 10,
            last_bid_at: 11,
            tend_bids: 1,
            dent_bids: 0,
            final_phase: defi_chain::AuctionPhase::Tend,
        };
        // Settles more collateral than the lot.
        observer.on_event(&logged(12, settle(6)));
        // Settles the same auction again.
        observer.on_event(&logged(13, settle(1)));
        assert_eq!(observer.violations().len(), 2);
        assert!(!observer.is_clean());
    }

    #[test]
    fn healthy_liquidation_is_a_violation() {
        let mut observer = InvariantObserver::new();
        let event = logged(10, liquidation_event(1_000, 1_080));
        observer.on_liquidation(&LiquidationObservation {
            logged: &event,
            eth_price: Wad::from_int(2_000),
            health_factor_before: Some(Wad::from_f64(1.2)),
        });
        assert_eq!(observer.violations().len(), 1);
        let mut observer = InvariantObserver::new();
        observer.on_liquidation(&LiquidationObservation {
            logged: &event,
            eth_price: Wad::from_int(2_000),
            health_factor_before: Some(Wad::from_f64(0.93)),
        });
        assert!(observer.is_clean());
    }

    /// A settlement whose spread exceeds the seized market's own bound trips
    /// the per-market envelope even when it sits inside the global
    /// `MAX_SPREAD` fallback.
    #[test]
    fn per_market_spread_tightens_the_claim_envelope() {
        // ETH on Compound pays a 10 % bonus; a 12 % seizure is inside the
        // 25 % global fallback but outside the market's own envelope.
        let mut observer = InvariantObserver::new().with_market_spread(
            Platform::Compound,
            Token::ETH,
            Wad::from_f64(0.10),
        );
        observer.on_event(&logged(10, liquidation_event(1_000, 1_120)));
        assert_eq!(observer.violations().len(), 1);
        assert!(observer.violations()[0].description.contains("claim rule"));

        // At exactly the market spread the same settlement is clean…
        let mut observer = InvariantObserver::new().with_market_spread(
            Platform::Compound,
            Token::ETH,
            Wad::from_f64(0.10),
        );
        observer.on_event(&logged(10, liquidation_event(1_000, 1_100)));
        assert!(observer.is_clean(), "{:?}", observer.violations());

        // …and a market the observer has no spread for keeps the fallback.
        let mut observer = InvariantObserver::new();
        observer.on_event(&logged(10, liquidation_event(1_000, 1_120)));
        assert!(observer.is_clean());
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn strict_mode_panics_immediately() {
        let mut observer = InvariantObserver::strict();
        observer.on_event(&logged(10, liquidation_event(1_000, 900)));
    }
}
