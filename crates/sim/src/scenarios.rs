//! The scenario catalog: named, composable stress scenarios.
//!
//! The paper's measurements hinge on three scripted episodes (the March 2020
//! crash, the November 2020 Compound DAI oracle irregularity, the February
//! 2021 volatility). The catalog generalises that into a library of named
//! market environments that every layer of the suite can address by name:
//!
//! * [`EngineBuilder::with_named_scenario`](crate::EngineBuilder::with_named_scenario)
//!   builds an engine against a catalog entry,
//! * `repro --scenario <name>` / `repro --list-scenarios` runs and lists them,
//! * [`SweepRunner::scenario_grid`](crate::SweepRunner::scenario_grid) fans
//!   the whole catalog across worker threads,
//! * the [`InvariantObserver`](crate::InvariantObserver) asserts the
//!   conservation/solvency invariants on every entry in CI.
//!
//! A [`ScenarioEntry`] owns two things: a market builder (the
//! [`MarketScenario`] price environment) and the [`SimConfig`] adjustments the
//! episode needs (extra gas-congestion episodes, bot staleness, flash-loan
//! availability). Entries are deterministic given the configuration seed —
//! the scenario RNG is derived exactly like the default engine path
//! (`config.seed ^ 0xfeed`), so `paper-two-year` reproduces the stock run
//! byte for byte.
//!
//! The `liquidation-spiral` entry is the one scenario the scripted price
//! model cannot express: it enables [`SellPressureFeedback`], under which the
//! engine routes every tick's liquidation proceeds through the AMM
//! [`Dex`](defi_amm::Dex) and feeds the realised pool price impact back into
//! the market path — liquidations deepen the decline that caused them
//! (*Toxic Liquidation Spirals*, Warmuz et al., 2022).

use defi_chain::CongestionEpisode;
use defi_oracle::{
    MarketScenario, PegParams, PriceProcess, ScenarioEvent, ScheduledShock, SellPressureFeedback,
    TokenPathSpec,
};
use defi_types::{Platform, Token};

use crate::config::SimConfig;

/// Block anchors shared by the catalog entries (mainnet numbering, matching
/// [`MarketScenario::paper_two_year`]). All stress episodes are anchored
/// around the March 2020 window so both the smoke and the full two-year runs
/// exercise them.
const MARCH_CRASH: u64 = 9_712_000;

/// Seed for the price scenario, derived from the run seed exactly like the
/// default engine construction path.
fn scenario_seed(config: &SimConfig) -> u64 {
    config.seed ^ 0xfeed
}

/// One named catalog scenario.
pub struct ScenarioEntry {
    /// Catalog name (`repro --scenario <name>`).
    pub name: &'static str,
    /// One-line description shown by `repro --list-scenarios`.
    pub summary: &'static str,
    build: fn(&mut SimConfig) -> MarketScenario,
}

impl ScenarioEntry {
    /// Build the market scenario, applying the entry's configuration
    /// adjustments to `config` in place — exactly once: a config whose
    /// adjustments were already materialised (`scenario_applied`) only has
    /// its market rebuilt, so non-idempotent tweaks like gas multipliers
    /// cannot compound when a built config flows through the builder again.
    pub fn build(&self, config: &mut SimConfig) -> MarketScenario {
        config.scenario = Some(self.name.to_string());
        if config.scenario_applied {
            // Market only: run the builder on a scratch copy and discard the
            // re-applied adjustments (the market depends only on the seed).
            return (self.build)(&mut config.clone());
        }
        config.scenario_applied = true;
        (self.build)(config)
    }
}

impl core::fmt::Debug for ScenarioEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ScenarioEntry")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish()
    }
}

/// The named scenario library.
#[derive(Debug)]
pub struct ScenarioCatalog {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioCatalog {
    /// Name of the default entry (the paper's two-year market) — the label
    /// reported for runs that never named a scenario.
    pub const DEFAULT_NAME: &'static str = "paper-two-year";

    /// The standard catalog shipped with the suite.
    pub fn standard() -> Self {
        ScenarioCatalog {
            entries: vec![
                ScenarioEntry {
                    name: ScenarioCatalog::DEFAULT_NAME,
                    summary: "The paper's scripted April 2019 – April 2021 market (the default).",
                    build: |config| MarketScenario::paper_two_year(scenario_seed(config)),
                },
                ScenarioEntry {
                    name: "black-thursday-replay",
                    summary: "A deeper 13 March 2020: the crash compounds to ~60% and congestion \
                         is harsher and longer, with more keepers stuck on stale gas prices.",
                    build: black_thursday_replay,
                },
                ScenarioEntry {
                    name: "stablecoin-depeg",
                    summary: "DAI breaks its peg upward (+18%) while USDT slips below parity, \
                         stressing stablecoin-collateral and stablecoin-debt positions.",
                    build: stablecoin_depeg,
                },
                ScenarioEntry {
                    name: "oracle-lag-cascade",
                    summary: "Platform oracles lag the crash and then snap to market, so overdue \
                         liquidations arrive as one cascade (plus a DAI irregularity).",
                    build: oracle_lag_cascade,
                },
                ScenarioEntry {
                    name: "gas-spike-congestion",
                    summary: "A 25x gas-price spike with doubled liquidation gas: rescues and \
                         liquidations compete for scarce blockspace (§4.3.1 stress).",
                    build: gas_spike_congestion,
                },
                ScenarioEntry {
                    name: "liquidation-spiral",
                    summary: "Endogenous price impact: liquidation proceeds are sold through the \
                         AMM and the pool impact feeds back into the market path each tick \
                         (toxic-liquidation-spiral dynamics).",
                    build: |config| liquidation_spiral(config, true),
                },
            ],
        }
    }

    /// Every entry, in catalog order.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Catalog names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Build a named scenario (applying its config adjustments in place), or
    /// `None` for an unknown name.
    pub fn build(&self, name: &str, config: &mut SimConfig) -> Option<MarketScenario> {
        self.get(name).map(|entry| entry.build(config))
    }
}

impl Default for ScenarioCatalog {
    fn default() -> Self {
        ScenarioCatalog::standard()
    }
}

// ------------------------------------------------------------------- builders

fn black_thursday_replay(config: &mut SimConfig) -> MarketScenario {
    // The historical episode: keepers crash-looped, gas stayed pinned for
    // days, and prices overshot the −43% print intraday.
    config.stale_bot_share = (config.stale_bot_share * 1.8).min(0.8);
    config.extra_congestion_episodes.push(CongestionEpisode {
        from: 9_640_000,
        to: 9_860_000,
        multiplier: 14.0,
    });
    let deepen = |scenario: MarketScenario, token: Token, magnitude: f64| {
        scenario.with_shock_on(
            token,
            ScheduledShock::transient(MARCH_CRASH + 4_000, magnitude, 450_000),
        )
    };
    let mut scenario = MarketScenario::paper_two_year(scenario_seed(config));
    scenario = deepen(scenario, Token::ETH, -0.28);
    scenario = deepen(scenario, Token::WBTC, -0.30);
    for token in [Token::BAT, Token::ZRX, Token::LINK, Token::MKR] {
        scenario = deepen(scenario, token, -0.25);
    }
    scenario
}

fn stablecoin_depeg(config: &mut SimConfig) -> MarketScenario {
    // DAI demand spikes during deleveraging: a wide, slowly-reverting peg
    // with a scripted +18% episode. USDT loses confidence and trades below
    // parity for a stretch.
    let seed = scenario_seed(config);
    let dai = TokenPathSpec::new(
        Token::DAI,
        1.0,
        PriceProcess::Peg(PegParams {
            target: 1.0,
            reversion: 0.02,
            noise: 0.004,
            max_deviation: 0.25,
        }),
    )
    .with_shock(ScheduledShock::transient(
        MARCH_CRASH + 8_000,
        0.18,
        350_000,
    ));
    let usdt = TokenPathSpec::new(
        Token::USDT,
        1.0,
        PriceProcess::Peg(PegParams {
            target: 1.0,
            reversion: 0.04,
            noise: 0.003,
            max_deviation: 0.12,
        }),
    )
    .with_shock(ScheduledShock::transient(
        MARCH_CRASH + 20_000,
        -0.08,
        250_000,
    ));
    MarketScenario::paper_two_year(seed)
        .with_token(dai)
        .with_token(usdt)
}

fn oracle_lag_cascade(config: &mut SimConfig) -> MarketScenario {
    // Mid-crash, two platforms' oracles keep reporting pre-crash collateral
    // prices (multiplier > 1 on ETH). While the irregularity lasts their
    // books look healthy; when it expires the accumulated insolvency is
    // liquidated as one cascade. A DAI irregularity mirrors Nov 2020.
    MarketScenario::paper_two_year(scenario_seed(config))
        .with_event(ScenarioEvent::OracleIrregularity {
            block: MARCH_CRASH + 1_000,
            platform: Platform::Compound,
            token: Token::ETH,
            price_multiplier: 1.35,
            duration_blocks: 25_000,
        })
        .with_event(ScenarioEvent::OracleIrregularity {
            block: MARCH_CRASH + 1_000,
            platform: Platform::AaveV1,
            token: Token::ETH,
            price_multiplier: 1.25,
            duration_blocks: 40_000,
        })
        .with_event(ScenarioEvent::OracleIrregularity {
            block: MARCH_CRASH + 60_000,
            platform: Platform::Compound,
            token: Token::DAI,
            price_multiplier: 1.30,
            duration_blocks: 1_200,
        })
}

fn gas_spike_congestion(config: &mut SimConfig) -> MarketScenario {
    // Blockspace famine: the spike is stronger and much longer than the
    // paper's episode, liquidation calls cost twice the gas, and over half
    // the bots keep bidding stale prices.
    config.extra_congestion_episodes.push(CongestionEpisode {
        from: 9_600_000,
        to: 9_880_000,
        multiplier: 25.0,
    });
    config.liquidation_gas *= 2;
    config.stale_bot_share = 0.55;
    MarketScenario::paper_two_year(scenario_seed(config))
}

/// The `liquidation-spiral` market, with the feedback loop switchable so the
/// divergence test can run the identical scripted market without the spiral
/// (the scenario RNG streams are then identical tick for tick).
pub fn liquidation_spiral(config: &mut SimConfig, feedback: bool) -> MarketScenario {
    // Flash-loan unwinds already trade through the DEX inside the
    // liquidation transaction; disable them so sell pressure is routed (and
    // counted) exactly once per seized lot.
    config.flash_loan_probability = 0.0;
    let scenario = MarketScenario::paper_two_year(scenario_seed(config));
    if feedback {
        scenario.with_sell_pressure_feedback(SellPressureFeedback::default())
    } else {
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_documented_entries() {
        let catalog = ScenarioCatalog::standard();
        let names = catalog.names();
        assert!(names.len() >= 6, "catalog too small: {names:?}");
        for expected in [
            "paper-two-year",
            "black-thursday-replay",
            "stablecoin-depeg",
            "oracle-lag-cascade",
            "gas-spike-congestion",
            "liquidation-spiral",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }
        assert!(catalog.get("no-such-scenario").is_none());
    }

    #[test]
    fn paper_entry_matches_the_default_scenario() {
        let mut config = SimConfig::smoke_test(9);
        let mut named = ScenarioCatalog::standard()
            .build("paper-two-year", &mut config)
            .unwrap();
        let mut stock = MarketScenario::paper_two_year(9 ^ 0xfeed);
        for block in (9_500_000u64..9_700_000).step_by(50_000) {
            assert_eq!(named.advance(block), stock.advance(block));
        }
        assert_eq!(config.scenario.as_deref(), Some("paper-two-year"));
    }

    #[test]
    fn entries_adjust_the_config() {
        let base = SimConfig::smoke_test(1);
        let catalog = ScenarioCatalog::standard();

        let mut gas = base.clone();
        catalog.build("gas-spike-congestion", &mut gas).unwrap();
        assert_eq!(gas.liquidation_gas, base.liquidation_gas * 2);
        assert!(!gas.extra_congestion_episodes.is_empty());

        let mut spiral = base.clone();
        let scenario = catalog.build("liquidation-spiral", &mut spiral).unwrap();
        assert_eq!(spiral.flash_loan_probability, 0.0);
        assert!(scenario.feedback().is_some());

        let mut thursday = base.clone();
        catalog
            .build("black-thursday-replay", &mut thursday)
            .unwrap();
        assert!(thursday.stale_bot_share > base.stale_bot_share);
    }

    #[test]
    fn entry_adjustments_apply_exactly_once() {
        let base = SimConfig::smoke_test(1);
        let catalog = ScenarioCatalog::standard();
        let mut config = base.clone();
        catalog.build("gas-spike-congestion", &mut config).unwrap();
        assert!(config.scenario_applied);
        assert_eq!(config.liquidation_gas, base.liquidation_gas * 2);
        let episodes = config.extra_congestion_episodes.len();
        // Re-building from the materialised config (the report-config round
        // trip through `SimulationEngine::new`) rebuilds the market but must
        // not compound the non-idempotent adjustments.
        catalog.build("gas-spike-congestion", &mut config).unwrap();
        assert_eq!(config.liquidation_gas, base.liquidation_gas * 2);
        assert_eq!(config.extra_congestion_episodes.len(), episodes);
    }

    #[test]
    fn depeg_scenario_moves_dai_off_peg() {
        let mut config = SimConfig::smoke_test(3);
        let mut scenario = ScenarioCatalog::standard()
            .build("stablecoin-depeg", &mut config)
            .unwrap();
        let mut max_dai: f64 = 0.0;
        for block in (9_500_000u64..9_900_000).step_by(10_000) {
            scenario.advance(block);
            max_dai = max_dai.max(scenario.price_f64(Token::DAI).unwrap());
        }
        assert!(
            max_dai > 1.10,
            "DAI should depeg well above parity, peaked at {max_dai}"
        );
    }

    #[test]
    fn lag_cascade_schedules_irregularities_in_the_crash_window() {
        let mut config = SimConfig::smoke_test(4);
        let scenario = ScenarioCatalog::standard()
            .build("oracle-lag-cascade", &mut config)
            .unwrap();
        let events = scenario.events_between(9_700_000, 9_800_000);
        assert!(
            events.len() >= 3,
            "expected ≥3 events, got {}",
            events.len()
        );
    }
}
