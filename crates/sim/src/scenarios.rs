//! The scenario catalog: named, composable stress scenarios.
//!
//! The paper's measurements hinge on three scripted episodes (the March 2020
//! crash, the November 2020 Compound DAI oracle irregularity, the February
//! 2021 volatility). The catalog generalises that into a library of named
//! market environments that every layer of the suite can address by name:
//!
//! * [`EngineBuilder::with_named_scenario`](crate::EngineBuilder::with_named_scenario)
//!   builds an engine against a catalog entry,
//! * `repro --scenario <name>` / `repro --list-scenarios` runs and lists them,
//! * [`SweepRunner::scenario_grid`](crate::SweepRunner::scenario_grid) fans
//!   the whole catalog across worker threads,
//! * the [`InvariantObserver`](crate::InvariantObserver) asserts the
//!   conservation/solvency invariants on every entry in CI.
//!
//! Entries **compose**: `"liquidation-spiral+stablecoin-depeg"` resolves to
//! both entries applied left-to-right over one shared base market, so a
//! spiral-during-a-depeg is a single run everywhere a scenario name is
//! accepted. Each entry is a *delta*: a function from `(config, market)` to
//! an adjusted market, applying its [`SimConfig`] adjustments (extra
//! gas-congestion episodes, bot staleness, flash-loan availability, the
//! behavioural layer) in place. User-defined entries can be loaded from a
//! plain-text scenario file ([`ScenarioCatalog::add_user_entries`]) and name
//! builtin entries in their own `compose` line.
//!
//! Entries are deterministic given the configuration seed — the scenario RNG
//! is derived exactly like the default engine path (`config.seed ^ 0xfeed`),
//! so `paper-two-year` reproduces the stock run byte for byte.
//!
//! The `liquidation-spiral` entry is the one scenario the scripted price
//! model cannot express: it enables [`SellPressureFeedback`], under which the
//! engine routes every tick's liquidation proceeds through the AMM
//! [`Dex`](defi_amm::Dex) and feeds the realised pool price impact back into
//! the market path — liquidations deepen the decline that caused them
//! (*Toxic Liquidation Spirals*, Warmuz et al., 2022).

use std::str::FromStr;

use defi_chain::CongestionEpisode;
use defi_oracle::{
    MarketScenario, PegParams, PriceProcess, ScenarioEvent, ScheduledShock, SellPressureFeedback,
    TokenPathSpec,
};
use defi_types::{Platform, Token};

use crate::behavior::BehaviorConfig;
use crate::config::SimConfig;

/// Block anchors shared by the catalog entries (mainnet numbering, matching
/// [`MarketScenario::paper_two_year`]). All stress episodes are anchored
/// around the March 2020 window so both the smoke and the full two-year runs
/// exercise them.
const MARCH_CRASH: u64 = 9_712_000;

/// Seed for the price scenario, derived from the run seed exactly like the
/// default engine construction path.
fn scenario_seed(config: &SimConfig) -> u64 {
    config.seed ^ 0xfeed
}

/// An entry's delta: adjust the config in place and transform the incoming
/// market. Deltas compose left-to-right over one shared base market.
type DeltaFn = fn(&mut SimConfig, MarketScenario) -> MarketScenario;

/// One named catalog scenario.
#[derive(Clone)]
pub struct ScenarioEntry {
    /// Catalog name (`repro --scenario <name>`; names compose with `+`).
    pub name: String,
    /// One-line description shown by `repro --list-scenarios`.
    pub summary: String,
    apply: EntryApply,
}

#[derive(Clone)]
enum EntryApply {
    Builtin(DeltaFn),
    User(UserScenarioSpec),
}

impl ScenarioEntry {
    fn builtin(name: &str, summary: &str, delta: DeltaFn) -> Self {
        ScenarioEntry {
            name: name.to_string(),
            summary: summary.to_string(),
            apply: EntryApply::Builtin(delta),
        }
    }

    /// Apply this entry's delta: config adjustments in place, market
    /// transformation functionally. User entries expand their `compose` list
    /// against the builtin catalog (validated at load time), then apply
    /// their own shocks and settings.
    fn apply_delta(&self, config: &mut SimConfig, market: MarketScenario) -> MarketScenario {
        match &self.apply {
            EntryApply::Builtin(delta) => delta(config, market),
            EntryApply::User(spec) => {
                let standard = ScenarioCatalog::standard();
                let mut market = market;
                for part in &spec.compose {
                    if let Some(entry) = standard.get(part) {
                        market = entry.apply_delta(config, market);
                    }
                }
                for shock in &spec.shocks {
                    market = market.with_shock_on(
                        shock.token,
                        ScheduledShock::transient(
                            shock.block,
                            shock.magnitude,
                            shock.duration_blocks,
                        ),
                    );
                }
                for (key, value) in &spec.settings {
                    // Keys and values were type-checked at parse time against
                    // a scratch config; a failure here is unreachable.
                    let _ = apply_setting(config, key, value);
                }
                market
            }
        }
    }

    /// Build the market scenario for this single entry, applying the entry's
    /// configuration adjustments to `config` in place — exactly once: a
    /// config whose adjustments were already materialised
    /// (`scenario_applied`) only has its market rebuilt, so non-idempotent
    /// tweaks like gas multipliers cannot compound when a built config flows
    /// through the builder again.
    pub fn build(&self, config: &mut SimConfig) -> MarketScenario {
        config.scenario = Some(self.name.clone());
        if config.scenario_applied {
            // Market only: run the delta on a scratch copy and discard the
            // re-applied adjustments (the market depends only on the seed).
            let mut scratch = config.clone();
            let base = MarketScenario::paper_two_year(scenario_seed(&scratch));
            return self.apply_delta(&mut scratch, base);
        }
        config.scenario_applied = true;
        let base = MarketScenario::paper_two_year(scenario_seed(config));
        self.apply_delta(config, base)
    }
}

impl core::fmt::Debug for ScenarioEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ScenarioEntry")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish()
    }
}

/// The named scenario library.
#[derive(Debug, Clone)]
pub struct ScenarioCatalog {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioCatalog {
    /// Name of the default entry (the paper's two-year market) — the label
    /// reported for runs that never named a scenario.
    pub const DEFAULT_NAME: &'static str = "paper-two-year";

    /// The standard catalog shipped with the suite.
    pub fn standard() -> Self {
        ScenarioCatalog {
            entries: vec![
                ScenarioEntry::builtin(
                    ScenarioCatalog::DEFAULT_NAME,
                    "The paper's scripted April 2019 – April 2021 market (the default).",
                    |_, market| market,
                ),
                ScenarioEntry::builtin(
                    "black-thursday-replay",
                    "A deeper 13 March 2020: the crash compounds to ~60% and congestion \
                     is harsher and longer, with more keepers stuck on stale gas prices.",
                    black_thursday_replay,
                ),
                ScenarioEntry::builtin(
                    "stablecoin-depeg",
                    "DAI breaks its peg upward (+18%) while USDT slips below parity, \
                     stressing stablecoin-collateral and stablecoin-debt positions.",
                    stablecoin_depeg,
                ),
                ScenarioEntry::builtin(
                    "oracle-lag-cascade",
                    "Platform oracles lag the crash and then snap to market, so overdue \
                     liquidations arrive as one cascade (plus a DAI irregularity).",
                    oracle_lag_cascade,
                ),
                ScenarioEntry::builtin(
                    "gas-spike-congestion",
                    "A 25x gas-price spike with doubled liquidation gas: rescues and \
                     liquidations compete for scarce blockspace (§4.3.1 stress).",
                    gas_spike_congestion,
                ),
                ScenarioEntry::builtin(
                    "liquidation-spiral",
                    "Endogenous price impact: liquidation proceeds are sold through the \
                     AMM and the pool impact feeds back into the market path each tick \
                     (toxic-liquidation-spiral dynamics).",
                    |config, market| {
                        liquidation_spiral_delta(config);
                        market.with_sell_pressure_feedback(SellPressureFeedback::default())
                    },
                ),
                ScenarioEntry::builtin(
                    "capital-crunch-spiral",
                    "The liquidation spiral worked by behavioural agents: \
                     capital-constrained liquidators with latency staggering and \
                     panic-prone borrowers (§5–6 instability conditions).",
                    |config, market| {
                        liquidation_spiral_delta(config);
                        config.behavior = BehaviorConfig::capital_constrained();
                        market.with_sell_pressure_feedback(SellPressureFeedback::default())
                    },
                ),
            ],
        }
    }

    /// Every entry, in catalog order.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Catalog names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Look up a single entry by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Resolve a (possibly composed) scenario name into its entries:
    /// `"a+b"` yields `[a, b]`. `None` if any part is unknown or empty.
    pub fn resolve(&self, name: &str) -> Option<Vec<&ScenarioEntry>> {
        let parts: Vec<&str> = name.split('+').map(str::trim).collect();
        if parts.iter().any(|p| p.is_empty()) {
            return None;
        }
        parts.iter().map(|part| self.get(part)).collect()
    }

    /// Build a named (possibly composed) scenario, applying every component's
    /// config adjustments in place left-to-right over one shared base market.
    /// `None` for an unknown name. The canonical composed name is recorded in
    /// `config.scenario`, and — as with single entries — adjustments apply
    /// exactly once per config.
    pub fn build(&self, name: &str, config: &mut SimConfig) -> Option<MarketScenario> {
        let entries = self.resolve(name)?;
        let canonical = entries
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        config.scenario = Some(canonical);
        if config.scenario_applied {
            let mut scratch = config.clone();
            let mut market = MarketScenario::paper_two_year(scenario_seed(&scratch));
            for entry in &entries {
                market = entry.apply_delta(&mut scratch, market);
            }
            return Some(market);
        }
        config.scenario_applied = true;
        let mut market = MarketScenario::paper_two_year(scenario_seed(config));
        for entry in &entries {
            market = entry.apply_delta(config, market);
        }
        Some(market)
    }

    /// Parse user-defined entries from a scenario file and add them to the
    /// catalog. Returns how many entries were added. Compose lines may only
    /// reference entries already in the catalog; settings are type-checked
    /// against a scratch config at parse time, so a loaded entry cannot fail
    /// later at build time.
    pub fn add_user_entries(&mut self, text: &str) -> Result<usize, ScenarioParseError> {
        let specs = parse_user_specs(text)?;
        let mut added = 0;
        for (line, spec) in specs {
            for part in &spec.compose {
                if self.get(part).is_none() {
                    return Err(ScenarioParseError {
                        line,
                        message: format!(
                            "compose references unknown scenario '{part}' (known: {})",
                            self.names().join(", ")
                        ),
                    });
                }
            }
            if self.get(&spec.name).is_some() {
                return Err(ScenarioParseError {
                    line,
                    message: format!("scenario '{}' already exists in the catalog", spec.name),
                });
            }
            self.entries.push(ScenarioEntry {
                name: spec.name.clone(),
                summary: spec.summary.clone(),
                apply: EntryApply::User(spec),
            });
            added += 1;
        }
        Ok(added)
    }
}

impl Default for ScenarioCatalog {
    fn default() -> Self {
        ScenarioCatalog::standard()
    }
}

// --------------------------------------------------------------- user entries

/// A user-defined scenario parsed from a scenario file: a composition of
/// builtin entries plus extra price shocks and config settings.
#[derive(Debug, Clone, PartialEq)]
pub struct UserScenarioSpec {
    /// Entry name (must not collide with an existing catalog name).
    pub name: String,
    /// One-line description.
    pub summary: String,
    /// Builtin entries applied first, in order.
    pub compose: Vec<String>,
    /// Additional scheduled price shocks.
    pub shocks: Vec<UserShock>,
    /// `key = value` config settings applied after composition.
    pub settings: Vec<(String, String)>,
}

/// One scheduled shock of a user scenario:
/// `shock = TOKEN @ <block> <magnitude> <duration_blocks>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserShock {
    /// Shocked token.
    pub token: Token,
    /// Block the shock starts at.
    pub block: u64,
    /// Relative magnitude (e.g. `-0.30` = a 30% drop).
    pub magnitude: f64,
    /// Blocks until the shock decays away.
    pub duration_blocks: u64,
}

/// A scenario-file parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParseError {
    /// 1-based line number in the scenario file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "scenario file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScenarioParseError {}

/// Parse the line-based scenario-file format:
///
/// ```text
/// # comment
/// [scenario deep-crunch]
/// summary = spiral plus depeg with constrained liquidators
/// compose = liquidation-spiral + stablecoin-depeg
/// shock   = ETH @ 9716000 -0.20 120000
/// behavior.enabled = true
/// flash_loan_probability = 0.0
/// ```
///
/// Returns each spec with the line its `[scenario ...]` header appeared on.
fn parse_user_specs(text: &str) -> Result<Vec<(usize, UserScenarioSpec)>, ScenarioParseError> {
    let mut specs: Vec<(usize, UserScenarioSpec)> = Vec::new();
    let mut current: Option<(usize, UserScenarioSpec)> = None;
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("[scenario") {
            let name = header.trim_end_matches(']').trim();
            if name.is_empty() || name.contains('+') || name.contains(char::is_whitespace) {
                return Err(ScenarioParseError {
                    line: line_no,
                    message: format!("invalid scenario name '{name}' (no spaces or '+')"),
                });
            }
            if let Some(done) = current.take() {
                specs.push(done);
            }
            current = Some((
                line_no,
                UserScenarioSpec {
                    name: name.to_string(),
                    summary: String::new(),
                    compose: Vec::new(),
                    shocks: Vec::new(),
                    settings: Vec::new(),
                },
            ));
            continue;
        }
        let Some((_, spec)) = current.as_mut() else {
            return Err(ScenarioParseError {
                line: line_no,
                message: "expected a '[scenario <name>]' header first".to_string(),
            });
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(ScenarioParseError {
                line: line_no,
                message: format!("expected 'key = value', got '{line}'"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "summary" => spec.summary = value.to_string(),
            "compose" => {
                let parts: Vec<String> = value
                    .split('+')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty())
                    .collect();
                if parts.is_empty() {
                    return Err(ScenarioParseError {
                        line: line_no,
                        message: "compose must name at least one scenario".to_string(),
                    });
                }
                spec.compose = parts;
            }
            "shock" => {
                spec.shocks
                    .push(parse_shock(value).map_err(|message| ScenarioParseError {
                        line: line_no,
                        message,
                    })?);
            }
            _ => {
                // Type-check the setting against a scratch config now so a
                // loaded entry can never fail at build time.
                let mut scratch = SimConfig::paper_default(0);
                apply_setting(&mut scratch, key, value).map_err(|message| ScenarioParseError {
                    line: line_no,
                    message,
                })?;
                spec.settings.push((key.to_string(), value.to_string()));
            }
        }
    }
    if let Some(done) = current.take() {
        specs.push(done);
    }
    Ok(specs)
}

/// Parse `TOKEN @ <block> <magnitude> <duration_blocks>`.
fn parse_shock(value: &str) -> Result<UserShock, String> {
    let (token_part, rest) = value
        .split_once('@')
        .ok_or_else(|| format!("expected 'TOKEN @ block magnitude duration', got '{value}'"))?;
    let token = Token::from_str(token_part.trim())
        .map_err(|_| format!("unknown token '{}'", token_part.trim()))?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let [block, magnitude, duration] = fields.as_slice() else {
        return Err(format!(
            "expected 'block magnitude duration' after '@', got '{}'",
            rest.trim()
        ));
    };
    Ok(UserShock {
        token,
        block: block
            .parse()
            .map_err(|_| format!("invalid block '{block}'"))?,
        magnitude: magnitude
            .parse()
            .map_err(|_| format!("invalid magnitude '{magnitude}'"))?,
        duration_blocks: duration
            .parse()
            .map_err(|_| format!("invalid duration '{duration}'"))?,
    })
}

/// Apply one `key = value` setting to a config. The supported keys cover the
/// knobs stress scenarios actually vary; anything else is an error so typos
/// surface at parse time.
fn apply_setting(config: &mut SimConfig, key: &str, value: &str) -> Result<(), String> {
    fn parse<T: FromStr>(key: &str, value: &str) -> Result<T, String> {
        value
            .parse()
            .map_err(|_| format!("invalid value '{value}' for '{key}'"))
    }
    match key {
        "flash_loan_probability" => config.flash_loan_probability = parse(key, value)?,
        "stale_bot_share" => config.stale_bot_share = parse(key, value)?,
        "liquidation_gas" => config.liquidation_gas = parse(key, value)?,
        "auction_gas" => config.auction_gas = parse(key, value)?,
        "user_op_gas" => config.user_op_gas = parse(key, value)?,
        "behavior.enabled" => config.behavior.enabled = parse(key, value)?,
        "behavior.liquidator_inventory_usd" => {
            config.behavior.liquidator_inventory_usd = parse(key, value)?;
        }
        "behavior.inventory_replenish_per_tick_usd" => {
            config.behavior.inventory_replenish_per_tick_usd = parse(key, value)?;
        }
        "behavior.max_latency_ticks" => config.behavior.max_latency_ticks = parse(key, value)?,
        "behavior.opportunity_ttl_ticks" => {
            config.behavior.opportunity_ttl_ticks = parse(key, value)?;
        }
        "behavior.panic_hf" => config.behavior.panic_hf = parse(key, value)?,
        "behavior.panic_market_drop" => config.behavior.panic_market_drop = parse(key, value)?,
        "behavior.panic_probability" => config.behavior.panic_probability = parse(key, value)?,
        "behavior.panic_deleverage_fraction" => {
            config.behavior.panic_deleverage_fraction = parse(key, value)?;
        }
        "behavior.panic_share" => config.behavior.panic_share = parse(key, value)?,
        _ => return Err(format!("unknown setting '{key}'")),
    }
    Ok(())
}

// ------------------------------------------------------------------- builders

fn black_thursday_replay(config: &mut SimConfig, market: MarketScenario) -> MarketScenario {
    // The historical episode: keepers crash-looped, gas stayed pinned for
    // days, and prices overshot the −43% print intraday.
    config.stale_bot_share = (config.stale_bot_share * 1.8).min(0.8);
    config.extra_congestion_episodes.push(CongestionEpisode {
        from: 9_640_000,
        to: 9_860_000,
        multiplier: 14.0,
    });
    let deepen = |scenario: MarketScenario, token: Token, magnitude: f64| {
        scenario.with_shock_on(
            token,
            ScheduledShock::transient(MARCH_CRASH + 4_000, magnitude, 450_000),
        )
    };
    let mut scenario = deepen(market, Token::ETH, -0.28);
    scenario = deepen(scenario, Token::WBTC, -0.30);
    for token in [Token::BAT, Token::ZRX, Token::LINK, Token::MKR] {
        scenario = deepen(scenario, token, -0.25);
    }
    scenario
}

fn stablecoin_depeg(_config: &mut SimConfig, market: MarketScenario) -> MarketScenario {
    // DAI demand spikes during deleveraging: a wide, slowly-reverting peg
    // with a scripted +18% episode. USDT loses confidence and trades below
    // parity for a stretch.
    let dai = TokenPathSpec::new(
        Token::DAI,
        1.0,
        PriceProcess::Peg(PegParams {
            target: 1.0,
            reversion: 0.02,
            noise: 0.004,
            max_deviation: 0.25,
        }),
    )
    .with_shock(ScheduledShock::transient(
        MARCH_CRASH + 8_000,
        0.18,
        350_000,
    ));
    let usdt = TokenPathSpec::new(
        Token::USDT,
        1.0,
        PriceProcess::Peg(PegParams {
            target: 1.0,
            reversion: 0.04,
            noise: 0.003,
            max_deviation: 0.12,
        }),
    )
    .with_shock(ScheduledShock::transient(
        MARCH_CRASH + 20_000,
        -0.08,
        250_000,
    ));
    market.with_token(dai).with_token(usdt)
}

fn oracle_lag_cascade(_config: &mut SimConfig, market: MarketScenario) -> MarketScenario {
    // Mid-crash, two platforms' oracles keep reporting pre-crash collateral
    // prices (multiplier > 1 on ETH). While the irregularity lasts their
    // books look healthy; when it expires the accumulated insolvency is
    // liquidated as one cascade. A DAI irregularity mirrors Nov 2020.
    market
        .with_event(ScenarioEvent::OracleIrregularity {
            block: MARCH_CRASH + 1_000,
            platform: Platform::Compound,
            token: Token::ETH,
            price_multiplier: 1.35,
            duration_blocks: 25_000,
        })
        .with_event(ScenarioEvent::OracleIrregularity {
            block: MARCH_CRASH + 1_000,
            platform: Platform::AaveV1,
            token: Token::ETH,
            price_multiplier: 1.25,
            duration_blocks: 40_000,
        })
        .with_event(ScenarioEvent::OracleIrregularity {
            block: MARCH_CRASH + 60_000,
            platform: Platform::Compound,
            token: Token::DAI,
            price_multiplier: 1.30,
            duration_blocks: 1_200,
        })
}

fn gas_spike_congestion(config: &mut SimConfig, market: MarketScenario) -> MarketScenario {
    // Blockspace famine: the spike is stronger and much longer than the
    // paper's episode, liquidation calls cost twice the gas, and over half
    // the bots keep bidding stale prices.
    config.extra_congestion_episodes.push(CongestionEpisode {
        from: 9_600_000,
        to: 9_880_000,
        multiplier: 25.0,
    });
    config.liquidation_gas *= 2;
    config.stale_bot_share = 0.55;
    market
}

/// The spiral's config side: flash-loan unwinds already trade through the
/// DEX inside the liquidation transaction; disable them so sell pressure is
/// routed (and counted) exactly once per seized lot.
fn liquidation_spiral_delta(config: &mut SimConfig) {
    config.flash_loan_probability = 0.0;
}

/// The `liquidation-spiral` market, with the feedback loop switchable so the
/// divergence test can run the identical scripted market without the spiral
/// (the scenario RNG streams are then identical tick for tick).
pub fn liquidation_spiral(config: &mut SimConfig, feedback: bool) -> MarketScenario {
    liquidation_spiral_delta(config);
    let scenario = MarketScenario::paper_two_year(scenario_seed(config));
    if feedback {
        scenario.with_sell_pressure_feedback(SellPressureFeedback::default())
    } else {
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_documented_entries() {
        let catalog = ScenarioCatalog::standard();
        let names = catalog.names();
        assert!(names.len() >= 6, "catalog too small: {names:?}");
        for expected in [
            "paper-two-year",
            "black-thursday-replay",
            "stablecoin-depeg",
            "oracle-lag-cascade",
            "gas-spike-congestion",
            "liquidation-spiral",
            "capital-crunch-spiral",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }
        assert!(catalog.get("no-such-scenario").is_none());
    }

    #[test]
    fn paper_entry_matches_the_default_scenario() {
        let mut config = SimConfig::smoke_test(9);
        let mut named = ScenarioCatalog::standard()
            .build("paper-two-year", &mut config)
            .unwrap();
        let mut stock = MarketScenario::paper_two_year(9 ^ 0xfeed);
        for block in (9_500_000u64..9_700_000).step_by(50_000) {
            assert_eq!(named.advance(block), stock.advance(block));
        }
        assert_eq!(config.scenario.as_deref(), Some("paper-two-year"));
    }

    #[test]
    fn entries_adjust_the_config() {
        let base = SimConfig::smoke_test(1);
        let catalog = ScenarioCatalog::standard();

        let mut gas = base.clone();
        catalog.build("gas-spike-congestion", &mut gas).unwrap();
        assert_eq!(gas.liquidation_gas, base.liquidation_gas * 2);
        assert!(!gas.extra_congestion_episodes.is_empty());

        let mut spiral = base.clone();
        let scenario = catalog.build("liquidation-spiral", &mut spiral).unwrap();
        assert_eq!(spiral.flash_loan_probability, 0.0);
        assert!(scenario.feedback().is_some());

        let mut crunch = base.clone();
        let scenario = catalog.build("capital-crunch-spiral", &mut crunch).unwrap();
        assert!(crunch.behavior.enabled);
        assert!(scenario.feedback().is_some());

        let mut thursday = base.clone();
        catalog
            .build("black-thursday-replay", &mut thursday)
            .unwrap();
        assert!(thursday.stale_bot_share > base.stale_bot_share);
    }

    #[test]
    fn entry_adjustments_apply_exactly_once() {
        let base = SimConfig::smoke_test(1);
        let catalog = ScenarioCatalog::standard();
        let mut config = base.clone();
        catalog.build("gas-spike-congestion", &mut config).unwrap();
        assert!(config.scenario_applied);
        assert_eq!(config.liquidation_gas, base.liquidation_gas * 2);
        let episodes = config.extra_congestion_episodes.len();
        // Re-building from the materialised config (the report-config round
        // trip through `SimulationEngine::new`) rebuilds the market but must
        // not compound the non-idempotent adjustments.
        catalog.build("gas-spike-congestion", &mut config).unwrap();
        assert_eq!(config.liquidation_gas, base.liquidation_gas * 2);
        assert_eq!(config.extra_congestion_episodes.len(), episodes);
    }

    #[test]
    fn depeg_scenario_moves_dai_off_peg() {
        let mut config = SimConfig::smoke_test(3);
        let mut scenario = ScenarioCatalog::standard()
            .build("stablecoin-depeg", &mut config)
            .unwrap();
        let mut max_dai: f64 = 0.0;
        for block in (9_500_000u64..9_900_000).step_by(10_000) {
            scenario.advance(block);
            max_dai = max_dai.max(scenario.price_f64(Token::DAI).unwrap());
        }
        assert!(
            max_dai > 1.10,
            "DAI should depeg well above parity, peaked at {max_dai}"
        );
    }

    #[test]
    fn lag_cascade_schedules_irregularities_in_the_crash_window() {
        let mut config = SimConfig::smoke_test(4);
        let scenario = ScenarioCatalog::standard()
            .build("oracle-lag-cascade", &mut config)
            .unwrap();
        let events = scenario.events_between(9_700_000, 9_800_000);
        assert!(
            events.len() >= 3,
            "expected ≥3 events, got {}",
            events.len()
        );
    }

    #[test]
    fn compose_resolves_and_rejects_unknowns() {
        let catalog = ScenarioCatalog::standard();
        assert_eq!(
            catalog
                .resolve("liquidation-spiral+stablecoin-depeg")
                .map(|e| e.len()),
            Some(2)
        );
        // Whitespace around '+' is tolerated.
        assert!(catalog
            .resolve("liquidation-spiral + gas-spike-congestion")
            .is_some());
        assert!(catalog.resolve("liquidation-spiral+no-such").is_none());
        assert!(catalog.resolve("+liquidation-spiral").is_none());
        assert!(catalog.resolve("").is_none());
    }

    #[test]
    fn composed_scenario_equals_hand_built() {
        let catalog = ScenarioCatalog::standard();
        let mut composed_config = SimConfig::smoke_test(5);
        let mut composed = catalog
            .build("liquidation-spiral+stablecoin-depeg", &mut composed_config)
            .unwrap();

        let mut hand_config = SimConfig::smoke_test(5);
        let mut hand = MarketScenario::paper_two_year(scenario_seed(&hand_config));
        liquidation_spiral_delta(&mut hand_config);
        hand = hand.with_sell_pressure_feedback(SellPressureFeedback::default());
        hand = stablecoin_depeg(&mut hand_config, hand);

        for block in (9_500_000u64..9_900_000).step_by(20_000) {
            assert_eq!(composed.advance(block), hand.advance(block));
        }
        assert_eq!(composed_config.flash_loan_probability, 0.0);
        assert_eq!(
            composed_config.scenario.as_deref(),
            Some("liquidation-spiral+stablecoin-depeg")
        );
        assert!(composed.feedback().is_some());
    }

    #[test]
    fn composed_adjustments_apply_exactly_once_too() {
        let base = SimConfig::smoke_test(1);
        let catalog = ScenarioCatalog::standard();
        let mut config = base.clone();
        catalog
            .build("gas-spike-congestion+black-thursday-replay", &mut config)
            .unwrap();
        assert_eq!(config.liquidation_gas, base.liquidation_gas * 2);
        let episodes = config.extra_congestion_episodes.len();
        assert!(episodes >= 2, "both entries add an episode");
        catalog
            .build("gas-spike-congestion+black-thursday-replay", &mut config)
            .unwrap();
        assert_eq!(config.liquidation_gas, base.liquidation_gas * 2);
        assert_eq!(config.extra_congestion_episodes.len(), episodes);
    }

    #[test]
    fn user_scenario_entries_parse_and_compose() {
        let mut catalog = ScenarioCatalog::standard();
        let text = "\
# a user scenario
[scenario deep-crunch]
summary = spiral plus depeg with constrained liquidators
compose = liquidation-spiral + stablecoin-depeg
shock = ETH @ 9716000 -0.20 120000
behavior.enabled = true
behavior.liquidator_inventory_usd = 50000
";
        let added = catalog.add_user_entries(text).unwrap();
        assert_eq!(added, 1);
        let mut config = SimConfig::smoke_test(2);
        let market = catalog.build("deep-crunch", &mut config).unwrap();
        assert!(market.feedback().is_some());
        assert!(config.behavior.enabled);
        assert_eq!(config.behavior.liquidator_inventory_usd, 50_000.0);
        assert_eq!(config.flash_loan_probability, 0.0);
        // User entries compose with builtins by name like any other entry.
        assert!(catalog
            .resolve("deep-crunch+gas-spike-congestion")
            .is_some());
    }

    #[test]
    fn user_scenario_parse_errors_carry_line_numbers() {
        let mut catalog = ScenarioCatalog::standard();
        let err = catalog
            .add_user_entries("[scenario x]\nbad line without equals\n")
            .unwrap_err();
        assert_eq!(err.line, 2);

        let err = catalog
            .add_user_entries("[scenario y]\ncompose = no-such-thing\n")
            .unwrap_err();
        assert_eq!(err.line, 1, "compose validation reports the entry header");

        let err = catalog
            .add_user_entries("[scenario z]\nnot_a_setting = 1\n")
            .unwrap_err();
        assert_eq!(err.line, 2);

        let err = catalog
            .add_user_entries("[scenario w]\nshock = ETH 9716000 -0.2 1000\n")
            .unwrap_err();
        assert_eq!(err.line, 2, "shock without '@' is rejected");
    }
}
