//! Simulation configuration.

use serde::{Deserialize, Serialize};

use defi_chain::CongestionEpisode;
use defi_types::{BlockNumber, Platform};

use crate::behavior::BehaviorConfig;

/// Population and behaviour parameters for one platform.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlatformPopulation {
    /// The platform.
    pub platform: Platform,
    /// Expected number of new borrowers arriving per tick at the *end* of the
    /// scenario; arrivals ramp up linearly from ~10 % of this at inception
    /// (the DeFi-growth effect visible in Figure 4).
    pub borrower_arrival_rate: f64,
    /// Maximum number of concurrently tracked borrowers (older, fully repaid
    /// positions are recycled).
    pub max_borrowers: usize,
    /// Median initial collateral value per borrower (USD).
    pub median_collateral_usd: f64,
    /// Log-normal sigma of the collateral size distribution (whale tail).
    pub collateral_sigma: f64,
    /// Target collateralization ratio borrowers aim for when opening
    /// (e.g. 1.45 = they borrow up to ~69 % of collateral value).
    pub target_collateralization: f64,
    /// Fraction of borrowers who actively manage their position (top up or
    /// repay when the health factor approaches 1).
    pub active_manager_share: f64,
    /// Fraction of borrowers who collateralize more than one asset
    /// (the paper finds this is what makes Aave V2 less price-sensitive).
    pub multi_collateral_share: f64,
    /// Fraction of borrowers who collateralize a stablecoin to borrow another
    /// stablecoin (§4.5.2).
    pub stablecoin_borrower_share: f64,
    /// Number of liquidator agents watching this platform.
    pub liquidator_count: usize,
}

impl PlatformPopulation {
    fn scaled(mut self, borrower_factor: f64, arrival_factor: f64) -> Self {
        self.borrower_arrival_rate *= arrival_factor;
        self.max_borrowers =
            ((self.max_borrowers as f64 * borrower_factor).ceil() as usize).max(10);
        self.liquidator_count =
            ((self.liquidator_count as f64 * borrower_factor).ceil() as usize).max(2);
        self
    }
}

/// Full scenario configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; the whole simulation is deterministic given the seed.
    pub seed: u64,
    /// First simulated block.
    pub start_block: BlockNumber,
    /// Last simulated block.
    pub end_block: BlockNumber,
    /// Blocks per simulation tick (price update + agent actions).
    pub tick_blocks: u64,
    /// Per-platform populations.
    pub populations: Vec<PlatformPopulation>,
    /// Probability that a fixed-spread liquidator funds a liquidation with a
    /// flash loan (§4.4.4).
    pub flash_loan_probability: f64,
    /// Share of liquidators that keep bidding stale gas prices under
    /// congestion (the failure mode of March 2020).
    pub stale_bot_share: f64,
    /// Block at which MakerDAO switches to the post-incident auction
    /// parameters (longer bid duration), per Figure 7.
    pub maker_param_change_block: BlockNumber,
    /// Interval (in ticks) at which dYdX's insurance fund writes off
    /// insolvent positions.
    pub insurance_writeoff_interval: u64,
    /// Interval (in ticks) at which collateral-volume samples are recorded.
    pub volume_sample_interval: u64,
    /// Gas consumed by a fixed-spread liquidation call (roughly what mainnet
    /// liquidation transactions use). Gas-sensitivity scenarios can vary it.
    pub liquidation_gas: u64,
    /// Gas consumed by an auction bite / bid / deal.
    pub auction_gas: u64,
    /// Gas consumed by ordinary user operations (deposit/borrow/repay).
    pub user_op_gas: u64,
    /// Name of a [`ScenarioCatalog`](crate::ScenarioCatalog) entry that
    /// provides the price scenario (and its config adjustments) for this run.
    /// `None` reproduces the paper's two-year market. Carried in the config so
    /// sweep grids stay a plain `Vec<SimConfig>`.
    pub scenario: Option<String>,
    /// Whether the named scenario's config adjustments have already been
    /// applied to this configuration. Set by
    /// [`ScenarioEntry::build`](crate::ScenarioEntry::build) so that building
    /// an engine from an already-materialised config (e.g. a report's config)
    /// rebuilds the market without re-applying non-idempotent adjustments
    /// such as gas multipliers or extra congestion episodes.
    pub scenario_applied: bool,
    /// Additional scripted gas-congestion episodes layered on top of the
    /// paper's (used by stress scenarios such as `gas-spike-congestion`).
    pub extra_congestion_episodes: Vec<CongestionEpisode>,
    /// Worker threads each protocol's position book may fan re-valuation
    /// across within a tick (clamped to the book's shard count). Purely a
    /// throughput knob: results are byte-identical for every value, which the
    /// band-differential harness proves per tick. Defaults to 1 (serial) so
    /// journals written before the knob existed replay unchanged.
    #[serde(default = "default_book_workers")]
    pub book_workers: usize,
    /// Behavioural agent layer: capital-constrained liquidators, latency
    /// staggering and borrower panic exits. Disabled by default, in which
    /// case the engine behaves exactly as the baseline model.
    #[serde(default)]
    pub behavior: BehaviorConfig,
}

fn default_book_workers() -> usize {
    1
}

/// Default gas cost of a fixed-spread liquidation call.
pub const DEFAULT_LIQUIDATION_GAS: u64 = 500_000;
/// Default gas cost of an auction bite / bid / deal.
pub const DEFAULT_AUCTION_GAS: u64 = 180_000;
/// Default gas cost of an ordinary user operation.
pub const DEFAULT_USER_OP_GAS: u64 = 250_000;

impl SimConfig {
    /// The two-year study scenario (April 2019 – April 2021, mainnet block
    /// numbering). Population sizes are chosen so the full run finishes in
    /// seconds in release mode while producing thousands of liquidations with
    /// the paper's qualitative structure.
    pub fn paper_default(seed: u64) -> Self {
        let pop = |platform: Platform,
                   arrival: f64,
                   max: usize,
                   median: f64,
                   multi: f64,
                   stable: f64,
                   liquidators: usize| PlatformPopulation {
            platform,
            borrower_arrival_rate: arrival,
            max_borrowers: max,
            median_collateral_usd: median,
            collateral_sigma: 1.6,
            target_collateralization: 1.45,
            active_manager_share: 0.55,
            multi_collateral_share: multi,
            stablecoin_borrower_share: stable,
            liquidator_count: liquidators,
        };
        SimConfig {
            seed,
            start_block: 7_500_000,
            end_block: 12_344_944,
            tick_blocks: 600, // ≈ 2.2 hours per tick, ~8k ticks over the window
            populations: vec![
                pop(Platform::AaveV1, 0.18, 420, 60_000.0, 0.25, 0.10, 10),
                pop(Platform::AaveV2, 0.30, 520, 120_000.0, 0.55, 0.15, 8),
                pop(Platform::Compound, 0.42, 640, 90_000.0, 0.20, 0.10, 12),
                pop(Platform::DyDx, 0.60, 600, 40_000.0, 0.05, 0.05, 10),
                pop(Platform::MakerDao, 0.36, 600, 110_000.0, 0.0, 0.0, 6),
            ],
            flash_loan_probability: 0.04,
            stale_bot_share: 0.35,
            maker_param_change_block: 9_800_000,
            insurance_writeoff_interval: 20,
            volume_sample_interval: 10,
            liquidation_gas: DEFAULT_LIQUIDATION_GAS,
            auction_gas: DEFAULT_AUCTION_GAS,
            user_op_gas: DEFAULT_USER_OP_GAS,
            scenario: None,
            scenario_applied: false,
            extra_congestion_episodes: Vec::new(),
            book_workers: default_book_workers(),
            behavior: BehaviorConfig::default(),
        }
    }

    /// A fast, scaled-down scenario (≈ 3 months, small populations) used by
    /// unit/integration tests so `cargo test` stays quick even in debug mode.
    pub fn smoke_test(seed: u64) -> Self {
        let mut config = SimConfig::paper_default(seed);
        config.start_block = 9_500_000;
        config.end_block = 9_900_000; // spans the March 2020 crash
        config.tick_blocks = 1_200;
        // Fewer concurrent borrowers, but a much higher arrival rate so the
        // short window still produces a meaningful number of liquidations.
        config.populations = config
            .populations
            .into_iter()
            .map(|p| p.scaled(0.4, 4.0))
            .collect();
        config
    }

    /// Number of ticks the scenario will run.
    pub fn tick_count(&self) -> u64 {
        (self.end_block - self.start_block) / self.tick_blocks
    }

    /// The population entry for a platform.
    pub fn population(&self, platform: Platform) -> Option<&PlatformPopulation> {
        self.populations.iter().find(|p| p.platform == platform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_covers_all_platforms() {
        let config = SimConfig::paper_default(1);
        for platform in Platform::ALL {
            assert!(config.population(platform).is_some(), "{platform} missing");
        }
        assert!(config.tick_count() > 5_000);
        assert!(config.maker_param_change_block > config.start_block);
        assert!(config.maker_param_change_block < config.end_block);
    }

    #[test]
    fn smoke_test_is_much_smaller() {
        let paper = SimConfig::paper_default(1);
        let smoke = SimConfig::smoke_test(1);
        assert!(smoke.tick_count() < paper.tick_count() / 10);
        let paper_max: usize = paper.populations.iter().map(|p| p.max_borrowers).sum();
        let smoke_max: usize = smoke.populations.iter().map(|p| p.max_borrowers).sum();
        assert!(smoke_max < paper_max);
    }

    #[test]
    fn gas_costs_default_to_mainnet_magnitudes_and_are_tunable() {
        let mut config = SimConfig::paper_default(1);
        assert_eq!(config.liquidation_gas, DEFAULT_LIQUIDATION_GAS);
        assert_eq!(config.auction_gas, DEFAULT_AUCTION_GAS);
        assert_eq!(config.user_op_gas, DEFAULT_USER_OP_GAS);
        // A gas-sensitivity scenario can dial them without touching the engine.
        config.liquidation_gas *= 2;
        assert_eq!(config.liquidation_gas, 1_000_000);
    }

    #[test]
    fn aave_v2_has_highest_multi_collateral_share() {
        let config = SimConfig::paper_default(1);
        let aave_v2 = config.population(Platform::AaveV2).unwrap();
        for population in &config.populations {
            if population.platform != Platform::AaveV2 {
                assert!(aave_v2.multi_collateral_share >= population.multi_collateral_share);
            }
        }
    }
}
