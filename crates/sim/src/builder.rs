//! Fluent construction of [`SimulationEngine`]s.
//!
//! [`EngineBuilder`] is the one documented way to assemble an engine:
//! a [`SimConfig`] plus, optionally, a custom protocol set, price scenario
//! and DEX. Every default reproduces the paper's study setup, so
//! `EngineBuilder::new(config).build()` is exactly what
//! [`SimulationEngine::new`] does — and swapping any piece is one call:
//!
//! ```
//! use defi_lending::dydx;
//! use defi_sim::{EngineBuilder, SimConfig};
//!
//! // The paper scenario, but with the §5.2.3 one-liquidation-per-block
//! // mitigation switched on for dYdX. Start from the stock constructor so
//! // the market listings stay intact, then tweak what the experiment needs.
//! let mut dydx = dydx();
//! dydx.set_one_liquidation_per_block(true);
//! let engine = EngineBuilder::new(SimConfig::smoke_test(7))
//!     .with_protocol(Box::new(dydx))
//!     .build();
//! # drop(engine);
//! ```
//!
//! Protocols are keyed by [`LendingProtocol::platform`]: `with_protocol`
//! replaces the default implementation for that platform (or adds a new
//! platform), `without_protocol` removes one from the run entirely.

use std::collections::BTreeMap;

use defi_amm::Dex;
use defi_chain::Blockchain;
use defi_lending::{paper_protocols, LendingProtocol};
use defi_oracle::MarketScenario;
use defi_types::{Platform, Token};

use crate::config::SimConfig;
use crate::engine::SimulationEngine;
use crate::scenarios::ScenarioCatalog;

/// The engine's protocol set: every platform behind the unified trait.
pub type ProtocolRegistry = BTreeMap<Platform, Box<dyn LendingProtocol>>;

/// Closure that builds (and seeds) the DEX against the freshly created chain.
pub type DexSetup = Box<dyn FnOnce(&mut Blockchain) -> Dex>;

/// Fluent builder for [`SimulationEngine`].
pub struct EngineBuilder {
    config: SimConfig,
    protocols: ProtocolRegistry,
    scenario: Option<MarketScenario>,
    dex_setup: Option<DexSetup>,
    catalog: ScenarioCatalog,
}

impl EngineBuilder {
    /// Start from a scenario configuration with the paper's five protocols,
    /// the two-year price scenario and the standard deep DEX.
    pub fn new(config: SimConfig) -> Self {
        EngineBuilder {
            config,
            protocols: paper_protocols(),
            scenario: None,
            dex_setup: None,
            catalog: ScenarioCatalog::standard(),
        }
    }

    /// Replace the scenario catalog that resolves named scenarios (default:
    /// [`ScenarioCatalog::standard`]). Use this to make user-defined entries
    /// loaded via [`ScenarioCatalog::add_user_entries`] addressable from
    /// [`with_named_scenario`](EngineBuilder::with_named_scenario).
    pub fn with_catalog(mut self, catalog: ScenarioCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Add a protocol, or replace the default implementation of its platform.
    pub fn with_protocol(mut self, protocol: Box<dyn LendingProtocol>) -> Self {
        self.protocols.insert(protocol.platform(), protocol);
        self
    }

    /// Remove a platform from the run.
    pub fn without_protocol(mut self, platform: Platform) -> Self {
        self.protocols.remove(&platform);
        self
    }

    /// Replace the entire protocol registry.
    pub fn with_protocols(mut self, protocols: ProtocolRegistry) -> Self {
        self.protocols = protocols;
        self
    }

    /// Replace the price scenario (default: the paper's two-year path seeded
    /// from the configuration).
    pub fn with_scenario(mut self, scenario: MarketScenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Use a named [`ScenarioCatalog`] entry — or a `+`-composed combination
    /// of entries such as `"liquidation-spiral+stablecoin-depeg"` — as the
    /// price scenario. Each component's configuration adjustments (extra
    /// congestion episodes, bot behaviour, flash-loan availability) are
    /// applied left-to-right when the engine is built. Overrides any
    /// previously set explicit scenario.
    ///
    /// # Panics
    ///
    /// Panics if any component of `name` is not in the builder's catalog.
    pub fn with_named_scenario(mut self, name: &str) -> Self {
        assert!(
            self.catalog.resolve(name).is_some(),
            "unknown scenario '{name}'; valid names: {:?}",
            self.catalog.names()
        );
        self.config.scenario = Some(name.to_string());
        self.scenario = None;
        self
    }

    /// Replace the DEX. The closure receives the chain so it can seed pool
    /// reserves through the ledger.
    pub fn with_dex(mut self, setup: impl FnOnce(&mut Blockchain) -> Dex + 'static) -> Self {
        self.dex_setup = Some(Box::new(setup));
        self
    }

    /// Assemble the engine. The price scenario resolves in order: an explicit
    /// [`with_scenario`](EngineBuilder::with_scenario), then the catalog entry
    /// named by `config.scenario` (set via
    /// [`with_named_scenario`](EngineBuilder::with_named_scenario) or carried
    /// in the configuration, e.g. by a sweep grid), then the paper default.
    pub fn build(self) -> SimulationEngine {
        let EngineBuilder {
            mut config,
            protocols,
            scenario,
            dex_setup,
            catalog,
        } = self;
        let scenario = match scenario {
            Some(scenario) => scenario,
            None => match config.scenario.clone() {
                Some(name) => catalog.build(&name, &mut config).unwrap_or_else(|| {
                    panic!(
                        "unknown scenario '{name}'; valid names: {:?}",
                        catalog.names()
                    )
                }),
                None => MarketScenario::paper_two_year(config.seed ^ 0xfeed),
            },
        };
        let dex_setup = dex_setup.unwrap_or_else(|| Box::new(standard_dex));
        SimulationEngine::from_parts(config, protocols, scenario, dex_setup)
    }
}

/// The default deep DEX: enough ETH/stablecoin and WBTC/ETH depth that
/// flash-loan liquidators can unwind seized collateral (§4.4.4).
pub fn standard_dex(chain: &mut Blockchain) -> Dex {
    let mut dex = Dex::new();
    let ledger = chain.ledger_mut();
    dex.seed_standard_pool(ledger, Token::ETH, 170.0, Token::DAI, 1.0, 400_000_000.0);
    dex.seed_standard_pool(ledger, Token::ETH, 170.0, Token::USDC, 1.0, 400_000_000.0);
    dex.seed_standard_pool(ledger, Token::ETH, 170.0, Token::USDT, 1.0, 200_000_000.0);
    dex.seed_standard_pool(
        ledger,
        Token::WBTC,
        5_300.0,
        Token::ETH,
        170.0,
        200_000_000.0,
    );
    dex
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::Platform;

    #[test]
    fn builder_defaults_cover_all_platforms() {
        let builder = EngineBuilder::new(SimConfig::smoke_test(1));
        assert_eq!(builder.protocols.len(), Platform::ALL.len());
    }

    #[test]
    fn without_protocol_removes_a_platform() {
        let builder =
            EngineBuilder::new(SimConfig::smoke_test(1)).without_protocol(Platform::MakerDao);
        assert!(!builder.protocols.contains_key(&Platform::MakerDao));
        assert_eq!(builder.protocols.len(), Platform::ALL.len() - 1);
    }

    #[test]
    fn with_protocol_replaces_by_platform_key() {
        use defi_lending::compound;
        let builder = EngineBuilder::new(SimConfig::smoke_test(1))
            .with_protocol(Box::new(compound()))
            .with_protocol(Box::new(compound()));
        assert_eq!(builder.protocols.len(), Platform::ALL.len());
    }
}
