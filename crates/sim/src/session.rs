//! Resumable, observable simulation sessions.
//!
//! A [`Session`] owns a [`SimulationEngine`] and drives it one tick at a
//! time, dispatching [`SimObserver`] hooks for everything the tick produced.
//! Unlike the consume-self batch `run()`, a session can be paused after any
//! tick, inspected (chain, oracles, mid-run position books) and resumed —
//! which is what makes checkpointing and streaming analytics possible.
//!
//! ```
//! use defi_sim::{NullObserver, SessionStatus, SimConfig, SimulationEngine};
//!
//! let mut config = SimConfig::smoke_test(3);
//! config.end_block = config.start_block + 4 * config.tick_blocks;
//! let mut session = SimulationEngine::new(config).session();
//! let mut observer = NullObserver;
//!
//! // Run two ticks, pause, inspect, then run to the end.
//! session.step(&mut observer).unwrap();
//! session.step(&mut observer).unwrap();
//! let mid_run_positions = session.snapshot_positions();
//! assert!(session.progress() > 0.0 && !session.is_complete());
//! let report = session.run_to_end(&mut observer).unwrap();
//! assert!(report.final_positions.len() >= mid_run_positions.len());
//! ```

use std::collections::BTreeMap;

use defi_chain::{Blockchain, ChainEvent};
use defi_core::position::Position;
use defi_lending::LendingProtocol;
use defi_oracle::PriceOracle;
use defi_types::{BlockNumber, Platform, Token};

use crate::config::SimConfig;
use crate::engine::{SimulationEngine, SimulationReport};
use crate::observer::{LiquidationObservation, RunEnd, RunStart, SimObserver, TickEnd, TickStart};

/// Errors surfaced by a streaming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A genesis liquidity deposit reverted during session start-up; the run
    /// would have begun with an unfunded market.
    GenesisDeposit {
        /// Platform whose market could not be seeded.
        platform: Platform,
        /// Token being deposited.
        token: Token,
        /// Revert reason reported by the chain.
        reason: String,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::GenesisDeposit {
                platform,
                token,
                reason,
            } => write!(
                f,
                "genesis deposit of {} on {} failed: {reason}",
                token.symbol(),
                platform.name()
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// What a [`Session::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// A tick was executed and more remain.
    Running,
    /// Every tick of the configured window has executed; call
    /// [`Session::finish`] for the final snapshot.
    TicksComplete,
}

/// A resumable simulation run: the engine plus the streaming cursors that
/// track which events and volume samples have already been dispatched.
pub struct Session {
    engine: SimulationEngine,
    block: BlockNumber,
    started: bool,
    ticks_complete: bool,
    event_cursor: usize,
    volume_cursor: usize,
}

impl Session {
    /// Wrap an engine in a fresh session (no tick has run yet).
    pub fn new(engine: SimulationEngine) -> Self {
        let block = engine.config.start_block;
        Session {
            engine,
            block,
            started: false,
            ticks_complete: false,
            event_cursor: 0,
            volume_cursor: 0,
        }
    }

    /// The scenario configuration of the run.
    pub fn config(&self) -> &SimConfig {
        &self.engine.config
    }

    /// The block the session has simulated up to.
    pub fn current_block(&self) -> BlockNumber {
        self.block
    }

    /// Number of ticks executed so far.
    pub fn ticks_run(&self) -> u64 {
        self.engine.tick_index
    }

    /// Fraction of the configured window simulated so far (0–1).
    pub fn progress(&self) -> f64 {
        let span = (self.engine.config.end_block - self.engine.config.start_block).max(1) as f64;
        ((self.block - self.engine.config.start_block) as f64 / span).clamp(0.0, 1.0)
    }

    /// Whether every tick of the window has executed.
    pub fn is_complete(&self) -> bool {
        self.ticks_complete || self.block >= self.engine.config.end_block
    }

    /// Read access to the chain (event log, headers, gas history) mid-run.
    pub fn chain(&self) -> &Blockchain {
        &self.engine.chain
    }

    /// The "true" market price history written so far.
    pub fn market_oracle(&self) -> &PriceOracle {
        &self.engine.market_oracle
    }

    /// A platform's own oracle (what its contracts saw so far).
    pub fn platform_oracle(&self, platform: Platform) -> Option<&PriceOracle> {
        self.engine.oracles.get(&platform)
    }

    /// Checkpoint the per-platform position books at the current block — the
    /// same snapshot [`finish`](Session::finish) takes at the end of the run.
    /// Served from each protocol's incremental book (`&mut` so lazily staled
    /// valuations can refresh); identical to a from-scratch rebuild.
    pub fn snapshot_positions(&mut self) -> BTreeMap<Platform, Vec<Position>> {
        let mut books = BTreeMap::new();
        for (platform, protocol) in self.engine.protocols.iter_mut() {
            let Some(oracle) = self.engine.oracles.get(platform) else {
                continue;
            };
            books.insert(*platform, protocol.book_positions(oracle));
        }
        books
    }

    /// Platforms registered in the engine, in registry order.
    pub fn platforms(&self) -> Vec<Platform> {
        self.engine.protocols.keys().copied().collect()
    }

    /// Run `f` against one protocol and the oracle its contracts read —
    /// the mid-run audit surface the differential band-index harness uses to
    /// compare the banded/cached discovery paths against a from-scratch
    /// shadow scan between ticks. Queries through the protocol's caches may
    /// freshen lazily staled valuations, but they never mutate protocol
    /// state, so auditing does not perturb the run.
    pub fn inspect_protocol<R>(
        &mut self,
        platform: Platform,
        f: impl FnOnce(&mut dyn LendingProtocol, &PriceOracle) -> R,
    ) -> Option<R> {
        let oracle = self.engine.oracles.get(&platform)?;
        let protocol = self.engine.protocols.get_mut(&platform)?;
        Some(f(protocol.as_mut(), oracle))
    }

    /// Seed prices and genesis liquidity, dispatching `on_run_start` and the
    /// seeding events. Called lazily by the first `step`/`finish`.
    fn start(&mut self, observer: &mut dyn SimObserver) -> Result<(), SimError> {
        let mut market_spreads = BTreeMap::new();
        for (platform, protocol) in self.engine.protocols.iter() {
            for token in protocol.listed_tokens() {
                if let Some(params) = protocol.market_risk_params(token) {
                    market_spreads.insert((*platform, token), params.liquidation_spread);
                }
            }
        }
        observer.on_run_start(&RunStart {
            config: &self.engine.config,
            time_map: *self.engine.chain.time_map(),
            market_spreads,
        });
        self.engine.seed_initial_prices();
        self.engine.seed_pool_liquidity()?;
        self.started = true;
        self.dispatch_new(observer);
        Ok(())
    }

    /// Execute one tick, streaming everything it produced to `observer`.
    ///
    /// Returns [`SessionStatus::TicksComplete`] (without running anything)
    /// once the configured window is exhausted.
    pub fn step(&mut self, observer: &mut dyn SimObserver) -> Result<SessionStatus, SimError> {
        if !self.started {
            self.start(observer)?;
        }
        if self.block >= self.engine.config.end_block {
            self.ticks_complete = true;
            return Ok(SessionStatus::TicksComplete);
        }
        self.block += self.engine.config.tick_blocks;
        let tick_index = self.engine.tick_index;
        observer.on_tick_start(&TickStart {
            block: self.block,
            tick_index,
        });
        self.engine.tick(self.block);
        self.engine.tick_index += 1;
        self.dispatch_new(observer);
        if observer.wants_tick_end() {
            let positions = self.snapshot_positions();
            observer.on_tick_end(&TickEnd {
                block: self.block,
                tick_index,
                chain: &self.engine.chain,
                dex: &self.engine.dex,
                oracles: &self.engine.oracles,
                positions,
            });
        }
        if self.block >= self.engine.config.end_block {
            self.ticks_complete = true;
            Ok(SessionStatus::TicksComplete)
        } else {
            Ok(SessionStatus::Running)
        }
    }

    /// Take the final snapshot, dispatch `on_run_end` and hand back the
    /// report. May be called early: a paused session produces a truncated
    /// report snapshotted at the current block.
    pub fn finish(mut self, observer: &mut dyn SimObserver) -> Result<SimulationReport, SimError> {
        if !self.started {
            self.start(observer)?;
        }
        let snapshot_block = self.engine.chain.current_block();
        let mut final_positions = BTreeMap::new();
        for (platform, protocol) in self.engine.protocols.iter_mut() {
            let Some(oracle) = self.engine.oracles.get(platform) else {
                continue;
            };
            final_positions.insert(*platform, protocol.book_positions(oracle));
        }
        observer.on_run_end(&RunEnd {
            config: &self.engine.config,
            snapshot_block,
            final_positions: &final_positions,
            chain: &self.engine.chain,
            market_oracle: &self.engine.market_oracle,
        });
        let engine = self.engine;
        Ok(SimulationReport {
            config: engine.config,
            chain: engine.chain,
            market_oracle: engine.market_oracle,
            platform_oracles: engine.oracles,
            volume_samples: engine.volume_samples,
            final_positions,
            snapshot_block,
            feedback_skipped: engine.feedback_skipped,
            behavior: engine.behavior.map(|behavior| behavior.into_report()),
        })
    }

    /// Run every remaining tick and finish — the streaming equivalent of the
    /// batch [`SimulationEngine::run`].
    pub fn run_to_end(
        mut self,
        observer: &mut dyn SimObserver,
    ) -> Result<SimulationReport, SimError> {
        while self.step(observer)? == SessionStatus::Running {}
        self.finish(observer)
    }

    /// Dispatch events and volume samples recorded since the last cursor
    /// position.
    fn dispatch_new(&mut self, observer: &mut dyn SimObserver) {
        let engine = &self.engine;
        let events = engine.chain.events().as_slice();
        let mut cursor = self.event_cursor;
        while let Some(logged) = events.get(cursor) {
            observer.on_event(logged);
            if matches!(
                logged.event,
                ChainEvent::Liquidation(_) | ChainEvent::AuctionFinalized { .. }
            ) {
                let eth_price = engine
                    .market_oracle
                    .price_at(logged.block, Token::ETH)
                    .unwrap_or_else(|| engine.market_oracle.price_or_zero(Token::ETH));
                observer.on_liquidation(&LiquidationObservation {
                    logged,
                    eth_price,
                    health_factor_before: engine.liquidation_hf.get(&cursor).copied(),
                });
            }
            cursor += 1;
        }
        self.event_cursor = cursor;
        for sample in engine
            .volume_samples
            .get(self.volume_cursor..)
            .unwrap_or(&[])
        {
            observer.on_volume_sample(sample);
        }
        self.volume_cursor = engine.volume_samples.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use crate::SimObserver;
    use defi_chain::LoggedEvent;

    fn short_config(seed: u64, ticks: u64) -> SimConfig {
        let mut config = SimConfig::smoke_test(seed);
        config.end_block = config.start_block + ticks * config.tick_blocks;
        config
    }

    #[derive(Default)]
    struct CountingObserver {
        run_starts: u32,
        ticks: u32,
        events: u32,
        liquidations: u32,
        volume_samples: u32,
        run_ends: u32,
    }

    impl SimObserver for CountingObserver {
        fn on_run_start(&mut self, _run: &RunStart<'_>) {
            self.run_starts += 1;
        }
        fn on_tick_start(&mut self, _tick: &TickStart) {
            self.ticks += 1;
        }
        fn on_event(&mut self, _logged: &LoggedEvent) {
            self.events += 1;
        }
        fn on_liquidation(&mut self, _liquidation: &LiquidationObservation<'_>) {
            self.liquidations += 1;
        }
        fn on_volume_sample(&mut self, _sample: &crate::VolumeSample) {
            self.volume_samples += 1;
        }
        fn on_run_end(&mut self, _end: &RunEnd<'_>) {
            self.run_ends += 1;
        }
    }

    #[test]
    fn session_streams_the_same_run_as_batch() {
        let batch = SimulationEngine::new(short_config(21, 40)).run();
        let mut observer = CountingObserver::default();
        let streamed = SimulationEngine::new(short_config(21, 40))
            .session()
            .run_to_end(&mut observer)
            .unwrap();
        assert_eq!(batch.chain.events().len(), streamed.chain.events().len());
        assert_eq!(batch.volume_samples.len(), streamed.volume_samples.len());
        assert_eq!(batch.snapshot_block, streamed.snapshot_block);
        assert_eq!(observer.run_starts, 1);
        assert_eq!(observer.run_ends, 1);
        assert_eq!(observer.ticks as u64, streamed.config.tick_count());
        assert_eq!(observer.events, streamed.chain.events().len() as u32);
        assert_eq!(
            observer.volume_samples,
            streamed.volume_samples.len() as u32
        );
    }

    #[test]
    fn stepping_pauses_and_resumes() {
        let config = short_config(22, 10);
        let end = config.end_block;
        let mut session = SimulationEngine::new(config).session();
        let mut observer = NullObserver;
        assert_eq!(session.ticks_run(), 0);
        assert_eq!(session.step(&mut observer).unwrap(), SessionStatus::Running);
        assert_eq!(session.ticks_run(), 1);
        assert!(!session.is_complete());
        let mid = session.snapshot_positions();
        assert!(!mid.is_empty());
        // Mid-run inspection surfaces live chain state.
        assert!(session.chain().current_block() > session.config().start_block);
        let report = session.run_to_end(&mut observer).unwrap();
        assert_eq!(report.snapshot_block, end);
    }

    #[test]
    fn finish_early_truncates_the_report() {
        let mut session = SimulationEngine::new(short_config(23, 20)).session();
        let mut observer = NullObserver;
        for _ in 0..5 {
            session.step(&mut observer).unwrap();
        }
        let block = session.current_block();
        let report = session.finish(&mut observer).unwrap();
        assert_eq!(report.snapshot_block, block);
        assert!(report.snapshot_block < report.config.end_block);
    }

    #[test]
    fn step_after_completion_is_a_no_op() {
        let mut session = SimulationEngine::new(short_config(24, 3)).session();
        let mut observer = CountingObserver::default();
        while session.step(&mut observer).unwrap() == SessionStatus::Running {}
        let ticks = observer.ticks;
        assert_eq!(
            session.step(&mut observer).unwrap(),
            SessionStatus::TicksComplete
        );
        assert_eq!(observer.ticks, ticks, "no extra tick after completion");
    }
}
