//! Agent types: borrowers, fixed-spread liquidators and Maker keepers.
//!
//! Agents are parameter bundles; the behavioural logic lives in
//! [`crate::engine`]. Populations are sampled deterministically from the
//! scenario seed so a simulation run is fully reproducible.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use defi_types::{Address, Platform, Token};

use crate::config::PlatformPopulation;

/// A borrower with a (possibly multi-asset) collateral basket and one debt token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BorrowerAgent {
    /// On-chain identity.
    pub address: Address,
    /// Platform the borrower uses.
    pub platform: Platform,
    /// Collateral tokens (one or two entries).
    pub collateral_tokens: Vec<Token>,
    /// Token borrowed.
    pub debt_token: Token,
    /// Initial collateral value in USD.
    pub collateral_value_usd: f64,
    /// Target collateralization ratio at opening (collateral / debt).
    pub target_collateralization: f64,
    /// Whether the borrower actively tops up / repays when the position nears
    /// liquidation.
    pub active_manager: bool,
    /// Whether the position has been closed/abandoned (no further management).
    pub retired: bool,
}

/// A liquidation bot watching one or more fixed-spread platforms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiquidatorAgent {
    /// On-chain identity (the paper counts liquidators by unique address).
    pub address: Address,
    /// Platforms this bot watches ("some liquidators operate on multiple
    /// lending markets", Table 1).
    pub platforms: Vec<Platform>,
    /// Gas-price aggressiveness: fraction above the block median the bot bids.
    pub gas_aggressiveness: f64,
    /// Whether the bot keeps a stale gas price under congestion (the March
    /// 2020 failure mode) instead of re-bidding.
    pub stale_under_congestion: bool,
    /// Whether the bot funds liquidations with flash loans (§4.4.4).
    pub uses_flash_loans: bool,
    /// Which flash-loan pool the bot prefers (dYdX is cheaper, Table 4).
    pub flash_loan_pool: Platform,
}

/// A MakerDAO keeper participating in tend–dent auctions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeeperAgent {
    /// On-chain identity.
    pub address: Address,
    /// Profit margin the keeper insists on (fraction of collateral value).
    pub target_margin: f64,
    /// Whether the keeper's bot fails to rebid under congestion.
    pub stale_under_congestion: bool,
    /// Whether the keeper opportunistically places near-zero bids on
    /// abandoned auctions during congestion (the March 2020 "zero-bid" wins).
    pub opportunistic_sniper: bool,
}

/// Sample a borrower for a platform population.
pub fn sample_borrower(
    rng: &mut StdRng,
    population: &PlatformPopulation,
    index: u64,
    eth_heavy: bool,
) -> BorrowerAgent {
    let address =
        Address::from_seed(0x1000_0000_0000 + ((population.platform as u64) << 32) + index);
    let lognormal = LogNormal::new(
        population.median_collateral_usd.max(1.0).ln(),
        population.collateral_sigma,
    )
    .expect("valid lognormal");
    let collateral_value_usd = lognormal.sample(rng).clamp(1_000.0, 500_000_000.0);

    let stable_borrower = rng.gen_bool(population.stablecoin_borrower_share.clamp(0.0, 1.0));
    let multi = rng.gen_bool(population.multi_collateral_share.clamp(0.0, 1.0));

    let (collateral_tokens, debt_token) = match population.platform {
        Platform::MakerDao => {
            // CDPs: mostly ETH, some WBTC/alts; always DAI debt.
            let token = if rng.gen_bool(0.75) || eth_heavy {
                Token::ETH
            } else if rng.gen_bool(0.5) {
                Token::WBTC
            } else {
                *[Token::LINK, Token::BAT, Token::UNI]
                    .get(rng.gen_range(0..3usize))
                    .unwrap_or(&Token::ETH)
            };
            (vec![token], Token::DAI)
        }
        Platform::DyDx => {
            // dYdX only lists ETH, USDC, DAI.
            if stable_borrower {
                (vec![Token::USDC], Token::DAI)
            } else {
                let debt = if rng.gen_bool(0.6) {
                    Token::DAI
                } else {
                    Token::USDC
                };
                (vec![Token::ETH], debt)
            }
        }
        _ => {
            if stable_borrower {
                (vec![Token::USDC], Token::DAI)
            } else {
                let primary = if rng.gen_bool(0.70) || eth_heavy {
                    Token::ETH
                } else if rng.gen_bool(0.5) {
                    Token::WBTC
                } else {
                    *[Token::LINK, Token::UNI, Token::BAT, Token::ZRX, Token::MKR]
                        .get(rng.gen_range(0..5usize))
                        .unwrap_or(&Token::ETH)
                };
                let mut collateral = vec![primary];
                if multi {
                    let secondary = if primary == Token::ETH {
                        Token::USDC
                    } else {
                        Token::ETH
                    };
                    collateral.push(secondary);
                }
                let debt = match rng.gen_range(0..10) {
                    0..=5 => Token::DAI,
                    6..=8 => Token::USDC,
                    _ => Token::USDT,
                };
                (collateral, debt)
            }
        }
    };

    // Riskier borrowers sit closer to the liquidation boundary; the low end
    // of the multiplier produces positions that open just under their
    // borrowing capacity, the cohort that liquidations feed on.
    let target_collateralization = population.target_collateralization * rng.gen_range(0.80..1.40);
    BorrowerAgent {
        address,
        platform: population.platform,
        collateral_tokens,
        debt_token,
        collateral_value_usd,
        target_collateralization,
        active_manager: rng.gen_bool(population.active_manager_share.clamp(0.0, 1.0)),
        retired: false,
    }
}

/// Sample the liquidator population for a platform.
pub fn sample_liquidators(
    rng: &mut StdRng,
    population: &PlatformPopulation,
    stale_share: f64,
    flash_loan_probability: f64,
) -> Vec<LiquidatorAgent> {
    (0..population.liquidator_count)
        .map(|i| {
            let address = Address::from_seed(
                0x2000_0000_0000 + ((population.platform as u64) << 24) + i as u64,
            );
            // A minority of bots watch several platforms (Table 1 note).
            let platforms = if i % 4 == 0 && population.platform != Platform::MakerDao {
                vec![population.platform, Platform::Compound, Platform::AaveV1]
            } else {
                vec![population.platform]
            };
            LiquidatorAgent {
                address,
                platforms,
                gas_aggressiveness: rng.gen_range(0.05..1.2),
                stale_under_congestion: rng.gen_bool(stale_share.clamp(0.0, 1.0)),
                uses_flash_loans: rng.gen_bool((flash_loan_probability * 8.0).clamp(0.0, 1.0)),
                flash_loan_pool: if rng.gen_bool(0.7) {
                    Platform::DyDx
                } else {
                    Platform::AaveV2
                },
            }
        })
        .collect()
}

/// Sample the keeper population for MakerDAO.
pub fn sample_keepers(rng: &mut StdRng, count: usize, stale_share: f64) -> Vec<KeeperAgent> {
    (0..count.max(2))
        .map(|i| KeeperAgent {
            address: Address::from_seed(0x3000_0000_0000 + i as u64),
            target_margin: rng.gen_range(0.01..0.06),
            stale_under_congestion: i != 0 && rng.gen_bool(stale_share.clamp(0.0, 1.0) * 1.5),
            // Exactly one opportunistic sniper exists in the population,
            // mirroring the handful of actors who captured the March 2020
            // zero-bid auctions.
            opportunistic_sniper: i == 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use rand::SeedableRng;

    #[test]
    fn borrower_sampling_respects_platform_listings() {
        let config = SimConfig::paper_default(1);
        let mut rng = StdRng::seed_from_u64(7);
        for population in &config.populations {
            for i in 0..200 {
                let borrower = sample_borrower(&mut rng, population, i, false);
                assert!(!borrower.collateral_tokens.is_empty());
                assert!(borrower.collateral_value_usd >= 1_000.0);
                match population.platform {
                    Platform::MakerDao => {
                        assert_eq!(borrower.debt_token, Token::DAI);
                        assert_eq!(borrower.collateral_tokens.len(), 1);
                    }
                    Platform::DyDx => {
                        for t in &borrower.collateral_tokens {
                            assert!(matches!(t, Token::ETH | Token::USDC | Token::DAI));
                        }
                        assert!(matches!(borrower.debt_token, Token::DAI | Token::USDC));
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn liquidator_sampling_produces_requested_count() {
        let config = SimConfig::paper_default(1);
        let mut rng = StdRng::seed_from_u64(7);
        let population = config.population(Platform::Compound).unwrap();
        let liquidators = sample_liquidators(&mut rng, population, 0.3, 0.05);
        assert_eq!(liquidators.len(), population.liquidator_count);
        assert!(liquidators.iter().any(|l| l.platforms.len() > 1));
    }

    #[test]
    fn keepers_include_exactly_one_sniper() {
        let mut rng = StdRng::seed_from_u64(7);
        let keepers = sample_keepers(&mut rng, 6, 0.3);
        assert_eq!(keepers.iter().filter(|k| k.opportunistic_sniper).count(), 1);
        assert!(keepers.len() >= 2);
    }

    #[test]
    fn borrower_addresses_are_unique_within_platform() {
        let config = SimConfig::paper_default(1);
        let mut rng = StdRng::seed_from_u64(7);
        let population = config.population(Platform::Compound).unwrap();
        let mut addresses = std::collections::HashSet::new();
        for i in 0..500 {
            let b = sample_borrower(&mut rng, population, i, false);
            assert!(addresses.insert(b.address), "duplicate address at {i}");
        }
    }
}
