//! Agent types: borrowers, fixed-spread liquidators and Maker keepers.
//!
//! Agents are parameter bundles; the behavioural logic lives in
//! [`crate::engine`] and [`crate::behavior`]. Populations are sampled
//! deterministically from the scenario seed so a simulation run is fully
//! reproducible — and *order-independently*: every sampling function derives
//! its own RNG from `(seed, role, platform[, index])`, so the agents a
//! platform gets do not depend on which other platforms are registered, in
//! what order the populations are listed, or how many `book_workers` the run
//! uses. The property tests pin this down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use defi_types::{Address, Platform, Token};

use crate::config::PlatformPopulation;

/// Role tags mixed into the derived sampling seeds so the borrower,
/// liquidator and keeper streams never alias each other.
const TAG_BORROWER: u64 = 0xB0B0_0001;
const TAG_LIQUIDATOR: u64 = 0x11C0_0002;
const TAG_KEEPER: u64 = 0x4EE9_0003;

/// Derive an independent RNG seed from the run seed, a role tag and a salt
/// (platform, index, …) with a splitmix64-style finaliser. Pure function of
/// its inputs, so sampling is insensitive to call order.
pub(crate) fn derive_seed(seed: u64, tag: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn derived_rng(seed: u64, tag: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, tag, salt))
}

/// A borrower with a (possibly multi-asset) collateral basket and one debt token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BorrowerAgent {
    /// On-chain identity.
    pub address: Address,
    /// Platform the borrower uses.
    pub platform: Platform,
    /// Collateral tokens (one or two entries).
    pub collateral_tokens: Vec<Token>,
    /// Token borrowed.
    pub debt_token: Token,
    /// Initial collateral value in USD.
    pub collateral_value_usd: f64,
    /// Target collateralization ratio at opening (collateral / debt).
    pub target_collateralization: f64,
    /// Whether the borrower actively tops up / repays when the position nears
    /// liquidation.
    pub active_manager: bool,
    /// Whether the borrower panic-exits (deleverages hard, selling assets
    /// into the market) when their health factor or the market drops past the
    /// behavioural thresholds. Only acted on when the
    /// [`BehaviorConfig`](crate::BehaviorConfig) layer is enabled.
    pub panic_exiter: bool,
    /// Whether the position has been closed/abandoned (no further management).
    pub retired: bool,
}

/// A liquidation bot watching one or more fixed-spread platforms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiquidatorAgent {
    /// On-chain identity (the paper counts liquidators by unique address).
    pub address: Address,
    /// Platforms this bot watches ("some liquidators operate on multiple
    /// lending markets", Table 1).
    pub platforms: Vec<Platform>,
    /// Gas-price aggressiveness: fraction above the block median the bot bids.
    pub gas_aggressiveness: f64,
    /// Whether the bot keeps a stale gas price under congestion (the March
    /// 2020 failure mode) instead of re-bidding.
    pub stale_under_congestion: bool,
    /// Whether the bot funds liquidations with flash loans (§4.4.4).
    pub uses_flash_loans: bool,
    /// Which flash-loan pool the bot prefers (dYdX is cheaper, Table 4).
    pub flash_loan_pool: Platform,
    /// Reaction latency, in ticks: under the behavioural layer a discovered
    /// opportunity becomes executable for this bot only after this many ticks
    /// have elapsed since discovery.
    pub latency_ticks: u64,
}

/// A MakerDAO keeper participating in tend–dent auctions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeeperAgent {
    /// On-chain identity.
    pub address: Address,
    /// Profit margin the keeper insists on (fraction of collateral value).
    pub target_margin: f64,
    /// Whether the keeper's bot fails to rebid under congestion.
    pub stale_under_congestion: bool,
    /// Whether the keeper opportunistically places near-zero bids on
    /// abandoned auctions during congestion (the March 2020 "zero-bid" wins).
    pub opportunistic_sniper: bool,
    /// Reaction latency, in ticks, before this keeper bites a discovered
    /// underwater vault (behavioural layer only).
    pub latency_ticks: u64,
}

/// Sample a borrower for a platform population. Pure function of
/// `(seed, platform, index)`: the derived RNG makes the bundle independent of
/// how many borrowers other platforms spawned before this one.
pub fn sample_borrower(
    seed: u64,
    population: &PlatformPopulation,
    index: u64,
    panic_share: f64,
) -> BorrowerAgent {
    let platform = population.platform;
    let rng = &mut derived_rng(seed, TAG_BORROWER, ((platform as u64) << 32) | index);
    let address = Address::from_seed(0x1000_0000_0000 + ((platform as u64) << 32) + index);
    let eth_heavy = rng.gen_bool(0.5);
    let lognormal = LogNormal::new(
        population.median_collateral_usd.max(1.0).ln(),
        population.collateral_sigma,
    )
    .expect("valid lognormal");
    let collateral_value_usd = lognormal.sample(rng).clamp(1_000.0, 500_000_000.0);

    let stable_borrower = rng.gen_bool(population.stablecoin_borrower_share.clamp(0.0, 1.0));
    let multi = rng.gen_bool(population.multi_collateral_share.clamp(0.0, 1.0));

    let (collateral_tokens, debt_token) = match population.platform {
        Platform::MakerDao => {
            // CDPs: mostly ETH, some WBTC/alts; always DAI debt.
            let token = if rng.gen_bool(0.75) || eth_heavy {
                Token::ETH
            } else if rng.gen_bool(0.5) {
                Token::WBTC
            } else {
                *[Token::LINK, Token::BAT, Token::UNI]
                    .get(rng.gen_range(0..3usize))
                    .unwrap_or(&Token::ETH)
            };
            (vec![token], Token::DAI)
        }
        Platform::DyDx => {
            // dYdX only lists ETH, USDC, DAI.
            if stable_borrower {
                (vec![Token::USDC], Token::DAI)
            } else {
                let debt = if rng.gen_bool(0.6) {
                    Token::DAI
                } else {
                    Token::USDC
                };
                (vec![Token::ETH], debt)
            }
        }
        _ => {
            if stable_borrower {
                (vec![Token::USDC], Token::DAI)
            } else {
                let primary = if rng.gen_bool(0.70) || eth_heavy {
                    Token::ETH
                } else if rng.gen_bool(0.5) {
                    Token::WBTC
                } else {
                    *[Token::LINK, Token::UNI, Token::BAT, Token::ZRX, Token::MKR]
                        .get(rng.gen_range(0..5usize))
                        .unwrap_or(&Token::ETH)
                };
                let mut collateral = vec![primary];
                if multi {
                    let secondary = if primary == Token::ETH {
                        Token::USDC
                    } else {
                        Token::ETH
                    };
                    collateral.push(secondary);
                }
                let debt = match rng.gen_range(0..10) {
                    0..=5 => Token::DAI,
                    6..=8 => Token::USDC,
                    _ => Token::USDT,
                };
                (collateral, debt)
            }
        }
    };

    // Riskier borrowers sit closer to the liquidation boundary; the low end
    // of the multiplier produces positions that open just under their
    // borrowing capacity, the cohort that liquidations feed on.
    let target_collateralization = population.target_collateralization * rng.gen_range(0.80..1.40);
    BorrowerAgent {
        address,
        platform: population.platform,
        collateral_tokens,
        debt_token,
        collateral_value_usd,
        target_collateralization,
        active_manager: rng.gen_bool(population.active_manager_share.clamp(0.0, 1.0)),
        panic_exiter: rng.gen_bool(panic_share.clamp(0.0, 1.0)),
        retired: false,
    }
}

/// Sample the liquidator population for a platform. Pure function of
/// `(seed, platform)` — the same platform always gets the same bots no matter
/// what else is registered.
pub fn sample_liquidators(
    seed: u64,
    population: &PlatformPopulation,
    stale_share: f64,
    flash_loan_probability: f64,
    max_latency_ticks: u64,
) -> Vec<LiquidatorAgent> {
    let rng = &mut derived_rng(seed, TAG_LIQUIDATOR, population.platform as u64);
    (0..population.liquidator_count)
        .map(|i| {
            let address = Address::from_seed(
                0x2000_0000_0000 + ((population.platform as u64) << 24) + i as u64,
            );
            // A minority of bots watch several platforms (Table 1 note).
            let platforms = if i % 4 == 0 && population.platform != Platform::MakerDao {
                vec![population.platform, Platform::Compound, Platform::AaveV1]
            } else {
                vec![population.platform]
            };
            LiquidatorAgent {
                address,
                platforms,
                gas_aggressiveness: rng.gen_range(0.05..1.2),
                stale_under_congestion: rng.gen_bool(stale_share.clamp(0.0, 1.0)),
                uses_flash_loans: rng.gen_bool((flash_loan_probability * 8.0).clamp(0.0, 1.0)),
                flash_loan_pool: if rng.gen_bool(0.7) {
                    Platform::DyDx
                } else {
                    Platform::AaveV2
                },
                latency_ticks: rng.gen_range(0..max_latency_ticks.saturating_add(1)),
            }
        })
        .collect()
}

/// Sample the keeper population for MakerDAO. Pure function of `(seed,
/// count)` — keepers are a single global population.
pub fn sample_keepers(
    seed: u64,
    count: usize,
    stale_share: f64,
    max_latency_ticks: u64,
) -> Vec<KeeperAgent> {
    let rng = &mut derived_rng(seed, TAG_KEEPER, count as u64);
    (0..count.max(2))
        .map(|i| KeeperAgent {
            address: Address::from_seed(0x3000_0000_0000 + i as u64),
            target_margin: rng.gen_range(0.01..0.06),
            stale_under_congestion: i != 0 && rng.gen_bool(stale_share.clamp(0.0, 1.0) * 1.5),
            // Exactly one opportunistic sniper exists in the population,
            // mirroring the handful of actors who captured the March 2020
            // zero-bid auctions.
            opportunistic_sniper: i == 0,
            latency_ticks: rng.gen_range(0..max_latency_ticks.saturating_add(1)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn borrower_sampling_respects_platform_listings() {
        let config = SimConfig::paper_default(1);
        for population in &config.populations {
            for i in 0..200 {
                let borrower = sample_borrower(7, population, i, 0.2);
                assert!(!borrower.collateral_tokens.is_empty());
                assert!(borrower.collateral_value_usd >= 1_000.0);
                match population.platform {
                    Platform::MakerDao => {
                        assert_eq!(borrower.debt_token, Token::DAI);
                        assert_eq!(borrower.collateral_tokens.len(), 1);
                    }
                    Platform::DyDx => {
                        for t in &borrower.collateral_tokens {
                            assert!(matches!(t, Token::ETH | Token::USDC | Token::DAI));
                        }
                        assert!(matches!(borrower.debt_token, Token::DAI | Token::USDC));
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn liquidator_sampling_produces_requested_count() {
        let config = SimConfig::paper_default(1);
        let population = config.population(Platform::Compound).unwrap();
        let liquidators = sample_liquidators(7, population, 0.3, 0.05, 3);
        assert_eq!(liquidators.len(), population.liquidator_count);
        assert!(liquidators.iter().any(|l| l.platforms.len() > 1));
        assert!(liquidators.iter().all(|l| l.latency_ticks <= 3));
    }

    #[test]
    fn keepers_include_exactly_one_sniper() {
        let keepers = sample_keepers(7, 6, 0.3, 2);
        assert_eq!(keepers.iter().filter(|k| k.opportunistic_sniper).count(), 1);
        assert!(keepers.len() >= 2);
    }

    #[test]
    fn borrower_addresses_are_unique_within_platform() {
        let config = SimConfig::paper_default(1);
        let population = config.population(Platform::Compound).unwrap();
        let mut addresses = std::collections::HashSet::new();
        for i in 0..500 {
            let b = sample_borrower(7, population, i, 0.2);
            assert!(addresses.insert(b.address), "duplicate address at {i}");
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_identity() {
        let config = SimConfig::paper_default(3);
        let population = config.population(Platform::AaveV2).unwrap();
        // Recomputing any borrower in any order yields the same bundle.
        let direct = sample_borrower(3, population, 17, 0.2);
        for i in (0..30).rev() {
            let _ = sample_borrower(3, population, i, 0.2);
        }
        assert_eq!(direct, sample_borrower(3, population, 17, 0.2));
        // Platform populations are independent of sampling order.
        let forward: Vec<_> = config
            .populations
            .iter()
            .map(|p| sample_liquidators(3, p, 0.3, 0.05, 3))
            .collect();
        let reverse: Vec<_> = config
            .populations
            .iter()
            .rev()
            .map(|p| sample_liquidators(3, p, 0.3, 0.05, 3))
            .collect();
        for (f, r) in forward.iter().zip(reverse.iter().rev()) {
            assert_eq!(f, r);
        }
    }
}
