//! Parallel parameter sweeps over simulation sessions.
//!
//! Sensitivity-style studies (seed grids, risk-parameter grids, scenario
//! knobs) need dozens of independent runs. [`SweepRunner`] fans a list of
//! [`SimConfig`]s across `std::thread::scope` workers — each worker builds
//! its own engine, streams the run through a summarising observer, and the
//! results come back indexed by input position, so the output is identical
//! for any worker count.
//!
//! ```
//! use defi_sim::{SimConfig, SweepRunner};
//!
//! // Four seeds of a shortened smoke scenario across two workers.
//! let mut base = SimConfig::smoke_test(40);
//! base.end_block = base.start_block + 3 * base.tick_blocks;
//! let grid = SweepRunner::seed_grid(&base, 4);
//! let summaries = SweepRunner::new(2).run(&grid).unwrap();
//! assert_eq!(summaries.len(), 4);
//! assert_eq!(summaries[0].seed, 40);
//! assert_eq!(summaries[3].seed, 43);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::Serialize;

use defi_chain::ChainEvent;
use defi_core::sensitivity::liquidatable_collateral;
use defi_types::{SignedWad, Token, Wad};

use crate::config::SimConfig;
use crate::observer::{LiquidationObservation, RunEnd, SimObserver};
use crate::session::SimError;

/// Deterministic per-run digest returned by [`SweepRunner::run`]: everything
/// here is a pure function of the run's seed and configuration, so summaries
/// compare equal across worker counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunSummary {
    /// RNG seed of the run.
    pub seed: u64,
    /// Catalog scenario the run used (`paper-two-year` for the default).
    pub scenario: String,
    /// Ticks the scenario executed.
    pub ticks: u64,
    /// Total chain events emitted.
    pub events: usize,
    /// Settled fixed-spread liquidations.
    pub liquidations: u32,
    /// Finalised auctions.
    pub auctions_settled: u32,
    /// Gross liquidator profit across both mechanisms (USD).
    pub gross_profit: SignedWad,
    /// Collateral sold through liquidations (USD).
    pub collateral_sold: Wad,
    /// Open borrowing positions at the snapshot block.
    pub open_positions: u32,
    /// Collateral (USD) that an immediate 43 % ETH decline — the March 2020
    /// crash magnitude — would make liquidatable at the snapshot (Figure 8's
    /// reference point).
    pub eth_decline_43_liquidatable: Wad,
    /// USD of sell-pressure volume the feedback loop could not route through
    /// the DEX (no pool route for the seized token). Zero outside feedback
    /// scenarios; non-zero values mean the spiral understates sell pressure
    /// for those tokens (surfaced rather than silently dropped).
    pub feedback_skipped_usd: Wad,
}

/// Streaming observer that accumulates a [`RunSummary`] in a single pass.
#[derive(Debug)]
struct SummaryObserver {
    liquidations: u32,
    auctions_settled: u32,
    gross_profit: SignedWad,
    collateral_sold: Wad,
    open_positions: u32,
    eth_decline_43_liquidatable: Wad,
}

impl SummaryObserver {
    fn new() -> Self {
        SummaryObserver {
            liquidations: 0,
            auctions_settled: 0,
            gross_profit: SignedWad::ZERO,
            collateral_sold: Wad::ZERO,
            open_positions: 0,
            eth_decline_43_liquidatable: Wad::ZERO,
        }
    }

    fn into_summary(
        self,
        seed: u64,
        scenario: String,
        ticks: u64,
        events: usize,
        feedback_skipped_usd: Wad,
    ) -> RunSummary {
        RunSummary {
            seed,
            scenario,
            ticks,
            events,
            liquidations: self.liquidations,
            auctions_settled: self.auctions_settled,
            gross_profit: self.gross_profit,
            collateral_sold: self.collateral_sold,
            open_positions: self.open_positions,
            eth_decline_43_liquidatable: self.eth_decline_43_liquidatable,
            feedback_skipped_usd,
        }
    }
}

impl SimObserver for SummaryObserver {
    fn on_liquidation(&mut self, liquidation: &LiquidationObservation<'_>) {
        let (repaid, received) = match &liquidation.logged.event {
            ChainEvent::Liquidation(event) => {
                self.liquidations += 1;
                (event.debt_repaid_usd, event.collateral_seized_usd)
            }
            ChainEvent::AuctionFinalized {
                debt_repaid_usd,
                collateral_received_usd,
                ..
            } => {
                self.auctions_settled += 1;
                (*debt_repaid_usd, *collateral_received_usd)
            }
            _ => return,
        };
        self.gross_profit = self.gross_profit.add(SignedWad::sub_wads(received, repaid));
        self.collateral_sold = self.collateral_sold.saturating_add(received);
    }

    fn on_run_end(&mut self, end: &RunEnd<'_>) {
        for positions in end.final_positions.values() {
            self.open_positions += positions.len() as u32;
            self.eth_decline_43_liquidatable = self
                .eth_decline_43_liquidatable
                .saturating_add(liquidatable_collateral(positions, Token::ETH, 0.43));
        }
    }
}

/// Group per-run summaries by the catalog scenario that produced them, in
/// scenario-name order with input order preserved inside each group. `repro
/// --sweep scenarios` reports per-scenario aggregates from this instead of
/// pooling runs of different scenarios into one mean.
pub fn group_by_scenario(summaries: &[RunSummary]) -> Vec<(&str, Vec<&RunSummary>)> {
    let mut groups: std::collections::BTreeMap<&str, Vec<&RunSummary>> =
        std::collections::BTreeMap::new();
    for summary in summaries {
        groups
            .entry(summary.scenario.as_str())
            .or_default()
            .push(summary);
    }
    groups.into_iter().collect()
}

/// Fans independent simulation runs across scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    workers: usize,
}

impl SweepRunner {
    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        SweepRunner {
            workers: workers.max(1),
        }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        SweepRunner::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A grid of `runs` configurations differing only in seed
    /// (`base.seed`, `base.seed + 1`, …).
    pub fn seed_grid(base: &SimConfig, runs: u64) -> Vec<SimConfig> {
        (0..runs)
            .map(|i| {
                let mut config = base.clone();
                config.seed = base.seed.wrapping_add(i);
                config
            })
            .collect()
    }

    /// A grid running the same seed through every named catalog scenario —
    /// one configuration per name, in catalog order. Scenario-specific config
    /// adjustments are applied when each engine is built, so the grid itself
    /// stays a plain `Vec<SimConfig>` and sweeps stay worker-count-
    /// independent. Use [`crate::ScenarioCatalog::standard`]`().names()` for
    /// the full catalog.
    pub fn scenario_grid(base: &SimConfig, names: &[&str]) -> Vec<SimConfig> {
        names
            .iter()
            .map(|name| {
                let mut config = base.clone();
                config.scenario = Some(name.to_string());
                config
            })
            .collect()
    }

    /// Run every configuration through a fresh engine + [`SummaryObserver`]
    /// session and return the per-run summaries in input order. Named
    /// scenarios resolve against [`crate::ScenarioCatalog::standard`]; use
    /// [`run_with_catalog`](SweepRunner::run_with_catalog) for user-defined
    /// entries.
    pub fn run(&self, configs: &[SimConfig]) -> Result<Vec<RunSummary>, SimError> {
        self.run_with_catalog(configs, &crate::ScenarioCatalog::standard())
    }

    /// [`run`](SweepRunner::run), but resolving named scenarios against the
    /// given catalog (which may carry user-defined entries).
    pub fn run_with_catalog(
        &self,
        configs: &[SimConfig],
        catalog: &crate::ScenarioCatalog,
    ) -> Result<Vec<RunSummary>, SimError> {
        self.map(configs, |_, config| {
            let seed = config.seed;
            let scenario = config
                .scenario
                .clone()
                .unwrap_or_else(|| crate::ScenarioCatalog::DEFAULT_NAME.to_string());
            let ticks = config.tick_count();
            let mut observer = SummaryObserver::new();
            let report = crate::EngineBuilder::new(config)
                .with_catalog(catalog.clone())
                .build()
                .session()
                .run_to_end(&mut observer)?;
            let feedback_skipped_usd = report
                .feedback_skipped
                .values()
                .fold(Wad::ZERO, |acc, skipped| acc.saturating_add(skipped.usd));
            Ok(observer.into_summary(
                seed,
                scenario,
                ticks,
                report.chain.events().len(),
                feedback_skipped_usd,
            ))
        })
        .into_iter()
        .collect()
    }

    /// Run an arbitrary job over every configuration, returning results in
    /// input order. The job receives the configuration's index and a clone of
    /// the configuration; each invocation runs on one of the scoped workers.
    pub fn map<T, F>(&self, configs: &[SimConfig], job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, SimConfig) -> T + Sync,
    {
        let total = configs.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(total);
        if workers <= 1 {
            return configs
                .iter()
                .enumerate()
                .map(|(index, config)| job(index, config.clone()))
                .collect();
        }
        // Workers pull indexes from a shared counter and push `(index, T)`
        // pairs into one shared vector; sorting by index afterwards restores
        // input order, so the output is identical for any worker count. A
        // poisoned lock only means another worker panicked mid-push — the
        // scope re-raises that panic once the threads join, so recovering the
        // inner vector here is safe and keeps this path panic-free itself.
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(total));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    let Some(config) = configs.get(index) else {
                        break;
                    };
                    let result = job(index, config.clone());
                    let mut guard = match results.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.push((index, result));
                });
            }
        });
        let mut results = match results.into_inner() {
            Ok(results) => results,
            Err(poisoned) => poisoned.into_inner(),
        };
        results.sort_by_key(|&(index, _)| index);
        results.into_iter().map(|(_, result)| result).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_config(seed: u64, ticks: u64) -> SimConfig {
        let mut config = SimConfig::smoke_test(seed);
        config.end_block = config.start_block + ticks * config.tick_blocks;
        config
    }

    #[test]
    fn seed_grid_varies_only_the_seed() {
        let base = short_config(100, 5);
        let grid = SweepRunner::seed_grid(&base, 3);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0].seed, 100);
        assert_eq!(grid[2].seed, 102);
        for config in &grid {
            assert_eq!(config.end_block, base.end_block);
            assert_eq!(config.populations.len(), base.populations.len());
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let grid = SweepRunner::seed_grid(&short_config(7, 1), 8);
        let seeds = SweepRunner::new(3).map(&grid, |index, config| (index, config.seed));
        for (position, (index, seed)) in seeds.iter().enumerate() {
            assert_eq!(position, *index);
            assert_eq!(*seed, 7 + position as u64);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(SweepRunner::new(4).run(&[]).unwrap().is_empty());
    }

    #[test]
    fn group_by_scenario_partitions_in_name_order() {
        let mut base = short_config(5, 2);
        base.scenario = None;
        let grid = {
            let mut configs =
                SweepRunner::scenario_grid(&base, &["paper-two-year", "stablecoin-depeg"]);
            configs.extend(SweepRunner::scenario_grid(&base, &["paper-two-year"]));
            configs
        };
        let summaries = SweepRunner::new(2).run(&grid).unwrap();
        let groups = group_by_scenario(&summaries);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "paper-two-year");
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, "stablecoin-depeg");
        assert_eq!(groups[1].1.len(), 1);
        let total: usize = groups.iter().map(|(_, runs)| runs.len()).sum();
        assert_eq!(total, summaries.len());
    }

    #[test]
    fn summaries_are_deterministic_per_seed() {
        let grid = SweepRunner::seed_grid(&short_config(11, 25), 2);
        let first = SweepRunner::new(1).run(&grid).unwrap();
        let second = SweepRunner::new(2).run(&grid).unwrap();
        assert_eq!(first, second);
        assert!(first[0].events > 0);
    }
}
