//! # defi-sim
//!
//! The agent-based simulation engine that stands in for two years of mainnet
//! activity. The paper measures real borrowers, liquidation bots and auction
//! keepers; this crate simulates populations of them against the protocol
//! implementations in `defi-lending`, the price scenario in `defi-oracle`,
//! and the chain/gas/mempool substrate in `defi-chain`, producing the same
//! observable surface the paper crawls: liquidation events, auction events,
//! flash-loan events, gas prices, position books and collateral volumes.
//!
//! * [`config`] — scenario configuration, with a [`SimConfig::paper_default`]
//!   matching the study window and a [`SimConfig::smoke_test`] for fast tests.
//! * [`agents`] — borrower, fixed-spread liquidator and auction keeper agents.
//! * [`behavior`] — the behavioural layer: capital-constrained liquidators
//!   with per-token inventory, latency-staggered reactions and borrower
//!   panic exits ([`BehaviorConfig`]).
//! * [`builder`] — the [`EngineBuilder`] fluent API: the documented way to
//!   assemble engines, with pluggable protocols (any
//!   [`LendingProtocol`](defi_lending::LendingProtocol) implementation),
//!   price scenario and DEX.
//! * [`engine`] — the [`SimulationEngine`] driving the tick loop over the
//!   [`ProtocolRegistry`] and the [`SimulationReport`] handed to the
//!   analytics crate.
//! * [`scenarios`] — the named [`ScenarioCatalog`] of stress scenarios
//!   (Black Thursday replay, stablecoin depeg, oracle-lag cascades, gas
//!   spikes, endogenous liquidation spirals), addressable from the builder,
//!   the `repro` harness and sweep grids. Entries compose with `+`
//!   (`"liquidation-spiral+stablecoin-depeg"` is one run), and user-defined
//!   entries can be loaded from a scenario file ([`UserScenarioSpec`]).
//! * [`observer`] — the [`SimObserver`] hook trait streaming a run's events,
//!   liquidations and samples to consumers as they are produced.
//! * [`invariant`] — the [`InvariantObserver`]: per-tick conservation and
//!   solvency invariant checking over any run (attached to every catalog
//!   entry in CI).
//! * [`session`] — the resumable [`Session`] run surface
//!   (`step` / `run_to_end` / `finish`), of which `SimulationEngine::run` is
//!   a thin compatibility wrapper.
//! * [`sweep`] — the [`SweepRunner`] fanning grids of configurations across
//!   scoped worker threads for sensitivity-style studies.

#![forbid(unsafe_code)]

pub mod agents;
pub mod behavior;
pub mod builder;
pub mod config;
pub mod engine;
pub mod invariant;
pub mod observer;
pub mod scenarios;
pub mod session;
pub mod sweep;

pub use agents::{BorrowerAgent, KeeperAgent, LiquidatorAgent};
pub use behavior::{AgentCapital, BehaviorConfig, BehaviorReport, BehaviorStats};
pub use builder::{EngineBuilder, ProtocolRegistry};
pub use config::{PlatformPopulation, SimConfig};
pub use engine::{SimulationEngine, SimulationReport, SkippedVolume, VolumeSample};
pub use invariant::{InvariantObserver, InvariantViolation};
pub use observer::{
    LiquidationObservation, MultiObserver, NullObserver, RunEnd, RunStart, SimObserver, TickEnd,
    TickStart,
};
pub use scenarios::{ScenarioCatalog, ScenarioEntry, ScenarioParseError, UserScenarioSpec};
pub use session::{Session, SessionStatus, SimError};
pub use sweep::{group_by_scenario, RunSummary, SweepRunner};
