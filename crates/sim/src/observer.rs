//! Observer hooks for streaming simulation sessions.
//!
//! A [`SimObserver`] receives the simulation's observable surface *as it is
//! produced* — ticks, chain events, settled liquidations, collateral-volume
//! samples and the end-of-run snapshot — instead of scanning a materialised
//! [`SimulationReport`](crate::SimulationReport) after the fact. The analytics
//! crate's collectors are observers, which is what lets a full study compute
//! in a single pass over the run (see `defi_analytics::StudyCollector`).
//!
//! Observers are driven by a [`Session`](crate::Session): every hook has a
//! default empty body, so an implementation only overrides what it consumes.
//!
//! ```
//! use defi_sim::{SessionStatus, SimConfig, SimObserver, SimulationEngine};
//!
//! /// Counts settled liquidations as they happen.
//! #[derive(Default)]
//! struct LiquidationCounter {
//!     settled: u32,
//! }
//!
//! impl SimObserver for LiquidationCounter {
//!     fn on_liquidation(&mut self, _liquidation: &defi_sim::LiquidationObservation<'_>) {
//!         self.settled += 1;
//!     }
//! }
//!
//! // A few ticks of the smoke scenario, streamed through the counter.
//! let mut config = SimConfig::smoke_test(7);
//! config.end_block = config.start_block + 5 * config.tick_blocks;
//! let mut counter = LiquidationCounter::default();
//! let mut session = SimulationEngine::new(config).session();
//! while session.step(&mut counter).unwrap() == SessionStatus::Running {}
//! let report = session.finish(&mut counter).unwrap();
//! assert_eq!(report.snapshot_block, report.config.end_block);
//! ```

use std::collections::BTreeMap;

use defi_amm::Dex;
use defi_chain::{Blockchain, LoggedEvent};
use defi_core::position::Position;
use defi_oracle::PriceOracle;
use defi_types::{BlockNumber, Platform, TimeMap, Token, Wad};

use crate::config::SimConfig;
use crate::engine::VolumeSample;

/// Context handed to [`SimObserver::on_run_start`] before the first tick.
#[derive(Debug)]
pub struct RunStart<'a> {
    /// The scenario configuration of the run.
    pub config: &'a SimConfig,
    /// The chain's block ⇄ time mapping (for calendar aggregation).
    pub time_map: TimeMap,
    /// Liquidation spread of every listed market with per-market risk
    /// parameters, keyed by `(platform, collateral token)`. Lets invariant
    /// observers check the Eq. 1 claim envelope against each market's actual
    /// spread instead of a global worst-case bound.
    pub market_spreads: BTreeMap<(Platform, Token), Wad>,
}

/// Context handed to [`SimObserver::on_tick_start`] before each tick runs.
#[derive(Debug, Clone, Copy)]
pub struct TickStart {
    /// The block the tick will advance the chain to.
    pub block: BlockNumber,
    /// Zero-based index of the tick within the run.
    pub tick_index: u64,
}

/// A settled liquidation (fixed-spread call or finalised auction) surfaced to
/// observers at the tick it happened.
#[derive(Debug)]
pub struct LiquidationObservation<'a> {
    /// The logged settlement event
    /// ([`ChainEvent::Liquidation`](defi_chain::ChainEvent::Liquidation) or
    /// [`ChainEvent::AuctionFinalized`](defi_chain::ChainEvent::AuctionFinalized))
    /// with its transaction context.
    pub logged: &'a LoggedEvent,
    /// Market ETH price at the settlement block (for valuing the gas fee).
    pub eth_price: Wad,
    /// Health factor the borrower had when the engine discovered the
    /// opportunity (fixed-spread) or bit the position (auctions). `None` for
    /// liquidations executed outside the engine's discovery loop. Invariant
    /// observers assert this is below 1: liquidation only below the threshold.
    pub health_factor_before: Option<Wad>,
}

/// Context handed to [`SimObserver::on_tick_end`] after a tick has fully
/// executed — including the engine's position books, oracles, chain and DEX,
/// so invariant checkers can audit conservation and solvency per tick.
///
/// Building the books costs a full scan per platform, so the session only
/// assembles this context when [`SimObserver::wants_tick_end`] returns true.
#[derive(Debug)]
pub struct TickEnd<'a> {
    /// The block the tick advanced the chain to.
    pub block: BlockNumber,
    /// Zero-based index of the tick that just ran.
    pub tick_index: u64,
    /// The chain after the tick (ledger, event log, headers).
    pub chain: &'a Blockchain,
    /// The DEX after the tick (pool reserves).
    pub dex: &'a Dex,
    /// Each platform's own oracle as of this tick.
    pub oracles: &'a BTreeMap<Platform, PriceOracle>,
    /// Per-platform position books snapshotted at the tick end.
    pub positions: BTreeMap<Platform, Vec<Position>>,
}

/// Context handed to [`SimObserver::on_run_end`] after the final snapshot.
#[derive(Debug)]
pub struct RunEnd<'a> {
    /// The scenario configuration of the run.
    pub config: &'a SimConfig,
    /// Block of the final snapshot.
    pub snapshot_block: BlockNumber,
    /// Position books at the end of the run.
    pub final_positions: &'a BTreeMap<Platform, Vec<Position>>,
    /// The chain (event log, headers, gas history).
    pub chain: &'a Blockchain,
    /// The "true" market price history.
    pub market_oracle: &'a PriceOracle,
}

/// Typed hooks over a streaming simulation run.
///
/// Hooks fire in a fixed order: `on_run_start` once, then per tick
/// `on_tick_start` followed by `on_event` for every chain event the tick
/// emitted (in emission order, with `on_liquidation` fired additionally for
/// settlement events) and `on_volume_sample` for every recorded sample, and
/// finally `on_run_end` once when the session is finished.
pub trait SimObserver {
    /// The run is about to start (prices and genesis liquidity are seeded
    /// immediately after this hook).
    fn on_run_start(&mut self, _run: &RunStart<'_>) {}

    /// A tick is about to execute.
    fn on_tick_start(&mut self, _tick: &TickStart) {}

    /// A chain event was emitted (fires for every event, in emission order).
    fn on_event(&mut self, _logged: &LoggedEvent) {}

    /// A liquidation settled (fires after `on_event` for the same event).
    fn on_liquidation(&mut self, _liquidation: &LiquidationObservation<'_>) {}

    /// A collateral-volume sample was recorded.
    fn on_volume_sample(&mut self, _sample: &VolumeSample) {}

    /// A tick finished executing. Only dispatched when
    /// [`wants_tick_end`](SimObserver::wants_tick_end) returns true, because
    /// assembling the [`TickEnd`] books costs a full position scan.
    fn on_tick_end(&mut self, _tick: &TickEnd<'_>) {}

    /// Whether this observer consumes [`on_tick_end`](SimObserver::on_tick_end)
    /// contexts. Defaults to false so the analytics path pays nothing.
    fn wants_tick_end(&self) -> bool {
        false
    }

    /// The run ended and the final snapshot is available.
    fn on_run_end(&mut self, _end: &RunEnd<'_>) {}
}

/// An observer that ignores everything (the legacy
/// [`SimulationEngine::run`](crate::SimulationEngine::run) path).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// Fans every hook out to a list of observers, in order.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn SimObserver>,
}

impl<'a> MultiObserver<'a> {
    /// An empty fan-out.
    pub fn new() -> Self {
        MultiObserver::default()
    }

    /// Append an observer (builder style).
    pub fn with(mut self, observer: &'a mut dyn SimObserver) -> Self {
        self.observers.push(observer);
        self
    }
}

impl SimObserver for MultiObserver<'_> {
    fn on_run_start(&mut self, run: &RunStart<'_>) {
        for observer in &mut self.observers {
            observer.on_run_start(run);
        }
    }

    fn on_tick_start(&mut self, tick: &TickStart) {
        for observer in &mut self.observers {
            observer.on_tick_start(tick);
        }
    }

    fn on_event(&mut self, logged: &LoggedEvent) {
        for observer in &mut self.observers {
            observer.on_event(logged);
        }
    }

    fn on_liquidation(&mut self, liquidation: &LiquidationObservation<'_>) {
        for observer in &mut self.observers {
            observer.on_liquidation(liquidation);
        }
    }

    fn on_volume_sample(&mut self, sample: &VolumeSample) {
        for observer in &mut self.observers {
            observer.on_volume_sample(sample);
        }
    }

    fn on_tick_end(&mut self, tick: &TickEnd<'_>) {
        for observer in &mut self.observers {
            observer.on_tick_end(tick);
        }
    }

    fn wants_tick_end(&self) -> bool {
        self.observers.iter().any(|o| o.wants_tick_end())
    }

    fn on_run_end(&mut self, end: &RunEnd<'_>) {
        for observer in &mut self.observers {
            observer.on_run_end(end);
        }
    }
}
