//! Scenario-catalog integration: every named entry drives a full engine run
//! with the `InvariantObserver` attached and zero violations, and the
//! `liquidation-spiral` entry demonstrably feeds liquidation sell-pressure
//! back into the price path (the toxic-spiral dynamic the scripted model
//! cannot express).

use defi_oracle::MarketScenario;
use defi_sim::scenarios::liquidation_spiral;
use defi_sim::{
    EngineBuilder, InvariantObserver, NullObserver, ScenarioCatalog, SimConfig, SimulationReport,
};
use defi_types::Token;

/// The smoke window truncated shortly after the March 2020 crash: long
/// enough to produce liquidations on every platform, short enough for debug
/// test runs.
fn crash_window_config(seed: u64) -> SimConfig {
    let mut config = SimConfig::smoke_test(seed);
    config.end_block = 9_780_000;
    config
}

fn run_with_scenario(config: SimConfig, scenario: MarketScenario) -> SimulationReport {
    EngineBuilder::new(config)
        .with_scenario(scenario)
        .build()
        .session()
        .run_to_end(&mut NullObserver)
        .expect("run")
}

#[test]
fn every_catalog_entry_runs_clean_under_the_invariant_observer() {
    let catalog = ScenarioCatalog::standard();
    assert!(catalog.names().len() >= 6);
    for entry in catalog.entries() {
        let mut observer = InvariantObserver::new();
        let report = EngineBuilder::new(crash_window_config(2021))
            .with_named_scenario(&entry.name)
            .build()
            .session()
            .run_to_end(&mut observer)
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", entry.name));
        assert!(
            report.chain.events().len() > 100,
            "{} produced a suspiciously quiet run",
            entry.name
        );
        assert!(
            observer.is_clean(),
            "{}: {} invariant violation(s), first: {}",
            entry.name,
            observer.violations().len(),
            observer.violations()[0]
        );
    }
}

#[test]
fn liquidation_spiral_feeds_sell_pressure_back_into_prices() {
    // The spiral run and its feedback-free twin share every random stream:
    // the same engine seed, and a scenario RNG that draws identically per
    // tick. The only difference is the sell-pressure pass, so the spiral's
    // ETH path must sit at or below the twin's — and strictly below once the
    // crash triggers liquidations.
    let seed = 77;
    let mut spiral_config = crash_window_config(seed);
    let spiral_market = liquidation_spiral(&mut spiral_config, true);
    let spiral = run_with_scenario(spiral_config, spiral_market);

    let mut base_config = crash_window_config(seed);
    let base_market = liquidation_spiral(&mut base_config, false);
    let base = run_with_scenario(base_config, base_market);

    let spiral_path = spiral.market_oracle.history(Token::ETH);
    let base_path = base.market_oracle.history(Token::ETH);
    assert_eq!(spiral_path.len(), base_path.len(), "same tick structure");

    let mut strictly_below = 0usize;
    for (s, b) in spiral_path.iter().zip(base_path.iter()) {
        assert_eq!(s.block, b.block);
        assert!(
            s.price.to_f64() <= b.price.to_f64() * (1.0 + 1e-12),
            "spiral price {} above no-feedback price {} at block {}",
            s.price,
            b.price,
            s.block
        );
        if s.price.to_f64() < b.price.to_f64() * 0.999 {
            strictly_below += 1;
        }
    }
    assert!(
        strictly_below > 10,
        "expected sustained divergence below the no-feedback path, got {strictly_below} ticks"
    );
    let spiral_final = spiral_path.last().unwrap().price.to_f64();
    let base_final = base_path.last().unwrap().price.to_f64();
    assert!(
        spiral_final < base_final,
        "spiral must end below the no-feedback run: {spiral_final} vs {base_final}"
    );

    // The feedback also changes realised liquidation activity: the spiral
    // run liquidates at least as much as the twin (deeper prices, more
    // under-water positions).
    let count = |report: &SimulationReport| {
        report
            .chain
            .query_events(&defi_chain::EventFilter::any().kind(defi_chain::EventKind::Liquidation))
            .len()
    };
    assert!(
        count(&spiral) >= count(&base),
        "spiral run should not liquidate less than the no-feedback run"
    );
}

#[test]
fn named_scenarios_are_deterministic() {
    let run = |seed: u64| {
        EngineBuilder::new(crash_window_config(seed))
            .with_named_scenario("stablecoin-depeg")
            .build()
            .session()
            .run_to_end(&mut NullObserver)
            .unwrap()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.chain.events().len(), b.chain.events().len());
    assert_eq!(a.volume_samples.len(), b.volume_samples.len());
}

#[test]
#[should_panic(expected = "unknown scenario")]
fn unknown_scenario_name_is_rejected() {
    let _ = EngineBuilder::new(SimConfig::smoke_test(1)).with_named_scenario("not-a-scenario");
}
