//! Behavioural-layer integration: capital-constrained liquidators leave
//! strictly more bad debt on the books than perfectly-capitalized ones under
//! identical RNG streams, and the per-agent capital accounting surfaces who
//! ran out.

use defi_sim::{BehaviorConfig, EngineBuilder, NullObserver, SimConfig, SimulationReport};
use defi_types::Wad;

fn crash_run(seed: u64, behavior: BehaviorConfig) -> SimulationReport {
    let mut config = SimConfig::smoke_test(seed);
    config.end_block = 9_780_000;
    config.behavior = behavior;
    EngineBuilder::new(config)
        .with_named_scenario("liquidation-spiral")
        .build()
        .session()
        .run_to_end(&mut NullObserver)
        .expect("run")
}

/// Bad debt left on the books at the snapshot: debt in excess of the
/// collateral backing it, summed over every open position.
fn bad_debt(report: &SimulationReport) -> f64 {
    report
        .final_positions
        .values()
        .flatten()
        .map(|position| {
            (position.total_debt_value().to_f64() - position.total_collateral_value().to_f64())
                .max(0.0)
        })
        .sum()
}

#[test]
fn capital_constraints_strictly_increase_bad_debt() {
    // Both arms run the behavioural layer with identical latency, TTL and
    // panic parameters — the RNG streams are identical tick for tick until
    // the inventory constraint binds — so any divergence in bad debt is
    // attributable to liquidator capital alone.
    let seed = 42;
    let constrained = crash_run(seed, BehaviorConfig::capital_constrained());
    let capitalized = crash_run(seed, BehaviorConfig::perfectly_capitalized());

    let constrained_report = constrained.behavior.as_ref().expect("behavior report");
    let capitalized_report = capitalized.behavior.as_ref().expect("behavior report");

    assert!(
        constrained_report.stats.inventory_exhaustions > 0,
        "the constrained arm must actually run out of inventory mid-cascade"
    );
    assert_eq!(
        capitalized_report.stats.inventory_exhaustions, 0,
        "the perfectly-capitalized control must never exhaust"
    );
    assert!(
        !constrained_report.agents.is_empty(),
        "per-agent exhaustion accounting lists who ran out"
    );

    let constrained_bad = bad_debt(&constrained);
    let capitalized_bad = bad_debt(&capitalized);
    assert!(
        constrained_bad > capitalized_bad,
        "capital-constrained liquidators must leave strictly more bad debt: \
         constrained {constrained_bad:.0} vs capitalized {capitalized_bad:.0}"
    );
}

#[test]
fn behavioral_runs_are_deterministic_and_report_latency_activity() {
    let a = crash_run(7, BehaviorConfig::capital_constrained());
    let b = crash_run(7, BehaviorConfig::capital_constrained());
    assert_eq!(a.chain.events().len(), b.chain.events().len());
    assert_eq!(a.behavior, b.behavior);

    let stats = a.behavior.as_ref().expect("behavior report").stats;
    assert!(
        stats.opportunities_queued > 0,
        "opportunities entered the queue"
    );
    assert!(
        stats.executed_delayed > 0,
        "latency-staggered executions actually happened"
    );
}

#[test]
fn capital_crunch_catalog_entry_runs_the_behavioral_layer() {
    let mut config = SimConfig::smoke_test(9);
    config.end_block = 9_780_000;
    let report = EngineBuilder::new(config)
        .with_named_scenario("capital-crunch-spiral")
        .build()
        .session()
        .run_to_end(&mut NullObserver)
        .expect("run");
    let behavior = report.behavior.as_ref().expect("behavior report");
    assert!(behavior.stats.opportunities_queued > 0);
    assert!(Wad::from_f64(behavior.stats.panic_sell_usd) >= Wad::ZERO);
}
