//! SweepRunner determinism: the per-run summaries of a seed grid must be
//! identical regardless of how many workers execute it — results are indexed
//! by input position and every run is seeded independently, so parallelism
//! must never leak into the output.

use defi_sim::{ScenarioCatalog, SimConfig, SweepRunner};

fn shortened_smoke(seed: u64, ticks: u64) -> SimConfig {
    let mut config = SimConfig::smoke_test(seed);
    config.end_block = config.start_block + ticks * config.tick_blocks;
    config
}

#[test]
fn one_worker_equals_many_workers_on_identical_seed_grids() {
    let grid = SweepRunner::seed_grid(&shortened_smoke(31, 40), 4);

    let serial = SweepRunner::new(1).run(&grid).expect("serial sweep");
    let four_workers = SweepRunner::new(4).run(&grid).expect("parallel sweep");

    assert_eq!(serial, four_workers);
    assert_eq!(serial.len(), 4);
    for (index, summary) in serial.iter().enumerate() {
        assert_eq!(summary.seed, 31 + index as u64, "summaries keep grid order");
        assert!(summary.events > 0, "each run actually simulated");
    }
}

#[test]
fn scenario_grid_is_worker_count_independent() {
    // The catalog sweep mirrors the seed-grid guarantee: results are indexed
    // by input position, so a serial and a parallel sweep of the same
    // scenario grid must be identical, in catalog order.
    let catalog = ScenarioCatalog::standard();
    let names = catalog.names();
    let grid = SweepRunner::scenario_grid(&shortened_smoke(17, 30), &names);
    assert_eq!(grid.len(), names.len());

    let serial = SweepRunner::new(1).run(&grid).expect("serial sweep");
    let four_workers = SweepRunner::new(4).run(&grid).expect("parallel sweep");

    assert_eq!(serial, four_workers);
    for (summary, name) in serial.iter().zip(&names) {
        assert_eq!(summary.scenario, *name, "summaries keep catalog order");
        assert_eq!(summary.seed, 17, "scenario grids share the base seed");
        assert!(summary.events > 0, "each scenario actually simulated");
    }
}

#[test]
fn full_smoke_summary_reflects_the_crash_window() {
    let grid = SweepRunner::seed_grid(&SimConfig::smoke_test(42), 1);
    let summaries = SweepRunner::new(1).run(&grid).expect("sweep");
    let summary = &summaries[0];
    assert!(
        summary.liquidations > 10,
        "crash window produces liquidations"
    );
    assert!(summary.auctions_settled > 0, "Maker auctions settle");
    assert!(summary.open_positions > 0);
}
