//! MakerDAO: collateralized debt positions and the tend–dent liquidation
//! auction (§3.2.1, §3.3, Figure 2).
//!
//! A borrower locks collateral (e.g. ETH) in a CDP and mints DAI against it,
//! subject to the ilk's liquidation ratio (e.g. 150 %). When the collateral
//! value falls below `debt × liquidation_ratio`, anyone can `bite` the CDP,
//! which starts a two-phase auction:
//!
//! * **tend** — bidders raise the amount of DAI debt they will repay in
//!   exchange for *all* the collateral; once a bid covers the full debt the
//!   auction flips to
//! * **dent** — bidders accept *less and less* collateral for repaying the
//!   full debt; the unclaimed remainder is returned to the borrower.
//!
//! The auction terminates when either the auction length (since initiation)
//! or the bid duration (since the last bid) elapses; the winner then calls
//! `deal` to settle. The March 2020 incident — keepers failing to bid under
//! congestion, letting near-zero tend bids win — emerges naturally from this
//! mechanism plus the mempool model in `defi-chain`.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

use defi_chain::{AuctionId, AuctionPhase, ChainEvent, Ledger};
use defi_core::mechanism::AuctionParams;
use defi_core::position::{CollateralHolding, DebtHolding, Position};
use defi_oracle::PriceOracle;
use defi_types::{mul_div_ceil, Address, BlockNumber, Platform, Token, Wad, WAD};

use crate::book::{BookSource, BookStats, BookTotals, PositionBook};
use crate::error::ProtocolError;

/// Per-collateral-type ("ilk") risk parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IlkParams {
    /// Minimum collateralization ratio, e.g. 1.5 = 150 %.
    pub liquidation_ratio: Wad,
    /// Annual stability fee charged on drawn DAI (simplified: accrued lazily
    /// into the CDP debt when touched).
    pub stability_fee: f64,
    /// Liquidation penalty added to the debt when a CDP is bitten (13 %).
    pub liquidation_penalty: Wad,
}

impl Default for IlkParams {
    fn default() -> Self {
        IlkParams {
            // lint:allow(fixed-float) ilk defaults are config-space constants quantized once at listing
            liquidation_ratio: Wad::from_f64(1.5),
            stability_fee: 0.02,
            // lint:allow(fixed-float) ilk defaults are config-space constants quantized once at listing
            liquidation_penalty: Wad::from_f64(0.13),
        }
    }
}

/// A collateralized debt position.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Cdp {
    /// Owner.
    pub owner: Address,
    /// Collateral token of the vault.
    pub collateral_token: Token,
    /// Locked collateral (token units).
    pub collateral: Wad,
    /// Outstanding DAI debt.
    pub debt: Wad,
}

/// The best bid of an auction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bid {
    /// Bidder address.
    pub bidder: Address,
    /// DAI the bidder commits to repay.
    pub debt_bid: Wad,
    /// Collateral the bidder accepts.
    pub collateral_bid: Wad,
    /// Block of the bid.
    pub block: BlockNumber,
}

/// A running (or finished) tend–dent auction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Auction {
    /// Identifier.
    pub id: AuctionId,
    /// Borrower whose CDP is being liquidated.
    pub borrower: Address,
    /// Collateral token on auction.
    pub collateral_token: Token,
    /// Collateral amount on auction (token units).
    pub collateral: Wad,
    /// Debt to recover (DAI), including the liquidation penalty.
    pub debt: Wad,
    /// Current phase.
    pub phase: AuctionPhase,
    /// Best bid so far.
    pub best_bid: Option<Bid>,
    /// Block at which the auction was initiated.
    pub started_at: BlockNumber,
    /// Block of the most recent bid (equals `started_at` before any bid).
    pub last_bid_at: BlockNumber,
    /// Number of tend bids placed.
    pub tend_bids: u32,
    /// Number of dent bids placed.
    pub dent_bids: u32,
    /// Whether `deal` has been called.
    pub finalized: bool,
}

impl Auction {
    /// Whether the auction has terminated (and can be finalised) at `block`
    /// under the given parameters: auction-length or bid-duration condition.
    pub fn has_terminated(&self, block: BlockNumber, params: &AuctionParams) -> bool {
        if self.finalized {
            return true;
        }
        let length_elapsed = block.saturating_sub(self.started_at) >= params.auction_length_blocks;
        let bid_elapsed = self.best_bid.is_some()
            && block.saturating_sub(self.last_bid_at) >= params.bid_duration_blocks;
        length_elapsed || bid_elapsed
    }
}

/// Outcome of a finalised auction, mirroring the paper's per-auction
/// statistics (§4.3.3).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuctionOutcome {
    /// Auction identifier.
    pub id: AuctionId,
    /// Winning bidder (`None` when no bid was placed and the collateral
    /// returns to the borrower).
    pub winner: Option<Address>,
    /// DAI repaid by the winner.
    pub debt_repaid: Wad,
    /// Collateral received by the winner (token units).
    pub collateral_received: Wad,
    /// Phase in which the auction terminated.
    pub final_phase: AuctionPhase,
    /// Duration in blocks from initiation to finalisation.
    pub duration_blocks: u64,
}

/// The MakerDAO protocol: CDPs + auctions.
#[derive(Debug, Clone)]
pub struct MakerProtocol {
    /// Ledger account holding locked collateral and escrowed DAI.
    pub pool_address: Address,
    ilks: BTreeMap<Token, IlkParams>,
    cdps: HashMap<Address, Cdp>,
    auctions: BTreeMap<AuctionId, Auction>,
    auction_params: AuctionParams,
    next_auction_id: AuctionId,
    /// Incremental valuation cache + critical-price liquidation index (see
    /// [`crate::book`]).
    book: PositionBook,
}

/// Borrow-view of the CDP state handed to the [`PositionBook`].
struct MakerView<'a> {
    ilks: &'a BTreeMap<Token, IlkParams>,
    cdps: &'a HashMap<Address, Cdp>,
}

impl BookSource for MakerView<'_> {
    fn fill_position(&self, oracle: &PriceOracle, account: Address, slot: &mut Position) -> bool {
        let Some(cdp) = self.cdps.get(&account) else {
            return false;
        };
        let Some(ilk) = self.ilks.get(&cdp.collateral_token) else {
            return false;
        };
        if !fill_cdp_position(cdp, ilk, oracle, account, slot) {
            return false;
        }
        // The legacy `positions()` rebuild drops emptied (post-bite) CDPs.
        !slot.collateral.is_empty() || !slot.debt.is_empty()
    }

    fn in_book(&self, _position: &Position) -> bool {
        // Maker's observable book is every open CDP.
        true
    }

    fn sensitive_tokens(&self, position: &Position, out: &mut Vec<Token>) {
        // DAI debt is valued at the vat's 1-USD par, so only the collateral
        // price enters the valuation — which is what makes every CDP a
        // single-price account the critical index can cover exactly.
        for holding in &position.collateral {
            if !out.contains(&holding.token) {
                out.push(holding.token);
            }
        }
    }

    fn debt_tokens(&self, _position: &Position, _out: &mut Vec<Token>) {
        // Stability fees accrue lazily in this model; no per-block index.
    }

    fn critical_price(&self, account: Address, _position: &Position) -> Option<(Token, u128)> {
        let cdp = self.cdps.get(&account)?;
        if cdp.debt.is_zero() || cdp.collateral.is_zero() {
            return None;
        }
        let ilk = self.ilks.get(&cdp.collateral_token)?;
        // Bite condition: collateral × p < debt × liquidation_ratio, with the
        // truncating fixed-point multiply on the left. The exact threshold is
        // crit = ⌈required × WAD / collateral⌉: the CDP is liquidatable iff
        // the raw oracle price is strictly below it.
        let required = cdp
            .debt
            .checked_mul(ilk.liquidation_ratio)
            .unwrap_or(Wad::MAX);
        let crit = mul_div_ceil(required.raw(), WAD, cdp.collateral.raw()).unwrap_or(u128::MAX);
        Some((cdp.collateral_token, crit))
    }

    fn reprice_position(
        &self,
        oracle: &PriceOracle,
        position: &mut Position,
        moved: &[Token],
    ) -> bool {
        // Term path: only the collateral value term depends on an oracle
        // price (DAI debt is valued at the vat's 1-USD par, and
        // `sensitive_tokens` reports collateral only, so `moved` can never
        // name the debt side). Same arithmetic as `fill_cdp_position` on the
        // same cached amount — byte-identical by construction.
        for holding in &mut position.collateral {
            if moved.contains(&holding.token) {
                let price = oracle.price_or_zero(holding.token);
                holding.value_usd = holding.amount.checked_mul(price).unwrap_or(Wad::MAX);
            }
        }
        true
    }
}

/// Build `slot` in place as the CDP's valuation snapshot — the one valuation
/// code path shared by [`MakerProtocol::position`] and the incremental book.
fn fill_cdp_position(
    cdp: &Cdp,
    ilk: &IlkParams,
    oracle: &PriceOracle,
    owner: Address,
    slot: &mut Position,
) -> bool {
    slot.owner = owner;
    slot.platform = Some(Platform::MakerDao);
    slot.collateral.clear();
    slot.debt.clear();
    let price = oracle.price_or_zero(cdp.collateral_token);
    let lt = Wad::ONE
        .checked_div(ilk.liquidation_ratio)
        // lint:allow(fixed-float) fallback threshold for a zero liquidation ratio; a config-space constant, unreachable for listed ilks
        .unwrap_or(Wad::from_f64(2.0 / 3.0));
    if !cdp.collateral.is_zero() {
        slot.collateral.push(CollateralHolding {
            token: cdp.collateral_token,
            amount: cdp.collateral,
            // Overflow saturates toward the true (huge) value so an
            // over-collateralised CDP never looks empty and bitable.
            value_usd: cdp.collateral.checked_mul(price).unwrap_or(Wad::MAX),
            liquidation_threshold: lt,
            liquidation_spread: ilk.liquidation_penalty,
        });
    }
    if !cdp.debt.is_zero() {
        // The vat accounts DAI at its 1-USD par price: the contracts are
        // oblivious to DAI's market price, so valuing the debt at par is
        // what makes HF < 1 coincide *exactly* with the bite condition
        // (collateral value < debt × liquidation ratio) even while DAI
        // trades off peg.
        slot.debt.push(DebtHolding {
            token: Token::DAI,
            amount: cdp.debt,
            value_usd: cdp.debt,
        });
    }
    true
}

impl MakerProtocol {
    /// Create the protocol with the given auction parameters.
    pub fn new(auction_params: AuctionParams) -> Self {
        MakerProtocol {
            pool_address: Address::from_label("makerdao-vat"),
            ilks: BTreeMap::new(),
            cdps: HashMap::new(),
            auctions: BTreeMap::new(),
            auction_params,
            next_auction_id: 1,
            book: PositionBook::new(),
        }
    }

    /// Split into the valuation cache and the read-view it re-values through.
    fn split_book(&mut self) -> (&mut PositionBook, MakerView<'_>) {
        (
            &mut self.book,
            MakerView {
                ilks: &self.ilks,
                cdps: &self.cdps,
            },
        )
    }

    /// The auction parameters currently in force.
    pub fn auction_params(&self) -> &AuctionParams {
        &self.auction_params
    }

    /// Update the auction parameters (the post-March-2020 governance change
    /// visible in Figure 7).
    pub fn set_auction_params(&mut self, params: AuctionParams) {
        self.auction_params = params;
    }

    /// Register a collateral type. Re-listing an existing ilk replaces its
    /// risk parameters, which changes every cached valuation's thresholds —
    /// the whole book re-values.
    pub fn list_ilk(&mut self, token: Token, params: IlkParams) {
        self.book.invalidate_all();
        self.ilks.insert(token, params);
    }

    /// Parameters of an ilk.
    pub fn ilk(&self, token: Token) -> Option<IlkParams> {
        self.ilks.get(&token).copied()
    }

    /// The registered collateral types, in deterministic order.
    pub fn ilk_tokens(&self) -> Vec<Token> {
        self.ilks.keys().copied().collect()
    }

    /// The CDP of an owner, if any.
    pub fn cdp(&self, owner: Address) -> Option<&Cdp> {
        self.cdps.get(&owner)
    }

    /// All open CDPs.
    pub fn cdps(&self) -> impl Iterator<Item = &Cdp> {
        self.cdps.values()
    }

    /// A running auction by id.
    pub fn auction(&self, id: AuctionId) -> Option<&Auction> {
        self.auctions.get(&id)
    }

    /// All auctions (running and finalised).
    pub fn auctions(&self) -> impl Iterator<Item = &Auction> {
        self.auctions.values()
    }

    /// Auctions that have not been finalised yet.
    pub fn open_auctions(&self) -> Vec<AuctionId> {
        self.auctions
            .values()
            .filter(|a| !a.finalized)
            .map(|a| a.id)
            .collect()
    }

    // --------------------------------------------------------------- CDP ops

    /// Open (or top up) a CDP by locking collateral.
    pub fn lock_collateral(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        owner: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        if !self.ilks.contains_key(&token) {
            return Err(ProtocolError::MarketNotListed(token));
        }
        ledger.transfer(owner, self.pool_address, token, amount)?;
        let cdp = self.cdps.entry(owner).or_insert(Cdp {
            owner,
            collateral_token: token,
            collateral: Wad::ZERO,
            debt: Wad::ZERO,
        });
        if cdp.collateral_token != token && !cdp.collateral.is_zero() {
            // One collateral type per CDP in this model.
            return Err(ProtocolError::MarketNotListed(token));
        }
        cdp.collateral_token = token;
        cdp.collateral = cdp.collateral.saturating_add(amount);
        self.book.mark_dirty(owner);
        events.push(ChainEvent::Deposit {
            platform: Platform::MakerDao,
            account: owner,
            token,
            amount,
        });
        Ok(())
    }

    /// Draw (mint) DAI against the CDP, respecting the liquidation ratio.
    pub fn draw_dai(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        owner: Address,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        let cdp = self
            .cdps
            .get(&owner)
            .ok_or(ProtocolError::UnknownCdp(owner))?;
        let ilk = self
            .ilks
            .get(&cdp.collateral_token)
            .copied()
            .ok_or(ProtocolError::MarketNotListed(cdp.collateral_token))?;
        let price = oracle
            .price(cdp.collateral_token)
            .ok_or(ProtocolError::MissingPrice(cdp.collateral_token))?;
        let collateral_value = cdp
            .collateral
            .checked_mul(price)
            .map_err(|_| ProtocolError::Arithmetic)?;
        let new_debt = cdp.debt.saturating_add(amount);
        let required = new_debt
            .checked_mul(ilk.liquidation_ratio)
            .map_err(|_| ProtocolError::Arithmetic)?;
        if collateral_value < required {
            return Err(ProtocolError::ExceedsBorrowingCapacity {
                capacity: collateral_value,
                required,
            });
        }
        // Mint DAI to the owner.
        ledger.mint(owner, Token::DAI, amount);
        self.cdps
            .get_mut(&owner)
            .ok_or(ProtocolError::UnknownCdp(owner))?
            .debt = new_debt;
        self.book.mark_dirty(owner);
        events.push(ChainEvent::Borrow {
            platform: Platform::MakerDao,
            borrower: owner,
            token: Token::DAI,
            amount,
        });
        Ok(())
    }

    /// Repay DAI debt (burning the DAI). Repaying more than the outstanding
    /// debt is rejected with [`ProtocolError::RepayExceedsOutstanding`].
    pub fn repay_dai(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        owner: Address,
        amount: Wad,
    ) -> Result<Wad, ProtocolError> {
        let cdp = self
            .cdps
            .get_mut(&owner)
            .ok_or(ProtocolError::UnknownCdp(owner))?;
        if amount > cdp.debt {
            return Err(ProtocolError::RepayExceedsOutstanding {
                outstanding: cdp.debt,
                requested: amount,
            });
        }
        let repaid = amount;
        ledger.burn(owner, Token::DAI, repaid)?;
        cdp.debt = cdp.debt.saturating_sub(repaid);
        self.book.mark_dirty(owner);
        events.push(ChainEvent::Repay {
            platform: Platform::MakerDao,
            borrower: owner,
            token: Token::DAI,
            amount: repaid,
        });
        Ok(repaid)
    }

    /// Free collateral from the CDP while staying above the liquidation ratio.
    pub fn free_collateral(
        &mut self,
        ledger: &mut Ledger,
        oracle: &PriceOracle,
        owner: Address,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        let cdp = self
            .cdps
            .get(&owner)
            .ok_or(ProtocolError::UnknownCdp(owner))?;
        if cdp.collateral < amount {
            return Err(ProtocolError::NoCollateralInToken(cdp.collateral_token));
        }
        let ilk = self
            .ilks
            .get(&cdp.collateral_token)
            .copied()
            .unwrap_or_default();
        let price = oracle
            .price(cdp.collateral_token)
            .ok_or(ProtocolError::MissingPrice(cdp.collateral_token))?;
        let remaining_value = (cdp.collateral - amount)
            .checked_mul(price)
            .map_err(|_| ProtocolError::Arithmetic)?;
        let required = cdp
            .debt
            .checked_mul(ilk.liquidation_ratio)
            .map_err(|_| ProtocolError::Arithmetic)?;
        if remaining_value < required {
            return Err(ProtocolError::WouldBecomeUnhealthy);
        }
        let token = cdp.collateral_token;
        ledger.transfer(self.pool_address, owner, token, amount)?;
        self.cdps
            .get_mut(&owner)
            .ok_or(ProtocolError::UnknownCdp(owner))?
            .collateral -= amount;
        self.book.mark_dirty(owner);
        Ok(())
    }

    /// Whether a CDP is eligible for liquidation at current prices.
    pub fn is_liquidatable(&self, oracle: &PriceOracle, owner: Address) -> bool {
        let Some(cdp) = self.cdps.get(&owner) else {
            return false;
        };
        if cdp.debt.is_zero() {
            return false;
        }
        let Some(ilk) = self.ilks.get(&cdp.collateral_token) else {
            return false;
        };
        let Some(price) = oracle.price(cdp.collateral_token) else {
            return false;
        };
        // Both sides saturate toward their true (huge) values on overflow:
        // zeroing the collateral side would spuriously bite a giant CDP.
        let collateral_value = cdp.collateral.checked_mul(price).unwrap_or(Wad::MAX);
        let required = cdp
            .debt
            .checked_mul(ilk.liquidation_ratio)
            .unwrap_or(Wad::MAX);
        collateral_value < required
    }

    /// CDPs eligible for liquidation, in a deterministic (sorted) order so
    /// that simulation runs are reproducible.
    pub fn liquidatable_cdps(&self, oracle: &PriceOracle) -> Vec<Address> {
        let mut owners: Vec<Address> = self
            .cdps
            .keys()
            .copied()
            .filter(|owner| self.is_liquidatable(oracle, *owner))
            .collect();
        owners.sort();
        owners
    }

    /// Valuation snapshot of one CDP as a generic [`Position`] (the LT used
    /// is the inverse of the liquidation ratio, so HF < 1 coincides with the
    /// CDP liquidation condition). Always computed from scratch — the
    /// reference path the incremental book is tested against.
    pub fn position(&self, oracle: &PriceOracle, owner: Address) -> Option<Position> {
        let cdp = self.cdps.get(&owner)?;
        let ilk = self.ilks.get(&cdp.collateral_token)?;
        let mut position = Position::new(owner);
        fill_cdp_position(cdp, ilk, oracle, owner, &mut position).then_some(position)
    }

    /// Valuation snapshots of all CDPs, rebuilt from scratch (the reference
    /// path; the engine reads the incremental
    /// [`cached_book`](MakerProtocol::cached_book)).
    pub fn positions(&self, oracle: &PriceOracle) -> Vec<Position> {
        let mut owners: Vec<Address> = self.cdps.keys().copied().collect();
        owners.sort();
        owners
            .into_iter()
            .filter_map(|o| self.position(oracle, o))
            .filter(|p| !p.collateral.is_empty() || !p.debt.is_empty())
            .collect()
    }

    // ------------------------------------------------------- incremental book

    /// All open CDPs served from the incremental cache.
    pub fn cached_book(&mut self, oracle: &PriceOracle) -> Vec<Position> {
        let (book, view) = self.split_book();
        book.book_positions(&view, oracle)
    }

    /// Visit every open CDP without materialising a snapshot vector.
    pub fn for_each_book_position(
        &mut self,
        oracle: &PriceOracle,
        visit: &mut dyn FnMut(&Position),
    ) {
        let (book, view) = self.split_book();
        book.for_each_book_position(&view, oracle, visit);
    }

    /// CDPs eligible for liquidation via the critical-price index: a range
    /// scan over each collateral token's ordered threshold map instead of a
    /// full-book filter. Exact — the thresholds replicate the bite condition
    /// in the same fixed-point arithmetic — and re-values only the accounts
    /// it returns.
    pub fn cached_liquidatable_cdps(&mut self, oracle: &PriceOracle) -> Vec<Address> {
        let candidates = {
            let (book, view) = self.split_book();
            book.liquidatable_accounts(&view, oracle)
        };
        // Belt and braces: re-check candidates through the reference bite
        // condition so a threshold-map bug can only ever hide an account,
        // never invent one. The two agree everywhere except when
        // `collateral × price` overflows u128 fixed-point — a collateral
        // valuation beyond ~3.4·10²⁰ USD, five orders of magnitude past the
        // 10¹⁵-USD sanity ceiling the invariant observer already rejects as
        // saturated arithmetic — so within the suite's representable domain
        // the cached surface is exact.
        candidates
            .into_iter()
            .filter(|owner| self.is_liquidatable(oracle, *owner))
            .collect()
    }

    /// Running aggregate totals over the CDP book (volume sampling).
    pub fn book_totals(&mut self, oracle: &PriceOracle) -> BookTotals {
        let (book, view) = self.split_book();
        book.totals(&view, oracle)
    }

    /// Freeze the CDP book into an immutable, index-carrying
    /// [`BookSnapshot`](crate::snapshot::BookSnapshot) for concurrent
    /// readers.
    pub fn book_snapshot(&mut self, oracle: &PriceOracle) -> crate::snapshot::BookSnapshot {
        let (book, view) = self.split_book();
        book.snapshot(&view, oracle)
    }

    /// The cached snapshot of one CDP (exact after any cached query).
    pub fn cached_position(&self, owner: Address) -> Option<&Position> {
        self.book.cached_position(owner)
    }

    /// Cache-maintenance counters (scale benchmarks, no-op-tick tests).
    pub fn book_stats(&self) -> BookStats {
        self.book.stats()
    }

    /// Worker threads the book may fan re-valuation across (see
    /// [`PositionBook::set_workers`]).
    pub fn set_book_workers(&mut self, workers: usize) {
        self.book.set_workers(workers);
    }

    /// Total USD value of locked collateral (running total maintained by the
    /// incremental book).
    pub fn total_collateral_value(&mut self, oracle: &PriceOracle) -> Wad {
        let (book, view) = self.split_book();
        book.all_totals(&view, oracle).0
    }

    // ------------------------------------------------------------ auction ops

    /// `bite`: initiate the collateral auction of a liquidatable CDP. The
    /// CDP's collateral moves into the auction; its debt (plus penalty) is the
    /// amount to recover.
    pub fn bite(
        &mut self,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        borrower: Address,
    ) -> Result<AuctionId, ProtocolError> {
        if !self.is_liquidatable(oracle, borrower) {
            return Err(ProtocolError::NotLiquidatable(borrower));
        }
        let cdp = self
            .cdps
            .get_mut(&borrower)
            .ok_or(ProtocolError::UnknownCdp(borrower))?;
        let ilk = self
            .ilks
            .get(&cdp.collateral_token)
            .copied()
            .unwrap_or_default();
        let debt_with_penalty = cdp
            .debt
            .checked_mul(Wad::ONE.saturating_add(ilk.liquidation_penalty))
            .map_err(|_| ProtocolError::Arithmetic)?;
        let id = self.next_auction_id;
        self.next_auction_id += 1;
        let auction = Auction {
            id,
            borrower,
            collateral_token: cdp.collateral_token,
            collateral: cdp.collateral,
            debt: debt_with_penalty,
            phase: AuctionPhase::Tend,
            best_bid: None,
            started_at: block,
            last_bid_at: block,
            tend_bids: 0,
            dent_bids: 0,
            finalized: false,
        };
        events.push(ChainEvent::AuctionStarted {
            auction_id: id,
            borrower,
            collateral_token: auction.collateral_token,
            collateral_amount: auction.collateral,
            debt: auction.debt,
        });
        // The CDP is emptied: collateral is now owned by the auction, the
        // debt is being recovered through it.
        cdp.collateral = Wad::ZERO;
        cdp.debt = Wad::ZERO;
        self.book.mark_dirty(borrower);
        self.auctions.insert(id, auction);
        Ok(id)
    }

    /// Place a bid. In the tend phase `debt_bid` is the DAI the bidder will
    /// repay for all the collateral; once `debt_bid` reaches the full debt
    /// the auction flips to the dent phase, where `collateral_bid` is the
    /// (decreasing) collateral accepted for repaying the full debt.
    ///
    /// The bidder escrows the DAI committed; the previously best bidder is
    /// refunded.
    #[allow(clippy::too_many_arguments)]
    pub fn bid(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        block: BlockNumber,
        auction_id: AuctionId,
        bidder: Address,
        debt_bid: Wad,
        collateral_bid: Wad,
    ) -> Result<AuctionPhase, ProtocolError> {
        let params = self.auction_params;
        let pool = self.pool_address;
        let auction = self
            .auctions
            .get_mut(&auction_id)
            .ok_or(ProtocolError::UnknownAuction(auction_id))?;
        if auction.finalized {
            return Err(ProtocolError::AuctionAlreadyFinalized);
        }
        if auction.has_terminated(block, &params) {
            return Err(ProtocolError::AuctionTerminated);
        }
        // lint:allow(fixed-float) auction increment is an f64 protocol parameter quantized at bid time; bid comparisons themselves stay in Wad
        let min_increment = Wad::from_f64(1.0 + params.min_bid_increment);

        match auction.phase {
            AuctionPhase::Tend => {
                let debt_bid = debt_bid.min(auction.debt);
                // Must beat the previous debt bid by the increment.
                if let Some(best) = auction.best_bid {
                    let floor = best
                        .debt_bid
                        .checked_mul(min_increment)
                        .map_err(|_| ProtocolError::Arithmetic)?
                        .min(auction.debt);
                    if debt_bid < floor {
                        return Err(ProtocolError::BidTooLow);
                    }
                } else if debt_bid.is_zero() {
                    return Err(ProtocolError::BidTooLow);
                }
                // Escrow the new bid, refund the previous bidder.
                ledger.transfer(bidder, pool, Token::DAI, debt_bid)?;
                if let Some(best) = auction.best_bid {
                    ledger.transfer(pool, best.bidder, Token::DAI, best.debt_bid)?;
                }
                auction.best_bid = Some(Bid {
                    bidder,
                    debt_bid,
                    collateral_bid: auction.collateral,
                    block,
                });
                auction.tend_bids += 1;
                auction.last_bid_at = block;
                if debt_bid >= auction.debt {
                    auction.phase = AuctionPhase::Dent;
                }
                events.push(ChainEvent::AuctionBid {
                    auction_id,
                    bidder,
                    phase: AuctionPhase::Tend,
                    debt_bid,
                    collateral_bid: auction.collateral,
                });
            }
            AuctionPhase::Dent => {
                let previous = auction.best_bid.ok_or(ProtocolError::BidTooLow)?;
                // Must accept at least `min_increment` less collateral.
                let ceiling = previous
                    .collateral_bid
                    .checked_div(min_increment)
                    .map_err(|_| ProtocolError::Arithmetic)?;
                if collateral_bid > ceiling || collateral_bid.is_zero() {
                    return Err(ProtocolError::BidTooLow);
                }
                // The new bidder escrows the full debt; the previous bidder is refunded.
                ledger.transfer(bidder, pool, Token::DAI, auction.debt)?;
                ledger.transfer(pool, previous.bidder, Token::DAI, previous.debt_bid)?;
                auction.best_bid = Some(Bid {
                    bidder,
                    debt_bid: auction.debt,
                    collateral_bid,
                    block,
                });
                auction.dent_bids += 1;
                auction.last_bid_at = block;
                events.push(ChainEvent::AuctionBid {
                    auction_id,
                    bidder,
                    phase: AuctionPhase::Dent,
                    debt_bid: auction.debt,
                    collateral_bid,
                });
            }
        }
        Ok(auction.phase)
    }

    /// Whether an auction can be finalised at `block`.
    pub fn can_finalize(&self, auction_id: AuctionId, block: BlockNumber) -> bool {
        self.auctions
            .get(&auction_id)
            .map(|a| !a.finalized && a.has_terminated(block, &self.auction_params))
            .unwrap_or(false)
    }

    /// `deal`: finalise a terminated auction. The winner receives the
    /// collateral they bid for; in the dent phase the remaining collateral is
    /// returned to the borrower. If no bid was placed, the collateral simply
    /// returns to the borrower (and the debt is written off against the
    /// system — MakerDAO's bad-debt path).
    pub fn deal(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        auction_id: AuctionId,
    ) -> Result<AuctionOutcome, ProtocolError> {
        let params = self.auction_params;
        let pool = self.pool_address;
        let auction = self
            .auctions
            .get_mut(&auction_id)
            .ok_or(ProtocolError::UnknownAuction(auction_id))?;
        if auction.finalized {
            return Err(ProtocolError::AuctionAlreadyFinalized);
        }
        if !auction.has_terminated(block, &params) {
            return Err(ProtocolError::AuctionStillRunning);
        }
        auction.finalized = true;

        let collateral_price = oracle.price_or_zero(auction.collateral_token);
        let dai_price = oracle.price(Token::DAI).unwrap_or(Wad::ONE);

        let outcome = match auction.best_bid {
            None => {
                // No bids: return the collateral to the borrower.
                ledger.transfer(
                    pool,
                    auction.borrower,
                    auction.collateral_token,
                    auction.collateral,
                )?;
                AuctionOutcome {
                    id: auction_id,
                    winner: None,
                    debt_repaid: Wad::ZERO,
                    collateral_received: Wad::ZERO,
                    final_phase: auction.phase,
                    duration_blocks: block - auction.started_at,
                }
            }
            Some(best) => {
                let collateral_to_winner = match auction.phase {
                    AuctionPhase::Tend => auction.collateral,
                    AuctionPhase::Dent => best.collateral_bid.min(auction.collateral),
                };
                let leftover = auction.collateral.saturating_sub(collateral_to_winner);
                ledger.transfer(
                    pool,
                    best.bidder,
                    auction.collateral_token,
                    collateral_to_winner,
                )?;
                if !leftover.is_zero() {
                    ledger.transfer(pool, auction.borrower, auction.collateral_token, leftover)?;
                }
                // The escrowed DAI is burnt (the debt is retired).
                ledger.burn(pool, Token::DAI, best.debt_bid)?;

                events.push(ChainEvent::AuctionFinalized {
                    auction_id,
                    winner: best.bidder,
                    debt_repaid: best.debt_bid,
                    debt_repaid_usd: best
                        .debt_bid
                        .checked_mul(dai_price)
                        .unwrap_or(best.debt_bid),
                    collateral_token: auction.collateral_token,
                    collateral_received: collateral_to_winner,
                    collateral_received_usd: collateral_to_winner
                        .checked_mul(collateral_price)
                        .unwrap_or(Wad::ZERO),
                    borrower: auction.borrower,
                    started_at: auction.started_at,
                    last_bid_at: auction.last_bid_at,
                    tend_bids: auction.tend_bids,
                    dent_bids: auction.dent_bids,
                    final_phase: auction.phase,
                });
                AuctionOutcome {
                    id: auction_id,
                    winner: Some(best.bidder),
                    debt_repaid: best.debt_bid,
                    collateral_received: collateral_to_winner,
                    final_phase: auction.phase,
                    duration_blocks: block - auction.started_at,
                }
            }
        };
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_oracle::OracleConfig;

    fn setup() -> (MakerProtocol, Ledger, PriceOracle, Vec<ChainEvent>) {
        let mut maker = MakerProtocol::new(AuctionParams::maker_post_march_2020());
        maker.list_ilk(Token::ETH, IlkParams::default());
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_int(200));
        oracle.set_price(0, Token::DAI, Wad::ONE);
        (maker, Ledger::new(), oracle, Vec::new())
    }

    fn open_cdp(
        maker: &mut MakerProtocol,
        ledger: &mut Ledger,
        oracle: &PriceOracle,
        events: &mut Vec<ChainEvent>,
        owner: Address,
        eth: u64,
        dai: u64,
    ) {
        ledger.mint(owner, Token::ETH, Wad::from_int(eth));
        maker
            .lock_collateral(ledger, events, owner, Token::ETH, Wad::from_int(eth))
            .unwrap();
        maker
            .draw_dai(ledger, events, oracle, owner, Wad::from_int(dai))
            .unwrap();
    }

    #[test]
    fn cdp_respects_liquidation_ratio() {
        let (mut maker, mut ledger, oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        ledger.mint(owner, Token::ETH, Wad::from_int(10));
        maker
            .lock_collateral(
                &mut ledger,
                &mut events,
                owner,
                Token::ETH,
                Wad::from_int(10),
            )
            .unwrap();
        // 10 ETH * 200 = 2,000 USD; at 150% ratio max debt ≈ 1,333 DAI.
        assert!(maker
            .draw_dai(
                &mut ledger,
                &mut events,
                &oracle,
                owner,
                Wad::from_int(1_400)
            )
            .is_err());
        assert!(maker
            .draw_dai(
                &mut ledger,
                &mut events,
                &oracle,
                owner,
                Wad::from_int(1_300)
            )
            .is_ok());
        assert_eq!(ledger.balance(owner, Token::DAI), Wad::from_int(1_300));
        assert!(!maker.is_liquidatable(&oracle, owner));
    }

    #[test]
    fn price_drop_makes_cdp_liquidatable_and_bite_starts_auction() {
        let (mut maker, mut ledger, mut oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_300,
        );
        oracle.set_price(10, Token::ETH, Wad::from_int(150));
        assert!(maker.is_liquidatable(&oracle, owner));
        assert_eq!(maker.liquidatable_cdps(&oracle), vec![owner]);
        let id = maker.bite(&mut events, &oracle, 100, owner).unwrap();
        let auction = maker.auction(id).unwrap();
        assert_eq!(auction.collateral, Wad::from_int(10));
        // Debt to recover includes the 13% penalty (up to f64→Wad rounding).
        assert!(
            auction
                .debt
                .abs_diff(Wad::from_f64(1_300.0 * 1.13))
                .to_f64()
                < 1e-6
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, ChainEvent::AuctionStarted { .. })));
        // The CDP was emptied.
        assert_eq!(maker.cdp(owner).unwrap().collateral, Wad::ZERO);
    }

    #[test]
    fn healthy_cdp_cannot_be_bitten() {
        let (mut maker, mut ledger, oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_000,
        );
        assert!(matches!(
            maker.bite(&mut events, &oracle, 100, owner),
            Err(ProtocolError::NotLiquidatable(_))
        ));
    }

    #[test]
    fn tend_then_dent_auction_flow() {
        let (mut maker, mut ledger, mut oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_300,
        );
        oracle.set_price(10, Token::ETH, Wad::from_int(150));
        let id = maker.bite(&mut events, &oracle, 100, owner).unwrap();
        let debt = maker.auction(id).unwrap().debt;

        let alice = Address::from_seed(50);
        let bob = Address::from_seed(51);
        ledger.mint(alice, Token::DAI, Wad::from_int(3_000));
        ledger.mint(bob, Token::DAI, Wad::from_int(3_000));

        // Alice opens the tend phase with a partial bid.
        let phase = maker
            .bid(
                &mut ledger,
                &mut events,
                110,
                id,
                alice,
                Wad::from_int(800),
                Wad::ZERO,
            )
            .unwrap();
        assert_eq!(phase, AuctionPhase::Tend);
        // Bob must out-bid by the minimum increment.
        assert!(matches!(
            maker.bid(
                &mut ledger,
                &mut events,
                111,
                id,
                bob,
                Wad::from_int(801),
                Wad::ZERO
            ),
            Err(ProtocolError::BidTooLow)
        ));
        // Bob bids the full debt → auction flips to dent.
        let phase = maker
            .bid(&mut ledger, &mut events, 112, id, bob, debt, Wad::ZERO)
            .unwrap();
        assert_eq!(phase, AuctionPhase::Dent);
        // Alice was refunded her escrow.
        assert_eq!(ledger.balance(alice, Token::DAI), Wad::from_int(3_000));

        // Alice accepts less collateral for the full debt.
        let phase = maker
            .bid(
                &mut ledger,
                &mut events,
                113,
                id,
                alice,
                debt,
                Wad::from_int(9),
            )
            .unwrap();
        assert_eq!(phase, AuctionPhase::Dent);

        // Terminate via the bid-duration condition and finalise.
        let end_block = 113 + maker.auction_params().bid_duration_blocks;
        assert!(maker.can_finalize(id, end_block));
        let outcome = maker
            .deal(&mut ledger, &mut events, &oracle, end_block, id)
            .unwrap();
        assert_eq!(outcome.winner, Some(alice));
        assert_eq!(outcome.collateral_received, Wad::from_int(9));
        assert_eq!(outcome.final_phase, AuctionPhase::Dent);
        // Winner received 9 ETH; the leftover 1 ETH went back to the borrower.
        assert_eq!(ledger.balance(alice, Token::ETH), Wad::from_int(9));
        assert_eq!(ledger.balance(owner, Token::ETH), Wad::from_int(1));
        // The finalisation event carries the bid statistics.
        let finalized = events
            .iter()
            .find_map(|e| match e {
                ChainEvent::AuctionFinalized {
                    tend_bids,
                    dent_bids,
                    ..
                } => Some((*tend_bids, *dent_bids)),
                _ => None,
            })
            .unwrap();
        assert_eq!(finalized, (2, 1));
    }

    #[test]
    fn auction_with_single_low_tend_bid_wins_everything() {
        // The March 2020 pattern: one liquidator bids near zero, nobody else
        // shows up, and the full collateral is sold for almost nothing.
        let (mut maker, mut ledger, mut oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_300,
        );
        oracle.set_price(10, Token::ETH, Wad::from_int(150));
        let id = maker.bite(&mut events, &oracle, 100, owner).unwrap();
        let sniper = Address::from_seed(66);
        ledger.mint(sniper, Token::DAI, Wad::from_int(10));
        maker
            .bid(
                &mut ledger,
                &mut events,
                101,
                id,
                sniper,
                Wad::from_int(1),
                Wad::ZERO,
            )
            .unwrap();
        let end = 101 + maker.auction_params().bid_duration_blocks;
        let outcome = maker
            .deal(&mut ledger, &mut events, &oracle, end, id)
            .unwrap();
        assert_eq!(outcome.winner, Some(sniper));
        assert_eq!(outcome.final_phase, AuctionPhase::Tend);
        // The sniper got all 10 ETH (1,500 USD) for 1 DAI.
        assert_eq!(ledger.balance(sniper, Token::ETH), Wad::from_int(10));
    }

    #[test]
    fn auction_without_bids_returns_collateral() {
        let (mut maker, mut ledger, mut oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_300,
        );
        oracle.set_price(10, Token::ETH, Wad::from_int(150));
        let id = maker.bite(&mut events, &oracle, 100, owner).unwrap();
        let end = 100 + maker.auction_params().auction_length_blocks;
        assert!(maker.can_finalize(id, end));
        let outcome = maker
            .deal(&mut ledger, &mut events, &oracle, end, id)
            .unwrap();
        assert_eq!(outcome.winner, None);
        assert_eq!(ledger.balance(owner, Token::ETH), Wad::from_int(10));
    }

    #[test]
    fn deal_before_termination_is_rejected() {
        let (mut maker, mut ledger, mut oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_300,
        );
        oracle.set_price(10, Token::ETH, Wad::from_int(150));
        let id = maker.bite(&mut events, &oracle, 100, owner).unwrap();
        assert!(matches!(
            maker.deal(&mut ledger, &mut events, &oracle, 101, id),
            Err(ProtocolError::AuctionStillRunning)
        ));
    }

    #[test]
    fn free_collateral_respects_ratio() {
        let (mut maker, mut ledger, oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_000,
        );
        // Need 1,000 * 1.5 = 1,500 USD = 7.5 ETH locked; can free at most 2.5.
        assert!(maker
            .free_collateral(&mut ledger, &oracle, owner, Wad::from_int(3))
            .is_err());
        assert!(maker
            .free_collateral(&mut ledger, &oracle, owner, Wad::from_int(2))
            .is_ok());
        assert_eq!(ledger.balance(owner, Token::ETH), Wad::from_int(2));
    }

    #[test]
    fn position_snapshot_reflects_cdp() {
        let (mut maker, mut ledger, oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_200,
        );
        let position = maker.position(&oracle, owner).unwrap();
        assert_eq!(position.total_collateral_value(), Wad::from_int(2_000));
        assert_eq!(position.total_debt_value(), Wad::from_int(1_200));
        // HF = 2000 * (1/1.5) / 1200 = 1.111 > 1.
        assert!(!position.is_liquidatable());
        assert_eq!(maker.positions(&oracle).len(), 1);
        assert_eq!(maker.total_collateral_value(&oracle), Wad::from_int(2_000));
    }

    /// The critical-price index answers discovery without touching CDPs a
    /// price move did not flip, and always agrees with the from-scratch
    /// bite-condition scan.
    #[test]
    fn critical_price_index_matches_scratch_scan() {
        let (mut maker, mut ledger, mut oracle, mut events) = setup();
        // Ten CDPs at collateralizations from ~154 % to ~190 %.
        for i in 0..10u64 {
            let owner = Address::from_seed(100 + i);
            let dai = 1_300 - i * 25;
            open_cdp(
                &mut maker,
                &mut ledger,
                &oracle,
                &mut events,
                owner,
                10,
                dai,
            );
        }
        assert!(maker.cached_liquidatable_cdps(&oracle).is_empty());
        let baseline = maker.book_stats().revaluations;
        assert_eq!(maker.book_stats().indexed_accounts, 10);

        // A move that crosses nobody re-values nobody.
        oracle.set_price(5, Token::ETH, Wad::from_int(199));
        assert!(maker.cached_liquidatable_cdps(&oracle).is_empty());
        assert_eq!(maker.book_stats().revaluations, baseline);

        // A deep move flags exactly what the scratch scan flags and
        // re-values exactly the flipped CDPs.
        oracle.set_price(6, Token::ETH, Wad::from_int(180));
        let cached = maker.cached_liquidatable_cdps(&oracle);
        let scratch = maker.liquidatable_cdps(&oracle);
        assert_eq!(cached, scratch);
        assert!(!cached.is_empty() && cached.len() < 10);
        assert_eq!(
            maker.book_stats().revaluations,
            baseline + cached.len() as u64
        );

        // The cached book still matches the from-scratch rebuild exactly.
        let cached_book = maker.cached_book(&oracle);
        assert_eq!(cached_book, maker.positions(&oracle));
        // Totals parity with the legacy fold.
        let fold = maker
            .positions(&oracle)
            .iter()
            .map(|p| p.total_collateral_value())
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
        assert_eq!(maker.book_totals(&oracle).collateral_usd, fold);
        assert_eq!(maker.total_collateral_value(&oracle), fold);

        // Biting a flagged CDP drops it from the index; the rest stay.
        let bitten = cached[0];
        maker.bite(&mut events, &oracle, 10, bitten).unwrap();
        let after_bite = maker.cached_liquidatable_cdps(&oracle);
        assert!(!after_bite.contains(&bitten));
        assert_eq!(after_bite.len(), cached.len() - 1);
        assert_eq!(maker.book_stats().indexed_accounts, 9);
    }

    #[test]
    fn repay_dai_reduces_debt() {
        let (mut maker, mut ledger, oracle, mut events) = setup();
        let owner = Address::from_seed(1);
        open_cdp(
            &mut maker,
            &mut ledger,
            &oracle,
            &mut events,
            owner,
            10,
            1_000,
        );
        let repaid = maker
            .repay_dai(&mut ledger, &mut events, owner, Wad::from_int(400))
            .unwrap();
        assert_eq!(repaid, Wad::from_int(400));
        assert_eq!(maker.cdp(owner).unwrap().debt, Wad::from_int(600));
        // Repaying more than owed is a typed error, not a silent clamp.
        let err = maker
            .repay_dai(&mut ledger, &mut events, owner, Wad::from_int(10_000))
            .unwrap_err();
        assert!(matches!(err, ProtocolError::RepayExceedsOutstanding { .. }));
        // Repaying exactly the outstanding debt closes it.
        let repaid = maker
            .repay_dai(&mut ledger, &mut events, owner, Wad::from_int(600))
            .unwrap();
        assert_eq!(repaid, Wad::from_int(600));
        assert_eq!(maker.cdp(owner).unwrap().debt, Wad::ZERO);
    }
}
