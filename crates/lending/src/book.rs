//! Incremental, dirty-tracked, sharded position books.
//!
//! The paper's measurement loop — like any real liquidation bot — has to know
//! every platform's liquidatable positions *every block* (§4.4: monitoring
//! must complete within one block to win the race). Rebuilding each
//! protocol's full `Vec<Position>` from scratch several times per tick is the
//! dominant cost at scale, so [`PositionBook`] caches one valuation snapshot
//! per account and only re-values what can actually have changed:
//!
//! * **account mutations** — deposits, borrows, repayments, liquidations and
//!   write-offs mark the touched account dirty
//!   ([`PositionBook::mark_dirty`]);
//! * **interest accrual** — a market whose borrow index advanced invalidates
//!   exactly the accounts owing that token
//!   ([`PositionBook::note_index_change`]);
//! * **oracle moves** — the [`PriceOracle`] write epoch identifies the tokens
//!   whose on-chain price changed since the book last synced, and only the
//!   accounts whose certified state the write actually breaks re-value.
//!
//! On top of the cache sits a **critical-price liquidation index**: for every
//! account whose health factor depends on exactly one oracle price (Maker
//! CDPs — DAI debt is valued at the vat's 1-USD par, so only the collateral
//! price matters), the owning protocol reports the exact threshold price at
//! which HF crosses 1, and the book keeps those accounts in a per-token
//! `BTreeMap<raw price, accounts>`. Discovery then becomes a range scan over
//! each token's ordered map (`crit > current price` ⇔ liquidatable) instead
//! of a full-book filter.
//!
//! Multivariate accounts (every fixed-spread borrower: collateral *and* debt
//! prices float, and the borrow index accrues per block) carry a
//! **conservative health-factor band index**. Every account is classified
//! into one of four HF bands — below 1 (liquidatable), `[1, rescue)`
//! (rescue-repay candidates), `[rescue, releverage]` (quiet), above
//! `releverage` (re-leverage candidates) — and the owning protocol derives a
//! certified envelope ([`BookSource::hf_envelope`]): per-token raw price
//! bounds plus per-market borrow-index ceilings within which the health
//! factor *provably* stays in its current band. The bounds are additionally
//! kept in a per-token **interval index** (`lo`-ordered and `hi`-ordered
//! `BTreeMap`s over the envelope price bounds), so "which envelopes does
//! this oracle write break?" is answered by two range scans — accounts whose
//! envelope survives a price move are never even visited, and a flush costs
//! proportional to the accounts it actually re-values. Survivors' cached
//! valuations freshen lazily: discovery re-values exactly the members it
//! returns, and full refreshes walk the holders of moved tokens comparing
//! each valuation's oracle epoch against the token's write epoch. Where the
//! certified envelope still covers the current prices and indexes, that
//! freshening takes a cheap **light refresh** (rebuild the position, fold the
//! valuation delta) instead of re-deriving the envelope — the band verdict,
//! critical status and index memberships provably cannot have changed. And
//! when the *only* pending change is an oracle move (the account was not
//! mutated and no borrow index it owes advanced), even the rebuild is
//! avoided: the cached [`Position`] **is a term cache** — per token it holds
//! the raw amount and the USD value term the last `fill_position` computed —
//! so the owning protocol re-prices exactly the moved tokens' terms in place
//! ([`BookSource::reprice_position`]), O(moved tokens) instead of O(account
//! holdings), with arithmetic byte-identical by construction. Any account
//! mutation (dirty mark) or index change drops the terms and falls back to
//! the full `fill_position` path. Envelope re-derivation carries **re-anchor
//! hysteresis**: when a bound breaks, the derivation learns the break
//! direction ([`EnvelopeAnchor`]) and biases a widened — still proven —
//! slack toward where the price came from, so an oscillating price stops
//! re-deriving every tick. The
//! envelope conditions are *state*-based (current price within `[lo, hi]`,
//! current index below its cap), so certification composes across any
//! interleaving of moves; the bounds are integer-rounded inward (never
//! outward), a guard band absorbs fixed-point rounding in the HF evaluation
//! itself, and accounts too close to a band edge get no envelope and ride the
//! exact path. Exactness is enforced by a differential harness
//! (`tests/band_differential.rs`): a shadow cache-less scan must agree with
//! banded discovery every tick across every catalog scenario.
//!
//! # Sharding
//!
//! The book is split into [`BOOK_SHARD_COUNT`] fixed **address-range shards**
//! ([`shard_of`]: the top four bits of the address's first byte). Every
//! per-account structure — entries, dirty set, critical-price index, interval
//! index, band membership, running totals — lives in the owning shard, and
//! shards share nothing, so a flush fans out across `std::thread::scope`
//! workers with no locks. Determinism is by construction, not by scheduling:
//! the partition is a function of the address alone, each shard's work is
//! internally ordered, and queries merge shards in ascending address-range
//! order — so `book_positions`, `book_totals` and `liquidatable_accounts`
//! are byte-identical for *any* worker count (proven by the harness's
//! workers=1 vs workers=N differential). [`PositionBook::snapshot`] freezes
//! each shard behind its own `Arc` and caches it against a per-shard version
//! counter, so an unchanged shard is never re-cloned between snapshots.
//!
//! The book is *exact by construction*: a cached entry is byte-identical to a
//! from-scratch [`Position`] rebuild because the owning protocol's
//! [`BookSource::fill_position`] is the same code path the legacy
//! `positions()` API uses, and it only runs when an input changed. A property
//! test (`tests/property_tests.rs`) asserts cache ≡ rebuild after arbitrary
//! operation interleavings.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;
use std::sync::Arc;

use defi_core::position::Position;
use defi_oracle::PriceOracle;
use defi_types::{Address, Token, Wad};

use crate::snapshot::{BookSnapshot, ShardSnapshot, SnapshotBand, SnapshotEntry};

/// Health factor below which the engine's borrower-management pass considers
/// a position a rescue-repay candidate, and the default lower edge of the
/// quiet band the band index certifies accounts into.
pub const RESCUE_BAND_HF: f64 = 1.05;

/// Health factor above which the engine's borrower-management pass considers
/// a position a re-leverage candidate, and the default upper edge of the
/// quiet band.
pub const RELEVERAGE_BAND_HF: f64 = 2.2;

/// Number of fixed address-range shards a book is split into. Independent of
/// the worker count: workers only decide how many shards flush concurrently,
/// never how accounts partition, so results cannot depend on parallelism.
pub const BOOK_SHARD_COUNT: usize = 16;

/// The shard owning an address: its top four bits. [`Address`] orders
/// lexicographically, so shard `i` owns a contiguous address range and
/// concatenating shards in index order preserves global address order.
#[inline]
pub(crate) fn shard_of(address: &Address) -> usize {
    (address.0[0] >> 4) as usize
}

/// A certified envelope within which an account's health factor provably
/// stays in its current band (see the module docs).
///
/// The conditions are conjunctive and *state*-based: the account's band
/// verdict is certified as long as every sensitive token's current raw oracle
/// price sits inside its (inclusive) `[lo, hi]` bound **and** every debt
/// market's current raw borrow index is at or below its cap. A derivation
/// must emit a price bound for *every* price-sensitive token and an index cap
/// for *every* index-accruing debt token — the book conservatively re-values
/// on any condition it cannot find.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HfEnvelope {
    /// `(token, lo, hi)`: inclusive raw oracle-price bounds per sensitive
    /// token.
    pub price_bounds: Vec<(Token, u128, u128)>,
    /// `(token, cap)`: inclusive raw borrow-index ceiling per debt market
    /// (`u128::MAX` when the band has no floor — accrual only pushes the
    /// health factor down, which cannot cross an open lower edge).
    pub index_caps: Vec<(Token, u128)>,
}

impl HfEnvelope {
    /// Empty both condition lists, keeping the allocations.
    pub fn clear(&mut self) {
        self.price_bounds.clear();
        self.index_caps.clear();
    }
}

/// How the previous certified envelope of an account failed before a
/// re-derivation — the re-anchor hysteresis hint passed to
/// [`BookSource::hf_envelope`].
///
/// A price oscillating across a bound would otherwise break the fresh
/// envelope again on the very next tick: knowing *which side* broke lets the
/// derivation bias its slack budget toward the direction the price came from
/// (still inside the same interval-arithmetic proof), so the re-anchored
/// envelope covers the oscillation. Purely a wall-clock hint: a wider (still
/// sound) envelope changes how often accounts re-value, never any result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EnvelopeAnchor {
    /// No previous envelope, or it covered the current prices (mutation- or
    /// index-triggered re-valuation): anchor symmetrically.
    #[default]
    Fresh,
    /// A price rose above its upper bound: the oscillation is expected to
    /// return downward, so favour slack below the new anchor.
    BrokeUp,
    /// A price fell below its lower bound: favour slack above.
    BrokeDown,
    /// Bounds broke in both directions (multi-token moves): anchor
    /// symmetrically but with the widened slack.
    BrokeBoth,
}

/// The health-factor band an account was classified into at its last
/// re-valuation, delimited by 1 and the book's configured
/// (`rescue`, `releverage`) thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HfBand {
    /// HF < 1.
    Liquidatable,
    /// 1 ≤ HF < rescue.
    Rescue,
    /// rescue ≤ HF ≤ releverage, or no debt (no health factor at all).
    Quiet,
    /// HF > releverage.
    Releverage,
}

impl HfBand {
    fn classify(hf: Wad, rescue: Wad, releverage: Wad) -> HfBand {
        if hf < Wad::ONE {
            HfBand::Liquidatable
        } else if hf < rescue {
            HfBand::Rescue
        } else if hf > releverage {
            HfBand::Releverage
        } else {
            HfBand::Quiet
        }
    }

    /// Whether the borrower-management pass must see accounts in this band.
    fn at_risk(self) -> bool {
        !matches!(self, HfBand::Quiet)
    }
}

/// Aggregate totals over the observable book — what the engine's
/// volume-sampling pass (Figures 4/9 denominators) needs, maintained as
/// running sums so sampling never materialises the position vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BookTotals {
    /// Σ collateral USD value over book positions.
    pub collateral_usd: Wad,
    /// Σ debt USD value over book positions.
    pub debt_usd: Wad,
    /// Σ ETH/WETH collateral USD value of positions owing DAI (the DAI/ETH
    /// market the §5.1 comparison is restricted to).
    pub dai_eth_collateral_usd: Wad,
    /// Number of positions in the observable book.
    pub open_positions: u32,
}

/// Cache-maintenance counters, exposed for the scale benchmarks and the
/// no-op-tick regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BookStats {
    /// Accounts currently cached.
    pub cached_accounts: usize,
    /// Total account re-valuations performed since the book was created.
    pub revaluations: u64,
    /// Accounts currently tracked by the critical-price index.
    pub indexed_accounts: usize,
    /// Accounts currently flagged liquidatable outside the index.
    pub live_accounts: usize,
    /// Accounts currently carrying a certified health-factor band envelope.
    pub banded_accounts: usize,
    /// Accounts currently in an at-risk band (below `rescue` or above
    /// `releverage`) — what the borrower-management pass iterates.
    pub at_risk_accounts: usize,
    /// Re-valuations avoided because a band envelope held, since the book was
    /// created.
    pub envelope_skips: u64,
    /// Times the always-on stale-flag invariant (every rewind and full drain
    /// must leave zero lazily-stale valuations) was found violated — and
    /// repaired. Must stay 0; the band-differential harness asserts it.
    pub stale_violations: u64,
    /// Freshenings served by the O(moved-token) term path
    /// ([`BookSource::reprice_position`]): only the moved tokens' USD value
    /// terms were recomputed, the rest of the valuation was reused. Counted
    /// inside `revaluations` as well.
    pub term_reprices: u64,
    /// Freshenings served by the light path's full `fill_position` rebuild
    /// (envelope held but the term path was unavailable or declined).
    pub light_refreshes: u64,
    /// Envelope derivations requested from the source
    /// ([`BookSource::hf_envelope`] calls), since the book was created.
    pub envelope_derives: u64,
    /// Wall-clock nanoseconds spent inside [`BookSource::hf_envelope`].
    pub envelope_derive_nanos: u64,
    /// Flushes that found work to do, since the book was created.
    pub flush_count: u64,
    /// Wall-clock nanoseconds spent in flushes that found work.
    pub flush_nanos: u64,
    /// Wall-clock nanoseconds spent in the parallel at-risk freshen phase
    /// (zero in serial mode, where the visit pass fuses the freshening).
    pub freshen_nanos: u64,
    /// Wall-clock nanoseconds spent in the at-risk visit phase (in serial
    /// mode this is the fused freshen + visit pass).
    pub visit_nanos: u64,
    /// Times a reusable scratch buffer had to grow its capacity. Stops
    /// increasing once the tick hot loop is warm — the bench bodies assert
    /// it stays flat across warm ticks (the allocation audit).
    pub scratch_grows: u64,
}

/// What a [`PositionBook`] needs from its owning protocol to re-value one
/// account. Implemented on a cheap borrow-view of the protocol's state so the
/// book (a sibling field) can be mutated while the view is read.
///
/// # Shard-safety
///
/// Flushes fan out across threads, each holding `&Self` — so every
/// implementation must be [`Sync`] and its methods must be **pure reads** of
/// the protocol state captured by the view: no interior mutability, no
/// account-order-dependent side effects, and the same inputs must produce the
/// same outputs within one flush (see CONTRACTS.md, "The sharding
/// contract").
pub trait BookSource: Sync {
    /// Rebuild `slot` in place as the account's fresh valuation snapshot,
    /// reusing the slot's allocations. Returns `false` when the account has
    /// no observable state any more (it is then dropped from the book) —
    /// exactly the accounts the protocol's from-scratch `positions()` skips.
    fn fill_position(&self, oracle: &PriceOracle, account: Address, slot: &mut Position) -> bool;

    /// Whether the fresh position belongs to the *observable book*
    /// (`book_positions`): fixed-spread pools only report accounts that
    /// actually borrow, Maker reports every open CDP.
    fn in_book(&self, position: &Position) -> bool;

    /// Append every token whose oracle price the valuation depends on.
    /// Par-valued debt (Maker's DAI) is *not* price-sensitive.
    fn sensitive_tokens(&self, position: &Position, out: &mut Vec<Token>);

    /// Append every token in which the account owes index-accruing debt.
    fn debt_tokens(&self, position: &Position, out: &mut Vec<Token>);

    /// The exact critical price of a single-price account: `Some((token,
    /// crit_raw))` means the account is below the liquidation threshold *iff*
    /// the raw oracle price of `token` is strictly less than `crit_raw`, and
    /// that no other oracle price affects its health factor. Return `None`
    /// for multivariate positions; they are tracked by the band index
    /// instead.
    fn critical_price(&self, account: Address, position: &Position) -> Option<(Token, u128)>;

    /// Current raw borrow index ([`defi_types::Ray`] representation) of the
    /// market in `token`, if the protocol accrues one. The band index
    /// compares it against each debtor's certified cap when the market's
    /// index moves; the default `None` makes every index notification
    /// conservatively re-value all of the market's debtors (the pre-band
    /// behaviour).
    fn borrow_index(&self, _token: Token) -> Option<u128> {
        None
    }

    /// Derive a certified health-factor band envelope for a multivariate
    /// account: fill `out` with conditions under which the position's health
    /// factor provably stays strictly inside `(floor, ceiling)` scaled by the
    /// derivation's guard band (an open edge is `None`). The derivation must
    /// bound **every** price the valuation is sensitive to and cap **every**
    /// index-accruing debt market, and must round its integer bounds inward
    /// so certification errs towards re-valuing. `anchor` reports how the
    /// account's previous envelope broke (re-anchor hysteresis; see
    /// [`EnvelopeAnchor`]) — implementations may use it to bias a *sound*
    /// slack budget, or ignore it. Return `false` (the default) to ride the
    /// exact path — a new [`crate::LendingProtocol`] implementation opts
    /// into banding by overriding this.
    fn hf_envelope(
        &self,
        _oracle: &PriceOracle,
        _position: &Position,
        _floor: Option<Wad>,
        _ceiling: Option<Wad>,
        _anchor: EnvelopeAnchor,
        _out: &mut HfEnvelope,
    ) -> bool {
        false
    }

    /// Recompute **in place** exactly the USD value terms of `position` that
    /// depend on the oracle prices of `moved` tokens, using arithmetic
    /// byte-identical to what [`fill_position`](Self::fill_position) would
    /// produce at the current oracle state — the O(moved-token) term path.
    ///
    /// The book only calls this when it can prove every *other* input is
    /// unchanged since the position was last filled: the account was not
    /// mutated (not dirty), no borrow index it owes moved (not
    /// lazily-stale), and only oracle prices advanced — so token amounts,
    /// thresholds, spreads and the holding sets themselves are still exact,
    /// and repricing the moved tokens' `value_usd` terms reproduces
    /// `fill_position` bit for bit (see CONTRACTS.md, "The term-cache
    /// contract").
    ///
    /// Return `false` (the default) to decline; the caller then falls back
    /// to the full `fill_position` path. An implementation that returns
    /// `false` must leave `position` unmodified.
    fn reprice_position(
        &self,
        _oracle: &PriceOracle,
        _position: &mut Position,
        _moved: &[Token],
    ) -> bool {
        false
    }
}

/// One cached account. Fresh entries start zeroed so the diff-based
/// bookkeeping needs no special first-time case.
#[derive(Debug, Clone)]
struct Entry {
    position: Position,
    in_book: bool,
    collateral_usd: Wad,
    debt_usd: Wad,
    dai_eth_usd: Wad,
    critical: Option<(Token, u128)>,
    /// Health-factor band at the last re-valuation.
    band: HfBand,
    /// Certified envelope within which `band` provably holds (`None`: the
    /// account rides the exact path and re-values on every relevant change).
    envelope: Option<HfEnvelope>,
    /// A borrow index moved but the envelope capped it: the band verdict is
    /// certified, the cached valuation is stale until a full refresh or a
    /// query that hands this account out re-values it. (Price-move staleness
    /// is tracked epoch-wise instead: `valued_epoch` lags the token's write
    /// epoch.)
    stale: bool,
    /// Oracle write epoch the valuation was computed at.
    valued_epoch: u64,
    /// Price-sensitive exposure at the last re-valuation.
    tokens: Vec<Token>,
    /// Index-accruing debt exposure at the last re-valuation.
    debt_tokens: Vec<Token>,
}

impl Entry {
    fn new(account: Address) -> Self {
        Entry {
            position: Position::new(account),
            in_book: false,
            collateral_usd: Wad::ZERO,
            debt_usd: Wad::ZERO,
            dai_eth_usd: Wad::ZERO,
            critical: None,
            band: HfBand::Quiet,
            envelope: None,
            stale: false,
            valued_epoch: 0,
            tokens: Vec::new(),
            debt_tokens: Vec::new(),
        }
    }

    /// Whether any price this valuation depends on was written after it was
    /// computed.
    fn is_stale(&self, oracle: &PriceOracle) -> bool {
        self.tokens
            .iter()
            .any(|&token| oracle.token_epoch(token) > self.valued_epoch)
    }

    /// Whether this entry's certified envelope survives the given input
    /// changes: every changed price the account is sensitive to must sit
    /// inside its bound and every moved debt index below its cap. Conditions
    /// the envelope does not name fail conservatively.
    fn envelope_holds(&self, prices: &[(Token, u128)], indexes: &[(Token, Option<u128>)]) -> bool {
        let Some(envelope) = &self.envelope else {
            return false;
        };
        for &(token, raw) in prices {
            if !self.tokens.contains(&token) {
                continue;
            }
            match envelope.price_bounds.iter().find(|(t, _, _)| *t == token) {
                Some(&(_, lo, hi)) => {
                    if raw < lo || raw > hi {
                        return false;
                    }
                }
                None => return false,
            }
        }
        for &(token, current) in indexes {
            if !self.debt_tokens.contains(&token) {
                continue;
            }
            let Some(current) = current else {
                return false;
            };
            match envelope.index_caps.iter().find(|(t, _)| *t == token) {
                Some(&(_, cap)) => {
                    if current > cap {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    book_collateral_usd: Wad,
    book_debt_usd: Wad,
    book_dai_eth_usd: Wad,
    book_count: u32,
    all_collateral_usd: Wad,
    all_debt_usd: Wad,
}

/// Per-flush global context, computed once and shared read-only by every
/// shard worker.
struct FlushCtx<'a> {
    /// `(token, current raw price)` for every token whose price changed since
    /// the last flush.
    changed_prices: &'a [(Token, u128)],
    /// `(token, current raw borrow index)` for every market whose index
    /// advanced since the last flush.
    index_moves: &'a [(Token, Option<u128>)],
    /// `(token, write epoch)` for every token whose price changed since the
    /// last *full* refresh — drives the lazy-valuation freshening pass.
    full_changed: &'a [(Token, u64)],
    /// The (rescue, releverage) band thresholds.
    bands: (Wad, Wad),
    /// Bring every cached valuation exact (drain lazy staleness).
    full: bool,
    /// The oracle epoch ran backwards: nothing can be trusted.
    rewind: bool,
}

/// One address-range shard: every per-account structure of the book, owned
/// whole so shard flushes share nothing and can run on independent threads.
#[derive(Debug, Clone, Default)]
struct BookShard {
    entries: BTreeMap<Address, Entry>,
    /// Accounts that must re-value before *any* query (mutated since the
    /// last flush).
    dirty: BTreeSet<Address>,
    /// token → multivariate accounts with *no* certified envelope: they
    /// re-value eagerly on every price move of the token (the exact path).
    multi_unbanded: HashMap<Token, BTreeSet<Address>>,
    /// token → critical-price-indexed accounts exposed to it (walked only by
    /// full refreshes to freshen lazily staled valuations).
    indexed_holders: HashMap<Token, BTreeSet<Address>>,
    /// token → accounts owing index-accruing debt in it.
    debtors: HashMap<Token, BTreeSet<Address>>,
    /// token → (critical raw price → accounts); liquidatable ⇔ price < crit.
    critical: HashMap<Token, BTreeMap<u128, BTreeSet<Address>>>,
    /// Interval index, lower edges: token → (envelope `lo` bound → banded
    /// holders). A price write `p` breaks exactly the bounds with `lo > p`.
    env_lo: HashMap<Token, BTreeMap<u128, BTreeSet<Address>>>,
    /// Interval index, upper edges: token → (envelope `hi` bound → banded
    /// holders). A price write `p` breaks exactly the bounds with `hi < p`.
    env_hi: HashMap<Token, BTreeMap<u128, BTreeSet<Address>>>,
    /// token → banded accounts sensitive to it whose envelope carries *no*
    /// bound for it — conservatively re-valued on every move (a compliant
    /// derivation leaves this empty).
    env_uncovered: HashMap<Token, BTreeSet<Address>>,
    /// token → number of envelope bounds currently in the interval index
    /// (for the envelope-skip statistics without walking survivors).
    env_bounded: HashMap<Token, usize>,
    /// Liquidatable accounts among the non-indexed population.
    live: BTreeSet<Address>,
    /// Non-indexed observable-book accounts in an at-risk band (below
    /// `rescue` or above `releverage`) — the banded borrower-management
    /// iteration set.
    at_risk: BTreeSet<Address>,
    /// Number of entries whose `stale` flag is set (index moved, cap held).
    stale_count: usize,
    /// Always-on invariant failures (see [`BookStats::stale_violations`]).
    stale_violations: u64,
    totals: Totals,
    revaluations: u64,
    /// Re-valuations avoided because an envelope held.
    envelope_skips: u64,
    /// Freshenings served by the O(moved-token) term path.
    term_reprices: u64,
    /// Freshenings served by the light path's full position rebuild.
    light_refreshes: u64,
    /// Envelope derivations requested from the source.
    envelope_derives: u64,
    /// Nanoseconds spent inside [`BookSource::hf_envelope`].
    envelope_derive_nanos: u64,
    /// Times a scratch buffer grew its capacity (allocation audit).
    scratch_grows: u64,
    /// Bumped on every change that can alter this shard's frozen snapshot;
    /// lets [`PositionBook::snapshot`] reuse the previous `Arc` when nothing
    /// moved.
    version: u64,
    scratch_tokens: Vec<Token>,
    scratch_debt_tokens: Vec<Token>,
    scratch_addresses: Vec<Address>,
    scratch_affected: Vec<Address>,
    scratch_moved: Vec<Token>,
    scratch_envelope: HfEnvelope,
}

impl BookShard {
    // ------------------------------------------------------------------ flush

    /// Fold this shard's share of the pending invalidations into
    /// re-valuations. Runs on a worker thread; touches nothing outside the
    /// shard.
    fn flush<S: BookSource>(&mut self, source: &S, oracle: &PriceOracle, ctx: &FlushCtx<'_>) {
        if ctx.rewind {
            // The book is being driven by a different (or rewound) oracle
            // instance: nothing can be trusted, re-value everything.
            let mut batch = std::mem::take(&mut self.scratch_addresses);
            let batch_cap = batch.capacity();
            batch.clear();
            batch.extend(self.entries.keys().copied());
            batch.extend(self.dirty.iter().copied());
            self.dirty.clear();
            batch.sort_unstable();
            batch.dedup();
            for &address in &batch {
                self.revalue(source, oracle, address, ctx.bands);
            }
            self.scratch_grows += (batch.capacity() > batch_cap) as u64;
            self.scratch_addresses = batch;
            self.check_stale_invariant();
            return;
        }

        if !self.dirty.is_empty() || !ctx.changed_prices.is_empty() || !ctx.index_moves.is_empty() {
            let mut affected = std::mem::take(&mut self.scratch_affected);
            let affected_cap = affected.capacity();
            affected.clear();
            // Price moves: the interval index turns "whose envelope does
            // this write break?" into two range scans — survivors are never
            // visited at all, their skip is accounted by subtraction.
            for &(token, raw) in ctx.changed_prices {
                let mut broken_bounded = 0usize;
                if let Some(map) = self.env_lo.get(&token) {
                    for holders in map
                        .range((Bound::Excluded(raw), Bound::Unbounded))
                        .map(|(_, holders)| holders)
                    {
                        broken_bounded += holders.len();
                        affected.extend(holders.iter().copied());
                    }
                }
                if let Some(map) = self.env_hi.get(&token) {
                    for holders in map
                        .range((Bound::Unbounded, Bound::Excluded(raw)))
                        .map(|(_, holders)| holders)
                    {
                        broken_bounded += holders.len();
                        affected.extend(holders.iter().copied());
                    }
                }
                let bounded = self.env_bounded.get(&token).copied().unwrap_or(0);
                self.envelope_skips += bounded.saturating_sub(broken_bounded) as u64;
                if let Some(holders) = self.env_uncovered.get(&token) {
                    affected.extend(holders.iter().copied());
                }
                if let Some(holders) = self.multi_unbanded.get(&token) {
                    affected.extend(holders.iter().copied());
                }
            }
            // Index moves: walk the market's debtors, letting certified caps
            // park survivors in the lazy-stale set.
            for &(token, _) in ctx.index_moves {
                if let Some(holders) = self.debtors.get(&token) {
                    affected.extend(holders.iter().copied());
                }
            }
            affected.sort_unstable();
            affected.dedup();

            let mut batch = std::mem::take(&mut self.scratch_addresses);
            let batch_cap = batch.capacity();
            batch.clear();
            batch.extend(self.dirty.iter().copied());
            for &address in &affected {
                if self.dirty.contains(&address) {
                    continue;
                }
                let Some(entry) = self.entries.get_mut(&address) else {
                    batch.push(address);
                    continue;
                };
                if entry.envelope_holds(ctx.changed_prices, ctx.index_moves) {
                    // The band verdict is certified; the valuation freshens
                    // lazily.
                    if !entry.stale {
                        entry.stale = true;
                        self.stale_count += 1;
                    }
                    self.envelope_skips += 1;
                } else {
                    batch.push(address);
                }
            }
            self.dirty.clear();
            batch.sort_unstable();
            batch.dedup();
            for &address in &batch {
                self.revalue(source, oracle, address, ctx.bands);
            }
            self.scratch_grows += (batch.capacity() > batch_cap) as u64;
            self.scratch_grows += (affected.capacity() > affected_cap) as u64;
            self.scratch_addresses = batch;
            self.scratch_affected = affected;
        }

        if ctx.full && self.stale_count > 0 {
            // Drain the lazily staled valuations so every cached position is
            // exact at current prices and indexes.
            let mut batch = std::mem::take(&mut self.scratch_addresses);
            let batch_cap = batch.capacity();
            batch.clear();
            batch.extend(
                self.entries
                    .iter()
                    .filter(|(_, entry)| entry.stale)
                    .map(|(address, _)| *address),
            );
            for &address in &batch {
                self.refresh(source, oracle, address, ctx.bands);
            }
            self.scratch_grows += (batch.capacity() > batch_cap) as u64;
            self.scratch_addresses = batch;
            self.check_stale_invariant();
        }

        if ctx.full && !ctx.full_changed.is_empty() {
            // Freshen valuations the interval index left untouched: holders
            // of moved tokens whose valuation epoch lags the token's write
            // epoch. Their liquidatable status never went stale.
            let mut batch = std::mem::take(&mut self.scratch_addresses);
            let batch_cap = batch.capacity();
            for &(token, token_epoch) in ctx.full_changed {
                batch.clear();
                {
                    let entries = &self.entries;
                    let lagging = |address: &&Address| {
                        entries
                            .get(address)
                            .is_some_and(|e| e.valued_epoch < token_epoch)
                    };
                    if let Some(holders) = self.indexed_holders.get(&token) {
                        batch.extend(holders.iter().filter(lagging).copied());
                    }
                    if let Some(map) = self.env_lo.get(&token) {
                        for holders in map.values() {
                            batch.extend(holders.iter().filter(lagging).copied());
                        }
                    }
                    if let Some(holders) = self.env_uncovered.get(&token) {
                        batch.extend(holders.iter().filter(lagging).copied());
                    }
                    if let Some(holders) = self.multi_unbanded.get(&token) {
                        batch.extend(holders.iter().filter(lagging).copied());
                    }
                }
                batch.sort_unstable();
                batch.dedup();
                for &address in &batch {
                    self.refresh(source, oracle, address, ctx.bands);
                }
            }
            self.scratch_grows += (batch.capacity() > batch_cap) as u64;
            self.scratch_addresses = batch;
        }
    }

    /// Always-on replacement for the old debug-only stale-flag invariant:
    /// after a rewind or a full drain every `stale` flag must be clear. In
    /// release builds (where benches and `repro` run) a violation is counted
    /// — the band-differential harness asserts the counter stays zero — and
    /// the flags are repaired so the book cannot keep serving stale
    /// valuations. The check itself is O(1) on the healthy path.
    fn check_stale_invariant(&mut self) {
        debug_assert_eq!(self.stale_count, 0, "flush left stale flags");
        if self.stale_count != 0 {
            self.stale_violations += 1;
            for entry in self.entries.values_mut() {
                entry.stale = false;
            }
            self.stale_count = 0;
            self.version += 1;
        }
    }

    // ----------------------------------------------------------- revaluation

    /// Freshen one lazily stale valuation: a light refresh where the
    /// certified envelope still covers the current state, the full revalue
    /// path otherwise.
    fn refresh<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        address: Address,
        bands: (Wad, Wad),
    ) {
        if !self.light_refresh(source, oracle, address) {
            self.revalue(source, oracle, address, bands);
        }
    }

    /// Cheap freshening for an account whose verdict bookkeeping provably
    /// cannot have changed, in two tiers:
    ///
    /// * **term path** — the entry is *price*-stale only (its `stale` flag
    ///   is clear, so no borrow index moved under a cap and every cached
    ///   amount/threshold is still exact) and either the critical-price
    ///   index covers it (the critical price reads no oracle input) or its
    ///   certified envelope covers the current state: ask the source to
    ///   recompute exactly the moved tokens' USD value terms in place
    ///   ([`BookSource::reprice_position`]) and fold the delta — O(moved
    ///   tokens) instead of a full position rebuild;
    /// * **light path** — the certified envelope covers the current prices
    ///   and indexes: rebuild the position via `fill_position` and fold the
    ///   delta, keeping the band verdict, critical status, envelope and
    ///   every index membership.
    ///
    /// Returns `false` (having made no bookkeeping change) when every tier's
    /// precondition fails; the caller then takes the full revalue path.
    fn light_refresh<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        address: Address,
    ) -> bool {
        let Some(entry) = self.entries.get_mut(&address) else {
            return false;
        };
        let old_in_book = entry.in_book;
        let old_collateral = entry.collateral_usd;
        let old_debt = entry.debt_usd;
        let old_dai_eth = entry.dai_eth_usd;
        // Whether the certified envelope covers the *current* oracle prices
        // and borrow indexes (vacuously false for critical-indexed entries:
        // they carry no envelope — their verdict lives in the critical
        // index).
        let holds_now = entry.envelope.as_ref().is_some_and(|envelope| {
            envelope.price_bounds.iter().all(|&(token, lo, hi)| {
                let raw = oracle.price(token).map_or(0, |p| p.raw());
                raw >= lo && raw <= hi
            }) && envelope.index_caps.iter().all(|&(token, cap)| {
                source
                    .borrow_index(token)
                    .is_some_and(|current| current <= cap)
            }) && entry.tokens.iter().all(|token| {
                envelope
                    .price_bounds
                    .iter()
                    .any(|(bounded, _, _)| bounded == token)
            }) && entry.debt_tokens.iter().all(|token| {
                envelope
                    .index_caps
                    .iter()
                    .any(|(capped, _)| capped == token)
            })
        });

        let mut termed = false;
        if !entry.stale && (entry.critical.is_some() || holds_now) {
            // Term path. The holding sets are invariant under pure price
            // moves (amounts belong to the account state, which is not
            // dirty), so the exposure lists and membership indexes need no
            // comparison at all.
            let mut moved = std::mem::take(&mut self.scratch_moved);
            let moved_cap = moved.capacity();
            moved.clear();
            moved.extend(
                entry
                    .tokens
                    .iter()
                    .copied()
                    .filter(|&token| oracle.token_epoch(token) > entry.valued_epoch),
            );
            if !moved.is_empty() {
                termed = source.reprice_position(oracle, &mut entry.position, &moved);
            }
            self.scratch_grows += (moved.capacity() > moved_cap) as u64;
            self.scratch_moved = moved;
            if termed && source.in_book(&entry.position) != old_in_book {
                // A reprice flipped observability (possible only for exotic
                // `in_book` rules): hand over to `revalue`, which re-fills
                // the slot from scratch anyway.
                return false;
            }
        }

        if !termed {
            if entry.critical.is_some() || !holds_now {
                return false;
            }
            // From here the slot is rebuilt in place; every bail-out path
            // below hands over to `revalue`, which re-fills from scratch
            // anyway.
            if !source.fill_position(oracle, address, &mut entry.position) {
                return false;
            }
            if source.in_book(&entry.position) != old_in_book {
                return false;
            }
            // The membership indexes key off the exposure lists: any change
            // there needs the full delta bookkeeping.
            let mut new_tokens = std::mem::take(&mut self.scratch_tokens);
            new_tokens.clear();
            source.sensitive_tokens(&entry.position, &mut new_tokens);
            let tokens_same = new_tokens == entry.tokens;
            self.scratch_tokens = new_tokens;
            let mut new_debt_tokens = std::mem::take(&mut self.scratch_debt_tokens);
            new_debt_tokens.clear();
            source.debt_tokens(&entry.position, &mut new_debt_tokens);
            let debt_same = new_debt_tokens == entry.debt_tokens;
            self.scratch_debt_tokens = new_debt_tokens;
            if !tokens_same || !debt_same {
                return false;
            }
        }

        self.revaluations += 1;
        self.version += 1;
        if termed {
            self.term_reprices += 1;
        } else {
            self.light_refreshes += 1;
        }
        if entry.stale {
            entry.stale = false;
            self.stale_count -= 1;
        }
        entry.collateral_usd = entry.position.total_collateral_value();
        entry.debt_usd = entry.position.total_debt_value();
        entry.dai_eth_usd = if entry.position.has_debt_in(Token::DAI) {
            entry
                .position
                .collateral_value_in(Token::ETH)
                .saturating_add(entry.position.collateral_value_in(Token::WETH))
        } else {
            Wad::ZERO
        };
        entry.valued_epoch = oracle.epoch();
        let new_collateral = entry.collateral_usd;
        let new_debt = entry.debt_usd;
        let new_dai_eth = entry.dai_eth_usd;

        if old_in_book {
            self.totals.book_collateral_usd = self
                .totals
                .book_collateral_usd
                .saturating_sub(old_collateral)
                .saturating_add(new_collateral);
            self.totals.book_debt_usd = self
                .totals
                .book_debt_usd
                .saturating_sub(old_debt)
                .saturating_add(new_debt);
            self.totals.book_dai_eth_usd = self
                .totals
                .book_dai_eth_usd
                .saturating_sub(old_dai_eth)
                .saturating_add(new_dai_eth);
        }
        self.totals.all_collateral_usd = self
            .totals
            .all_collateral_usd
            .saturating_sub(old_collateral)
            .saturating_add(new_collateral);
        self.totals.all_debt_usd = self
            .totals
            .all_debt_usd
            .saturating_sub(old_debt)
            .saturating_add(new_debt);
        true
    }

    /// Re-value one account and fold the delta into every derived structure.
    fn revalue<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        address: Address,
        bands: (Wad, Wad),
    ) {
        self.revaluations += 1;
        self.version += 1;
        let entry = self
            .entries
            .entry(address)
            .or_insert_with(|| Entry::new(address));
        if entry.stale {
            entry.stale = false;
            self.stale_count -= 1;
        }
        let old_in_book = entry.in_book;
        let old_collateral = entry.collateral_usd;
        let old_debt = entry.debt_usd;
        let old_dai_eth = entry.dai_eth_usd;
        let old_critical = entry.critical;
        let old_tokens = std::mem::take(&mut entry.tokens);
        let old_debt_list = std::mem::take(&mut entry.debt_tokens);
        let old_envelope = entry.envelope.take();

        // Re-anchor hysteresis hint: in which direction did the previous
        // envelope's price bounds break? Passed to the derivation so an
        // oscillating price doesn't re-derive every tick. A mutation- or
        // index-triggered re-valuation (bounds all still covering) anchors
        // fresh.
        let anchor = match &old_envelope {
            Some(env) => {
                let (mut up, mut down) = (false, false);
                for &(token, lo, hi) in &env.price_bounds {
                    let raw = oracle.price(token).map_or(0, |p| p.raw());
                    up |= raw > hi;
                    down |= raw < lo;
                }
                match (up, down) {
                    (true, true) => EnvelopeAnchor::BrokeBoth,
                    (true, false) => EnvelopeAnchor::BrokeUp,
                    (false, true) => EnvelopeAnchor::BrokeDown,
                    (false, false) => EnvelopeAnchor::Fresh,
                }
            }
            None => EnvelopeAnchor::Fresh,
        };

        // Drop the account's old membership from every exposure index; the
        // fresh valuation re-inserts below. Membership is exclusive: indexed
        // accounts live in `indexed_holders`, banded ones in the interval
        // index, the rest in `multi_unbanded`.
        let was_indexed = old_critical.is_some();
        if was_indexed {
            for token in &old_tokens {
                if let Some(holders) = self.indexed_holders.get_mut(token) {
                    holders.remove(&address);
                }
            }
        } else if let Some(env) = &old_envelope {
            for &(token, lo, hi) in &env.price_bounds {
                if let Some(map) = self.env_lo.get_mut(&token) {
                    if let Some(holders) = map.get_mut(&lo) {
                        holders.remove(&address);
                        if holders.is_empty() {
                            map.remove(&lo);
                        }
                    }
                }
                if let Some(map) = self.env_hi.get_mut(&token) {
                    if let Some(holders) = map.get_mut(&hi) {
                        holders.remove(&address);
                        if holders.is_empty() {
                            map.remove(&hi);
                        }
                    }
                }
                if let Some(count) = self.env_bounded.get_mut(&token) {
                    *count = count.saturating_sub(1);
                }
            }
            for token in &old_tokens {
                if !env.price_bounds.iter().any(|(t, _, _)| t == token) {
                    if let Some(holders) = self.env_uncovered.get_mut(token) {
                        holders.remove(&address);
                    }
                }
            }
        } else {
            for token in &old_tokens {
                if let Some(holders) = self.multi_unbanded.get_mut(token) {
                    holders.remove(&address);
                }
            }
        }
        for token in &old_debt_list {
            if let Some(debtors) = self.debtors.get_mut(token) {
                debtors.remove(&address);
            }
        }

        let mut new_tokens = std::mem::take(&mut self.scratch_tokens);
        let mut new_debt_tokens = std::mem::take(&mut self.scratch_debt_tokens);
        new_tokens.clear();
        new_debt_tokens.clear();
        // Recycle the previous envelope's buffers for the new derivation.
        let mut envelope = match old_envelope {
            Some(env) => env,
            None => std::mem::take(&mut self.scratch_envelope),
        };
        envelope.clear();

        let exists = source.fill_position(oracle, address, &mut entry.position);
        let mut liquidatable = false;
        let mut band = HfBand::Quiet;
        let mut banded = false;
        if exists {
            source.sensitive_tokens(&entry.position, &mut new_tokens);
            source.debt_tokens(&entry.position, &mut new_debt_tokens);
            let critical = source.critical_price(address, &entry.position);
            liquidatable = critical.is_none() && entry.position.is_liquidatable();
            if critical.is_none() {
                let (rescue, releverage) = bands;
                match entry.position.health_factor() {
                    None => {
                        // A debt-free account has no health factor at *any*
                        // price: certify it with unbounded conditions, so
                        // price moves only stale its valuation lazily.
                        for &token in new_tokens.iter() {
                            envelope.price_bounds.push((token, 0, u128::MAX));
                        }
                        banded = true;
                    }
                    Some(hf) => {
                        band = HfBand::classify(hf, rescue, releverage);
                        let (floor, ceiling) = match band {
                            HfBand::Liquidatable => (None, Some(Wad::ONE)),
                            HfBand::Rescue => (Some(Wad::ONE), Some(rescue)),
                            HfBand::Quiet => (Some(rescue), Some(releverage)),
                            HfBand::Releverage => (Some(releverage), None),
                        };
                        let derive_start = std::time::Instant::now();
                        banded = source.hf_envelope(
                            oracle,
                            &entry.position,
                            floor,
                            ceiling,
                            anchor,
                            &mut envelope,
                        );
                        self.envelope_derives += 1;
                        self.envelope_derive_nanos += derive_start.elapsed().as_nanos() as u64;
                    }
                }
            }
            entry.in_book = source.in_book(&entry.position);
            entry.collateral_usd = entry.position.total_collateral_value();
            entry.debt_usd = entry.position.total_debt_value();
            entry.dai_eth_usd = if entry.position.has_debt_in(Token::DAI) {
                entry
                    .position
                    .collateral_value_in(Token::ETH)
                    .saturating_add(entry.position.collateral_value_in(Token::WETH))
            } else {
                Wad::ZERO
            };
            entry.critical = critical;
            entry.valued_epoch = oracle.epoch();
        }
        entry.band = band;
        let new_in_book = exists && entry.in_book;
        let new_collateral = entry.collateral_usd;
        let new_debt = entry.debt_usd;
        let new_dai_eth = entry.dai_eth_usd;
        let new_critical = if exists { entry.critical } else { None };
        let now_indexed = new_critical.is_some();
        if banded {
            entry.envelope = Some(envelope);
        } else {
            self.scratch_envelope = envelope;
        }

        // Re-insert the fresh membership into the exposure indexes.
        if exists {
            if now_indexed {
                for token in &new_tokens {
                    self.indexed_holders
                        .entry(*token)
                        .or_default()
                        .insert(address);
                }
            } else if let Some(env) = &entry.envelope {
                for &(token, lo, hi) in &env.price_bounds {
                    self.env_lo
                        .entry(token)
                        .or_default()
                        .entry(lo)
                        .or_default()
                        .insert(address);
                    self.env_hi
                        .entry(token)
                        .or_default()
                        .entry(hi)
                        .or_default()
                        .insert(address);
                    *self.env_bounded.entry(token).or_default() += 1;
                }
                for token in &new_tokens {
                    if !env.price_bounds.iter().any(|(t, _, _)| t == token) {
                        self.env_uncovered
                            .entry(*token)
                            .or_default()
                            .insert(address);
                    }
                }
            } else {
                for token in &new_tokens {
                    self.multi_unbanded
                        .entry(*token)
                        .or_default()
                        .insert(address);
                }
            }
            for token in &new_debt_tokens {
                self.debtors.entry(*token).or_default().insert(address);
            }
        }

        // Totals: subtract the old contribution, add the new one. The sums
        // never saturate at sane magnitudes, so the incremental totals equal
        // the legacy fold exactly.
        if old_in_book {
            self.totals.book_collateral_usd = self
                .totals
                .book_collateral_usd
                .saturating_sub(old_collateral);
            self.totals.book_debt_usd = self.totals.book_debt_usd.saturating_sub(old_debt);
            self.totals.book_dai_eth_usd = self.totals.book_dai_eth_usd.saturating_sub(old_dai_eth);
            self.totals.book_count -= 1;
        }
        self.totals.all_collateral_usd = self
            .totals
            .all_collateral_usd
            .saturating_sub(old_collateral);
        self.totals.all_debt_usd = self.totals.all_debt_usd.saturating_sub(old_debt);
        if new_in_book {
            self.totals.book_collateral_usd = self
                .totals
                .book_collateral_usd
                .saturating_add(new_collateral);
            self.totals.book_debt_usd = self.totals.book_debt_usd.saturating_add(new_debt);
            self.totals.book_dai_eth_usd = self.totals.book_dai_eth_usd.saturating_add(new_dai_eth);
            self.totals.book_count += 1;
        }
        if exists {
            self.totals.all_collateral_usd = self
                .totals
                .all_collateral_usd
                .saturating_add(new_collateral);
            self.totals.all_debt_usd = self.totals.all_debt_usd.saturating_add(new_debt);
        }

        // Critical-price index.
        if old_critical != new_critical {
            if let Some((token, crit)) = old_critical {
                if let Some(map) = self.critical.get_mut(&token) {
                    if let Some(accounts) = map.get_mut(&crit) {
                        accounts.remove(&address);
                        if accounts.is_empty() {
                            map.remove(&crit);
                        }
                    }
                }
            }
            if let Some((token, crit)) = new_critical {
                self.critical
                    .entry(token)
                    .or_default()
                    .entry(crit)
                    .or_default()
                    .insert(address);
            }
        }

        // Live set (non-indexed liquidatable accounts).
        if liquidatable {
            self.live.insert(address);
        } else {
            self.live.remove(&address);
        }

        // At-risk iteration set (non-indexed observable-book accounts in an
        // actionable band), and this valuation is fresh again.
        if new_in_book && new_critical.is_none() && band.at_risk() {
            self.at_risk.insert(address);
        } else {
            self.at_risk.remove(&address);
        }

        let live_entry = if exists {
            self.entries.get_mut(&address)
        } else {
            None
        };
        if let Some(entry) = live_entry {
            entry.tokens = new_tokens;
            entry.debt_tokens = new_debt_tokens;
            // Recycle the previous exposure buffers as scratch space.
            self.scratch_tokens = old_tokens;
            self.scratch_debt_tokens = old_debt_list;
        } else {
            self.entries.remove(&address);
            self.scratch_tokens = new_tokens;
            self.scratch_debt_tokens = new_debt_tokens;
        }
    }

    // --------------------------------------------------------------- queries

    /// This shard's liquidatable accounts (live set ∪ critical-price range
    /// scans) appended to `out` in address order, with each returned
    /// valuation freshened.
    fn collect_liquidatable<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        bands: (Wad, Wad),
        out: &mut Vec<Address>,
    ) {
        // Reuse the shard's address scratch instead of cloning the live set
        // into a fresh `BTreeSet` every call (the discovery loop runs every
        // tick). Sorting + dedup reproduces the set-union order exactly:
        // both inputs are iterated in ascending address order.
        let mut found = std::mem::take(&mut self.scratch_addresses);
        let found_cap = found.capacity();
        found.clear();
        found.extend(self.live.iter().copied());
        for (token, map) in &self.critical {
            let Some(price) = oracle.price(*token) else {
                continue;
            };
            for accounts in map
                .range((Bound::Excluded(price.raw()), Bound::Unbounded))
                .map(|(_, accounts)| accounts)
            {
                found.extend(accounts.iter().copied());
            }
        }
        found.sort_unstable();
        found.dedup();
        let start = out.len();
        out.extend(found.iter().copied());
        self.scratch_grows += (found.capacity() > found_cap) as u64;
        self.scratch_addresses = found;
        // Freshen the valuations discovery hands out; re-valuing cannot
        // change the verdict (same state, same prices — and for accounts an
        // envelope certified, the band is certified).
        for slot in start..out.len() {
            let Some(&address) = out.get(slot) else {
                break;
            };
            let stale = self
                .entries
                .get(&address)
                .is_some_and(|entry| entry.stale || entry.is_stale(oracle));
            if stale {
                self.refresh(source, oracle, address, bands);
            }
        }
    }

    /// Freshen every stale at-risk member of this shard without visiting —
    /// the parallelisable half of [`visit_at_risk`](Self::visit_at_risk).
    /// Re-valuing cannot change any verdict (same state, same prices), so
    /// shards can freshen concurrently and the serial visit pass that
    /// follows observes exactly what a serial freshen would have produced.
    fn freshen_at_risk<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        bands: (Wad, Wad),
    ) {
        let mut batch = std::mem::take(&mut self.scratch_addresses);
        let batch_cap = batch.capacity();
        batch.clear();
        batch.extend(self.at_risk.iter().copied());
        for &address in &batch {
            let stale = self
                .entries
                .get(&address)
                .is_some_and(|entry| entry.stale || entry.is_stale(oracle));
            if stale {
                self.refresh(source, oracle, address, bands);
            }
        }
        self.scratch_grows += (batch.capacity() > batch_cap) as u64;
        self.scratch_addresses = batch;
    }

    /// Visit this shard's at-risk members in address order, freshening each
    /// visited valuation.
    fn visit_at_risk<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        bands: (Wad, Wad),
        visit: &mut dyn FnMut(&Position),
    ) {
        let mut batch = std::mem::take(&mut self.scratch_addresses);
        let batch_cap = batch.capacity();
        batch.clear();
        batch.extend(self.at_risk.iter().copied());
        for &address in &batch {
            let stale = self
                .entries
                .get(&address)
                .is_some_and(|entry| entry.stale || entry.is_stale(oracle));
            if stale {
                // Freshening cannot change the verdict: the account either
                // re-valued in the flush above or its envelope certifies the
                // band — so the light refresh applies whenever the envelope
                // still covers current prices, and the full revalue otherwise.
                self.refresh(source, oracle, address, bands);
            }
            if let Some(entry) = self.entries.get(&address) {
                if entry.in_book {
                    visit(&entry.position);
                }
            }
        }
        self.scratch_grows += (batch.capacity() > batch_cap) as u64;
        self.scratch_addresses = batch;
    }

    /// Freeze this shard's observable entries into an immutable
    /// [`ShardSnapshot`].
    fn freeze(&self, rescue: Wad, releverage: Wad) -> ShardSnapshot {
        let mut entries = BTreeMap::new();
        for (account, entry) in &self.entries {
            if !entry.in_book {
                continue;
            }
            let health_factor = entry.position.health_factor();
            entries.insert(
                *account,
                SnapshotEntry {
                    position: entry.position.clone(),
                    collateral_usd: entry.collateral_usd,
                    debt_usd: entry.debt_usd,
                    health_factor,
                    // Classify from the fresh HF rather than copying the
                    // cached band: critical-indexed entries keep a Quiet
                    // cached band by design.
                    band: SnapshotBand::classify(health_factor, rescue, releverage),
                    sensitive: entry.tokens.clone(),
                    critical: entry.critical,
                    envelope_bounds: entry
                        .envelope
                        .as_ref()
                        .map(|e| e.price_bounds.clone())
                        .unwrap_or_default(),
                },
            );
        }
        ShardSnapshot { entries }
    }
}

/// The incremental cache each [`crate::LendingProtocol`] implementation owns.
/// See the module docs for the invalidation contract and the sharding
/// layout.
#[derive(Debug, Clone)]
pub struct PositionBook {
    shards: Vec<BookShard>,
    /// Markets whose borrow index changed since the last flush.
    pending_index_tokens: Vec<Token>,
    /// The (rescue, releverage) HF thresholds the bands are classified by.
    bands: (Wad, Wad),
    /// Oracle epoch consumed by every flush (multivariate dirty marking).
    synced_epoch: u64,
    /// Oracle epoch up to which lazily staled valuations were freshened by a
    /// full refresh.
    full_synced_epoch: u64,
    /// How many `std::thread::scope` workers flushes fan shards across
    /// (1 = serial; results are identical either way).
    workers: usize,
    /// Per-shard `(version, frozen snapshot)` from the last
    /// [`snapshot`](Self::snapshot) call: an unchanged shard hands out the
    /// same `Arc` instead of re-cloning its entries.
    snapshot_cache: Vec<Option<(u64, Arc<ShardSnapshot>)>>,
    scratch_changed: Vec<Token>,
    scratch_prices: Vec<(Token, u128)>,
    scratch_index_moves: Vec<(Token, Option<u128>)>,
    scratch_full_changed: Vec<(Token, u64)>,
    /// Flushes that found work, and nanoseconds spent doing it (phase
    /// attribution for the tick breakdown; see [`BookStats`]).
    flush_count: u64,
    flush_nanos: u64,
    /// Nanoseconds in the parallel at-risk freshen phase (workers > 1 only).
    freshen_nanos: u64,
    /// Nanoseconds in the at-risk visit pass (fused freshen + visit when
    /// serial).
    visit_nanos: u64,
}

impl Default for PositionBook {
    fn default() -> Self {
        PositionBook {
            shards: (0..BOOK_SHARD_COUNT)
                .map(|_| BookShard::default())
                .collect(),
            pending_index_tokens: Vec::new(),
            bands: (
                // lint:allow(fixed-float) band edges are config-space constants quantized once at construction, not per-valuation
                Wad::from_f64(RESCUE_BAND_HF),
                // lint:allow(fixed-float) band edges are config-space constants quantized once at construction, not per-valuation
                Wad::from_f64(RELEVERAGE_BAND_HF),
            ),
            synced_epoch: 0,
            full_synced_epoch: 0,
            workers: 1,
            snapshot_cache: (0..BOOK_SHARD_COUNT).map(|_| None).collect(),
            scratch_changed: Vec::new(),
            scratch_prices: Vec::new(),
            scratch_index_moves: Vec::new(),
            scratch_full_changed: Vec::new(),
            flush_count: 0,
            flush_nanos: 0,
            freshen_nanos: 0,
            visit_nanos: 0,
        }
    }
}

impl PositionBook {
    /// An empty book with the default
    /// ([`RESCUE_BAND_HF`], [`RELEVERAGE_BAND_HF`]) band thresholds.
    pub fn new() -> Self {
        PositionBook::default()
    }

    /// Set how many `std::thread::scope` workers flushes fan the shards
    /// across (clamped to `1..=BOOK_SHARD_COUNT`). Purely a throughput knob:
    /// the shard partition and merge order are fixed, so every query result
    /// is byte-identical for any worker count.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.clamp(1, BOOK_SHARD_COUNT);
    }

    /// The configured flush worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn shard_mut(&mut self, account: &Address) -> Option<&mut BookShard> {
        self.shards.get_mut(shard_of(account))
    }

    /// Mark one account for re-valuation (every protocol mutation that
    /// touches the account must call this).
    pub fn mark_dirty(&mut self, account: Address) {
        if let Some(shard) = self.shard_mut(&account) {
            shard.dirty.insert(account);
        }
    }

    /// Record that a market's borrow index advanced: every account owing
    /// `token` re-values (or proves its cap) before the next query.
    pub fn note_index_change(&mut self, token: Token) {
        if !self.pending_index_tokens.contains(&token) {
            self.pending_index_tokens.push(token);
        }
    }

    /// Invalidate every cached account (risk-parameter changes: market or
    /// ilk (re)listing can alter thresholds/spreads of existing positions).
    pub fn invalidate_all(&mut self) {
        for shard in &mut self.shards {
            let accounts: Vec<Address> = shard.entries.keys().copied().collect();
            shard.dirty.extend(accounts);
        }
    }

    /// Cache-maintenance counters, folded over the shards.
    pub fn stats(&self) -> BookStats {
        let mut stats = BookStats::default();
        for shard in &self.shards {
            stats.cached_accounts += shard.entries.len();
            stats.revaluations += shard.revaluations;
            stats.indexed_accounts += shard
                .entries
                .values()
                .filter(|e| e.critical.is_some())
                .count();
            stats.live_accounts += shard.live.len();
            stats.banded_accounts += shard
                .entries
                .values()
                .filter(|e| e.envelope.is_some())
                .count();
            stats.at_risk_accounts += shard.at_risk.len();
            stats.envelope_skips += shard.envelope_skips;
            stats.stale_violations += shard.stale_violations;
            stats.term_reprices += shard.term_reprices;
            stats.light_refreshes += shard.light_refreshes;
            stats.envelope_derives += shard.envelope_derives;
            stats.envelope_derive_nanos += shard.envelope_derive_nanos;
            stats.scratch_grows += shard.scratch_grows;
        }
        stats.flush_count = self.flush_count;
        stats.flush_nanos = self.flush_nanos;
        stats.freshen_nanos = self.freshen_nanos;
        stats.visit_nanos = self.visit_nanos;
        stats
    }

    /// The cached snapshot of one account, if it is in the cache. Exact only
    /// after a refreshing query ([`book_positions`](Self::book_positions),
    /// [`liquidatable_accounts`](Self::liquidatable_accounts), …).
    pub fn cached_position(&self, account: Address) -> Option<&Position> {
        self.shards
            .get(shard_of(&account))
            .and_then(|shard| shard.entries.get(&account))
            .map(|e| &e.position)
    }

    // ------------------------------------------------------------------ flush

    /// Fold every pending invalidation into re-valuations, fanning the
    /// shards across the configured worker count. With `full`, also freshen
    /// lazily staled valuations so every cached position is exact at current
    /// prices.
    fn flush<S: BookSource>(&mut self, source: &S, oracle: &PriceOracle, full: bool) {
        let epoch = oracle.epoch();
        let rewind = epoch < self.synced_epoch;
        let mut changed = std::mem::take(&mut self.scratch_changed);
        changed.clear();
        let mut changed_prices = std::mem::take(&mut self.scratch_prices);
        changed_prices.clear();
        let mut index_moves = std::mem::take(&mut self.scratch_index_moves);
        index_moves.clear();
        let mut full_changed = std::mem::take(&mut self.scratch_full_changed);
        full_changed.clear();
        let mut index_tokens = std::mem::take(&mut self.pending_index_tokens);

        if rewind {
            index_tokens.clear();
            self.synced_epoch = epoch;
            self.full_synced_epoch = epoch;
        } else {
            if epoch > self.synced_epoch {
                oracle.collect_changed_since(self.synced_epoch, &mut changed);
                changed_prices.extend(
                    changed
                        .iter()
                        .map(|&token| (token, oracle.price(token).map_or(0, |p| p.raw()))),
                );
            }
            self.synced_epoch = epoch;
            index_moves.extend(
                index_tokens
                    .iter()
                    .map(|&token| (token, source.borrow_index(token))),
            );
            if full && epoch > self.full_synced_epoch {
                changed.clear();
                oracle.collect_changed_since(self.full_synced_epoch, &mut changed);
                full_changed.extend(
                    changed
                        .iter()
                        .map(|&token| (token, oracle.token_epoch(token))),
                );
                self.full_synced_epoch = epoch;
            }
        }

        let any_work = rewind
            || !changed_prices.is_empty()
            || !index_moves.is_empty()
            || !full_changed.is_empty()
            || self.shards.iter().any(|shard| !shard.dirty.is_empty())
            || (full && self.shards.iter().any(|shard| shard.stale_count > 0));
        if any_work {
            let flush_start = std::time::Instant::now();
            let ctx = FlushCtx {
                changed_prices: &changed_prices,
                index_moves: &index_moves,
                full_changed: &full_changed,
                bands: self.bands,
                full,
                rewind,
            };
            let workers = self.workers.clamp(1, BOOK_SHARD_COUNT);
            if workers == 1 {
                for shard in &mut self.shards {
                    shard.flush(source, oracle, &ctx);
                }
            } else {
                // Fan the shards across scoped workers. Each shard is
                // self-contained and internally ordered, so scheduling
                // cannot influence any result — only wall-clock.
                let chunk = BOOK_SHARD_COUNT.div_ceil(workers);
                let ctx = &ctx;
                std::thread::scope(|scope| {
                    for shard_chunk in self.shards.chunks_mut(chunk) {
                        scope.spawn(move || {
                            for shard in shard_chunk {
                                shard.flush(source, oracle, ctx);
                            }
                        });
                    }
                });
            }
            self.flush_count += 1;
            self.flush_nanos += flush_start.elapsed().as_nanos() as u64;
        }

        index_tokens.clear();
        self.pending_index_tokens = index_tokens;
        self.scratch_changed = changed;
        self.scratch_prices = changed_prices;
        self.scratch_index_moves = index_moves;
        self.scratch_full_changed = full_changed;
    }

    // --------------------------------------------------------------- queries

    /// Bring every cached valuation up to date and clone out the observable
    /// book in address order — byte-identical to the legacy from-scratch
    /// rebuild, without re-valuing untouched accounts.
    pub fn book_positions<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
    ) -> Vec<Position> {
        self.flush(source, oracle, true);
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .entries
                    .values()
                    .filter(|e| e.in_book)
                    .map(|e| e.position.clone()),
            );
        }
        out
    }

    /// Visit every observable book position in address order without
    /// allocating a snapshot vector (the engine's borrower-management pass).
    pub fn for_each_book_position<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        visit: &mut dyn FnMut(&Position),
    ) {
        self.flush(source, oracle, true);
        for shard in &self.shards {
            for entry in shard.entries.values() {
                if entry.in_book {
                    visit(&entry.position);
                }
            }
        }
    }

    fn fold_totals(&self) -> Totals {
        let mut totals = Totals::default();
        for shard in &self.shards {
            totals.book_collateral_usd = totals
                .book_collateral_usd
                .saturating_add(shard.totals.book_collateral_usd);
            totals.book_debt_usd = totals
                .book_debt_usd
                .saturating_add(shard.totals.book_debt_usd);
            totals.book_dai_eth_usd = totals
                .book_dai_eth_usd
                .saturating_add(shard.totals.book_dai_eth_usd);
            totals.book_count += shard.totals.book_count;
            totals.all_collateral_usd = totals
                .all_collateral_usd
                .saturating_add(shard.totals.all_collateral_usd);
            totals.all_debt_usd = totals
                .all_debt_usd
                .saturating_add(shard.totals.all_debt_usd);
        }
        totals
    }

    /// Running totals over the observable book (volume sampling), merged in
    /// fixed shard order.
    pub fn totals<S: BookSource>(&mut self, source: &S, oracle: &PriceOracle) -> BookTotals {
        self.flush(source, oracle, true);
        let totals = self.fold_totals();
        BookTotals {
            collateral_usd: totals.book_collateral_usd,
            debt_usd: totals.book_debt_usd,
            dai_eth_collateral_usd: totals.book_dai_eth_usd,
            open_positions: totals.book_count,
        }
    }

    /// The (rescue, releverage) HF thresholds the bands are classified by.
    pub fn band_thresholds(&self) -> (Wad, Wad) {
        self.bands
    }

    /// Freeze the observable book into an immutable, index-carrying
    /// [`BookSnapshot`] for concurrent readers: every valuation brought
    /// exact at current prices, plus each entry's sensitivity list,
    /// critical price and certified envelope bounds so snapshot-side
    /// what-if queries can ride the same fast paths the live book uses.
    ///
    /// The snapshot is **per-shard**: each shard freezes behind its own
    /// `Arc`, cached against the shard's version counter, so a shard nothing
    /// touched since the previous call hands out the same allocation
    /// (`Arc::ptr_eq`) instead of re-cloning its entries.
    pub fn snapshot<S: BookSource>(&mut self, source: &S, oracle: &PriceOracle) -> BookSnapshot {
        self.flush(source, oracle, true);
        let (rescue, releverage) = self.bands;
        let mut shards = Vec::with_capacity(self.shards.len());
        for (shard, cache) in self.shards.iter().zip(self.snapshot_cache.iter_mut()) {
            match cache {
                Some((version, frozen)) if *version == shard.version => {
                    shards.push(Arc::clone(frozen));
                }
                _ => {
                    let frozen = Arc::new(shard.freeze(rescue, releverage));
                    *cache = Some((shard.version, Arc::clone(&frozen)));
                    shards.push(frozen);
                }
            }
        }
        let totals = self.fold_totals();
        let totals = BookTotals {
            collateral_usd: totals.book_collateral_usd,
            debt_usd: totals.book_debt_usd,
            dai_eth_collateral_usd: totals.book_dai_eth_usd,
            open_positions: totals.book_count,
        };
        let prices = oracle
            .tokens()
            .into_iter()
            .map(|token| (token, oracle.price_or_zero(token)))
            .collect();
        BookSnapshot {
            shards,
            totals,
            prices,
            rescue,
            releverage,
            stats: self.stats(),
        }
    }

    /// Running totals over *every* cached account (the protocol-level
    /// `total_collateral_value` / `total_debt_value` surface).
    pub fn all_totals<S: BookSource>(&mut self, source: &S, oracle: &PriceOracle) -> (Wad, Wad) {
        self.flush(source, oracle, true);
        let totals = self.fold_totals();
        (totals.all_collateral_usd, totals.all_debt_usd)
    }

    /// Accounts currently below the liquidation threshold, in address order,
    /// with their cached positions freshened: the union of the per-token
    /// critical-price range scans and the incrementally maintained live set,
    /// merged in fixed shard order. Does **not** re-value accounts whose
    /// certified state a price move failed to break — the fast path a keeper
    /// loop takes every block.
    pub fn liquidatable_accounts<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
    ) -> Vec<Address> {
        self.flush(source, oracle, false);
        let bands = self.bands;
        let mut out = Vec::new();
        for shard in &mut self.shards {
            shard.collect_liquidatable(source, oracle, bands, &mut out);
        }
        out
    }

    /// Visit every *at-risk* observable position — health factor below
    /// `rescue` (including liquidatable ones) or above `releverage` — in
    /// address order, with each visited valuation freshened to current
    /// prices and indexes. Quiet-band accounts whose envelope holds are
    /// skipped without re-valuation: this is the banded fast path of the
    /// engine's borrower-management pass, exactly equivalent to filtering a
    /// full book walk by health factor.
    ///
    /// Changing the thresholds re-classifies the whole book (one-off full
    /// re-valuation). Books containing critical-price-indexed accounts fall
    /// back to the exact full walk — indexed accounts keep no HF band.
    pub fn for_each_at_risk<S: BookSource>(
        &mut self,
        source: &S,
        oracle: &PriceOracle,
        rescue: Wad,
        releverage: Wad,
        visit: &mut dyn FnMut(&Position),
    ) {
        if (rescue, releverage) != self.bands {
            self.bands = (rescue, releverage);
            self.invalidate_all();
        }
        self.flush(source, oracle, false);
        if self
            .shards
            .iter()
            .any(|shard| shard.critical.values().any(|map| !map.is_empty()))
        {
            // Indexed (single-price) accounts read their liquidation status
            // off the critical-price maps and maintain no band — serve mixed
            // books through the exact full walk instead.
            self.flush(source, oracle, true);
            let visit_start = std::time::Instant::now();
            for shard in &self.shards {
                for entry in shard.entries.values() {
                    if !entry.in_book {
                        continue;
                    }
                    let Some(hf) = entry.position.health_factor() else {
                        continue;
                    };
                    if hf < rescue || hf > releverage {
                        visit(&entry.position);
                    }
                }
            }
            self.visit_nanos += visit_start.elapsed().as_nanos() as u64;
            return;
        }
        let bands = self.bands;
        let workers = self.workers.clamp(1, BOOK_SHARD_COUNT);
        if workers > 1 {
            // Phase 1 (parallel): freshen each shard's stale at-risk members.
            // Freshening is per-shard-local and verdict-preserving, so the
            // fan only changes wall-clock, never results.
            let freshen_start = std::time::Instant::now();
            let chunk = BOOK_SHARD_COUNT.div_ceil(workers);
            std::thread::scope(|scope| {
                for shard_chunk in self.shards.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for shard in shard_chunk {
                            shard.freshen_at_risk(source, oracle, bands);
                        }
                    });
                }
            });
            self.freshen_nanos += freshen_start.elapsed().as_nanos() as u64;
        }
        // Phase 2 (serial, shard order = address order): visit. After a
        // parallel freshen this finds nothing stale and is pure iteration;
        // in serial mode this fused pass does the freshening too, so the
        // phase attribution lands in `visit_nanos`.
        let visit_start = std::time::Instant::now();
        for shard in &mut self.shards {
            shard.visit_at_risk(source, oracle, bands, visit);
        }
        self.visit_nanos += visit_start.elapsed().as_nanos() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_core::position::{CollateralHolding, DebtHolding};
    use defi_oracle::OracleConfig;
    use defi_types::mul_div_ceil;

    /// A toy single-collateral protocol: account `i` holds `collateral[i]`
    /// ETH against a fixed par-valued debt, liquidatable below
    /// `debt × 1.5 / collateral` — the Maker shape, small enough to verify
    /// the book's bookkeeping in isolation.
    struct ToySource {
        accounts: BTreeMap<Address, (Wad, Wad)>, // collateral ETH, par debt
        /// Suppress critical prices: accounts then ride the multivariate
        /// (live-set) path, which is what the shard-parallel flush fans out.
        multivariate: bool,
    }

    impl ToySource {
        fn ratio() -> Wad {
            Wad::from_f64(1.5)
        }
    }

    impl BookSource for ToySource {
        fn fill_position(
            &self,
            oracle: &PriceOracle,
            account: Address,
            slot: &mut Position,
        ) -> bool {
            let Some(&(collateral, debt)) = self.accounts.get(&account) else {
                return false;
            };
            slot.collateral.clear();
            slot.debt.clear();
            slot.owner = account;
            if !collateral.is_zero() {
                let price = oracle.price_or_zero(Token::ETH);
                slot.collateral.push(CollateralHolding {
                    token: Token::ETH,
                    amount: collateral,
                    // Saturate *upward* on overflow: a valuation too large to
                    // represent must never collapse to zero and spuriously
                    // flag a healthy account liquidatable.
                    value_usd: collateral.checked_mul(price).unwrap_or(Wad::MAX),
                    liquidation_threshold: Wad::ONE.checked_div(Self::ratio()).unwrap_or(Wad::ZERO),
                    liquidation_spread: Wad::from_f64(0.13),
                });
            }
            if !debt.is_zero() {
                slot.debt.push(DebtHolding {
                    token: Token::DAI,
                    amount: debt,
                    value_usd: debt,
                });
            }
            !slot.collateral.is_empty() || !slot.debt.is_empty()
        }

        fn in_book(&self, _position: &Position) -> bool {
            true
        }

        fn sensitive_tokens(&self, position: &Position, out: &mut Vec<Token>) {
            for holding in &position.collateral {
                out.push(holding.token);
            }
        }

        fn debt_tokens(&self, _position: &Position, _out: &mut Vec<Token>) {}

        fn critical_price(&self, account: Address, _position: &Position) -> Option<(Token, u128)> {
            if self.multivariate {
                return None;
            }
            let &(collateral, debt) = self.accounts.get(&account)?;
            if collateral.is_zero() || debt.is_zero() {
                return None;
            }
            let required = debt.checked_mul(Self::ratio()).unwrap_or(Wad::MAX);
            let crit = mul_div_ceil(required.raw(), defi_types::WAD, collateral.raw())
                .unwrap_or(u128::MAX);
            Some((Token::ETH, crit))
        }
    }

    fn setup(n: u64) -> (ToySource, PositionBook, PriceOracle) {
        let mut source = ToySource {
            accounts: BTreeMap::new(),
            multivariate: false,
        };
        let mut book = PositionBook::new();
        for i in 0..n {
            let address = Address::from_seed(i);
            // Collateralization spreads from 150.1 % upwards.
            let collateral = Wad::from_int(10);
            let debt = Wad::from_f64(10.0 * 100.0 / (1.501 + i as f64 * 0.05));
            source.accounts.insert(address, (collateral, debt));
            book.mark_dirty(address);
        }
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_int(100));
        (source, book, oracle)
    }

    #[test]
    fn range_scan_flags_exactly_the_crossed_accounts() {
        let (source, mut book, mut oracle) = setup(20);
        assert!(book.liquidatable_accounts(&source, &oracle).is_empty());
        // Drop ETH until some collateralizations fall below 150 %.
        oracle.set_price(1, Token::ETH, Wad::from_int(90));
        let flagged = book.liquidatable_accounts(&source, &oracle);
        let expected: Vec<Address> = source
            .accounts
            .iter()
            .filter(|(_, (c, d))| {
                let value = c.checked_mul(oracle.price_or_zero(Token::ETH)).unwrap();
                value < d.checked_mul(ToySource::ratio()).unwrap()
            })
            .map(|(a, _)| *a)
            .collect();
        assert_eq!(flagged, expected);
        assert!(!flagged.is_empty());
        assert!(flagged.len() < source.accounts.len());
    }

    #[test]
    fn price_moves_do_not_revalue_indexed_accounts() {
        let (source, mut book, mut oracle) = setup(50);
        book.liquidatable_accounts(&source, &oracle);
        let after_build = book.stats().revaluations;
        assert_eq!(after_build, 50);
        // A small move that crosses nobody (the tightest account's critical
        // price is ≈ 99.93): discovery re-values nothing.
        oracle.set_price(1, Token::ETH, Wad::from_f64(99.95));
        assert!(book.liquidatable_accounts(&source, &oracle).is_empty());
        assert_eq!(book.stats().revaluations, after_build);
        // A crossing move re-values exactly the returned accounts.
        oracle.set_price(2, Token::ETH, Wad::from_int(88));
        let flagged = book.liquidatable_accounts(&source, &oracle);
        assert!(!flagged.is_empty());
        assert_eq!(
            book.stats().revaluations,
            after_build + flagged.len() as u64
        );
        // A full snapshot then freshens the remaining stale valuations once.
        let positions = book.book_positions(&source, &oracle);
        assert_eq!(positions.len(), 50);
        assert_eq!(book.stats().revaluations, after_build + 50);
        // …and a repeated snapshot re-values nothing at all.
        let again = book.book_positions(&source, &oracle);
        assert_eq!(again, positions);
        assert_eq!(book.stats().revaluations, after_build + 50);
    }

    #[test]
    fn totals_track_mutations_and_removals() {
        let (mut source, mut book, oracle) = setup(10);
        let totals = book.totals(&source, &oracle);
        assert_eq!(totals.open_positions, 10);
        assert_eq!(totals.collateral_usd, Wad::from_int(10 * 10 * 100));

        // Remove one account, repay another's debt.
        let gone = Address::from_seed(3);
        source.accounts.remove(&gone);
        book.mark_dirty(gone);
        let repaid = Address::from_seed(4);
        source.accounts.get_mut(&repaid).unwrap().1 = Wad::ZERO;
        book.mark_dirty(repaid);

        let totals = book.totals(&source, &oracle);
        assert_eq!(totals.open_positions, 9);
        assert_eq!(totals.collateral_usd, Wad::from_int(9 * 10 * 100));
        let manual_debt: Wad = source
            .accounts
            .values()
            .fold(Wad::ZERO, |acc, (_, d)| acc.saturating_add(*d));
        assert_eq!(totals.debt_usd, manual_debt);
        assert!(book.cached_position(gone).is_none());
    }

    /// Books containing critical-price-indexed accounts serve the at-risk
    /// iteration through the exact full walk — and it still equals the
    /// health-factor filter over the observable book.
    #[test]
    fn at_risk_iteration_falls_back_to_exact_for_indexed_books() {
        let (source, mut book, mut oracle) = setup(20);
        oracle.set_price(1, Token::ETH, Wad::from_int(95));
        let rescue = Wad::from_f64(RESCUE_BAND_HF);
        let releverage = Wad::from_f64(RELEVERAGE_BAND_HF);
        let mut seen = Vec::new();
        book.for_each_at_risk(&source, &oracle, rescue, releverage, &mut |position| {
            seen.push(position.owner)
        });
        let expected: Vec<Address> = book
            .book_positions(&source, &oracle)
            .into_iter()
            .filter(|p| {
                p.health_factor()
                    .is_some_and(|hf| hf < rescue || hf > releverage)
            })
            .map(|p| p.owner)
            .collect();
        assert_eq!(seen, expected);
        assert!(!seen.is_empty());
        assert!(seen.len() < 20, "some accounts must be quiet");
    }

    #[test]
    fn oracle_rewind_is_detected_and_invalidates_everything() {
        let (source, mut book, mut oracle) = setup(5);
        oracle.set_price(1, Token::ETH, Wad::from_int(120));
        book.book_positions(&source, &oracle);
        let baseline = book.stats().revaluations;
        // A *different* oracle instance whose epoch sits behind the one the
        // book synced to: the book cannot trust any cached valuation.
        let mut other = PriceOracle::new(OracleConfig::every_update());
        other.set_price(0, Token::ETH, Wad::from_int(250));
        assert!(other.epoch() < oracle.epoch());
        let positions = book.book_positions(&source, &other);
        assert_eq!(book.stats().revaluations, baseline + 5);
        assert!(positions
            .iter()
            .all(|p| p.total_collateral_value() == Wad::from_int(2_500)));
        // The always-on stale-flag invariant held through rewind + drain.
        assert_eq!(book.stats().stale_violations, 0);
    }

    /// Satellite regression: a collateral valuation too large for the
    /// fixed-point range must saturate *upward*, never collapse to zero — an
    /// overflow previously zeroed the collateral value and could flag a
    /// massively over-collateralized account as liquidatable.
    #[test]
    fn extreme_prices_saturate_collateral_value_upward() {
        let mut source = ToySource {
            accounts: BTreeMap::new(),
            multivariate: true,
        };
        let mut book = PositionBook::new();
        let whale = Address::from_seed(0);
        // 10^15 ETH at 10^15 USD: the raw product overflows u128.
        let collateral = Wad::from_int(1_000_000_000_000_000);
        let debt = Wad::from_int(100);
        source.accounts.insert(whale, (collateral, debt));
        book.mark_dirty(whale);
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_int(1_000_000_000_000_000));
        let positions = book.book_positions(&source, &oracle);
        assert_eq!(positions.len(), 1);
        assert_eq!(
            positions[0].total_collateral_value(),
            Wad::MAX,
            "overflowed collateral value must saturate upward"
        );
        assert!(
            book.liquidatable_accounts(&source, &oracle).is_empty(),
            "a saturated (astronomically healthy) account must not be flagged"
        );
        assert_eq!(book.stats().stale_violations, 0);
    }

    /// Tentpole invariant, small scale: every book surface is byte-identical
    /// for any worker count, across mutations, price moves and removals.
    #[test]
    fn worker_counts_produce_identical_books() {
        let run = |workers: usize| {
            let (mut source, mut book, mut oracle) = setup(64);
            source.multivariate = true;
            book.set_workers(workers);
            let mut log = Vec::new();
            for step in 0u64..12 {
                // Wiggle the price and mutate a few accounts each step.
                let price = 100.0 - step as f64 * 2.5;
                oracle.set_price(step + 1, Token::ETH, Wad::from_f64(price));
                let touched = Address::from_seed(step % 64);
                if let Some(slot) = source.accounts.get_mut(&touched) {
                    slot.1 = slot.1.saturating_add(Wad::from_int(1));
                }
                book.mark_dirty(touched);
                if step == 7 {
                    let gone = Address::from_seed(11);
                    source.accounts.remove(&gone);
                    book.mark_dirty(gone);
                }
                log.push((
                    book.liquidatable_accounts(&source, &oracle),
                    book.totals(&source, &oracle),
                    book.book_positions(&source, &oracle),
                ));
            }
            log
        };
        let serial = run(1);
        for workers in [2, 4, 16] {
            assert_eq!(run(workers), serial, "workers={workers} diverged");
        }
    }

    /// Tentpole invariant: an unchanged shard hands out the same `Arc` on
    /// the next snapshot; touching one account rebuilds only its shard.
    #[test]
    fn snapshot_reuses_unchanged_shard_arcs() {
        let (mut source, mut book, oracle) = setup(64);
        let first = book.snapshot(&source, &oracle);
        let second = book.snapshot(&source, &oracle);
        assert_eq!(first.shards().len(), BOOK_SHARD_COUNT);
        assert!(
            first
                .shards()
                .iter()
                .zip(second.shards())
                .all(|(a, b)| Arc::ptr_eq(a, b)),
            "an untouched book must reuse every shard snapshot"
        );
        // Mutate exactly one account: only its shard may rebuild.
        let touched = Address::from_seed(7);
        source.accounts.get_mut(&touched).unwrap().1 = Wad::from_int(1);
        book.mark_dirty(touched);
        let third = book.snapshot(&source, &oracle);
        let rebuilt: Vec<usize> = second
            .shards()
            .iter()
            .zip(third.shards())
            .enumerate()
            .filter(|(_, (a, b))| !Arc::ptr_eq(a, b))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            rebuilt,
            vec![shard_of(&touched)],
            "exactly the touched shard must rebuild"
        );
        // The rebuilt snapshot still reads consistently.
        assert_eq!(third.len(), 64);
        assert_eq!(
            third.entry(touched).unwrap().position.total_debt_value(),
            Wad::from_int(1)
        );
    }
}
