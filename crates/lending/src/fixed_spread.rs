//! The generic atomic fixed-spread lending pool (§3.2.2).
//!
//! Aave V1, Aave V2, Compound and dYdX all follow the same shape: a pool of
//! markets, over-collateralized borrowing limited by per-market liquidation
//! thresholds, and a public `liquidationCall` that lets anyone repay part of
//! an unhealthy position's debt in exchange for collateral at a discount (the
//! liquidation spread), up to the close factor. [`FixedSpreadProtocol`] is
//! that engine; the per-platform differences (markets listed, spreads, close
//! factor, insurance fund) are configuration — see [`crate::platforms`].

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

use defi_chain::{ChainEvent, Ledger, LiquidationEvent};
use defi_core::params::RiskParams;
use defi_core::position::{CollateralHolding, DebtHolding, Position};
use defi_oracle::PriceOracle;
use defi_types::{mul_div_floor, Address, BlockNumber, Platform, Token, Wad, WAD};

use crate::book::{BookSource, BookStats, BookTotals, EnvelopeAnchor, HfEnvelope, PositionBook};
use crate::error::ProtocolError;
use crate::interest::{utilization, BorrowIndex, InterestRateModel};

/// Protocol-wide configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FixedSpreadConfig {
    /// The platform identity used for events and reports.
    pub platform: Platform,
    /// Close factor CF: the maximum proportion of a debt repayable in one
    /// liquidation (0.5 on Aave/Compound, 1.0 on dYdX).
    pub close_factor: Wad,
    /// Enable the §5.2.3 mitigation: a position may only be liquidated once
    /// per block.
    pub one_liquidation_per_block: bool,
    /// Whether an insurance fund absorbs under-collateralized (Type I)
    /// positions, as dYdX does (§4.4.2).
    pub insurance_fund: bool,
    /// Residual scaled debt (raw 18-decimal units) below which a repayment is
    /// treated as full and written off: interest-index truncation can leave a
    /// few raw units behind an otherwise complete repayment, and such dust
    /// positions would linger in the book with an unrepresentable health
    /// factor. The same tolerance absorbs close-factor rounding dust on
    /// liquidation requests. [`DEFAULT_DEBT_DUST`] (10⁻¹⁵ tokens) reproduces
    /// the paper setup; dust-sensitivity experiments can dial it.
    pub debt_dust: Wad,
}

/// One listed market.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Market {
    /// The market's underlying token.
    pub token: Token,
    /// Liquidation threshold LT of collateral in this token.
    pub liquidation_threshold: Wad,
    /// Liquidation spread LS when seizing collateral in this token.
    pub liquidation_spread: Wad,
    /// Interest-rate model of the borrow side.
    pub rate_model: InterestRateModel,
    /// Cash available in the pool (deposits + repayments − borrows − seized collateral).
    pub available_liquidity: Wad,
    /// Total scaled (index-adjusted) debt across borrowers.
    pub total_scaled_debt: Wad,
    /// Borrow-index accrual state.
    pub index: BorrowIndex,
}

impl Market {
    fn new(
        token: Token,
        params: RiskParams,
        rate_model: InterestRateModel,
        block: BlockNumber,
    ) -> Self {
        Market {
            token,
            liquidation_threshold: params.liquidation_threshold,
            liquidation_spread: params.liquidation_spread,
            rate_model,
            available_liquidity: Wad::ZERO,
            total_scaled_debt: Wad::ZERO,
            index: BorrowIndex::new(block),
        }
    }

    /// Total outstanding debt (scaled debt × index).
    pub fn total_debt(&self) -> Wad {
        self.index.scale_up(self.total_scaled_debt)
    }

    /// Current utilization of the market.
    pub fn utilization(&self) -> f64 {
        utilization(self.available_liquidity, self.total_debt())
    }

    /// Accrue up to `block`; returns whether the borrow index actually moved
    /// (the owning pool's valuation cache invalidates the market's debtors
    /// exactly when it did).
    fn accrue(&mut self, block: BlockNumber) -> bool {
        let before = self.index.index;
        let u = self.utilization();
        self.index.accrue(&self.rate_model, u, block);
        self.index.index != before
    }
}

/// Per-account state: raw collateral amounts and scaled debt amounts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Account {
    collateral: BTreeMap<Token, Wad>,
    scaled_debt: BTreeMap<Token, Wad>,
}

impl Account {
    fn is_empty(&self) -> bool {
        self.collateral.values().all(|v| v.is_zero())
            && self.scaled_debt.values().all(|v| v.is_zero())
    }
}

/// Result of a successful `liquidation_call`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiquidationReceipt {
    /// Debt actually repaid (token units; may be lower than requested when
    /// capped by the close factor or the available collateral).
    pub debt_repaid: Wad,
    /// USD value of the repaid debt at the settlement prices.
    pub debt_repaid_usd: Wad,
    /// Collateral seized (token units).
    pub collateral_seized: Wad,
    /// USD value of the seized collateral.
    pub collateral_seized_usd: Wad,
    /// Health factor of the position after the liquidation, if debt remains.
    pub health_factor_after: Option<Wad>,
}

impl LiquidationReceipt {
    /// Liquidator profit before transaction fees (USD).
    pub fn gross_profit_usd(&self) -> Wad {
        self.collateral_seized_usd
            .saturating_sub(self.debt_repaid_usd)
    }
}

/// Default residual-scaled-debt write-off threshold (raw 18-decimal units,
/// i.e. 10⁻¹⁵ tokens) — see [`FixedSpreadConfig::debt_dust`].
pub const DEFAULT_DEBT_DUST: Wad = Wad::from_raw(1_000);

/// The fixed-spread lending pool.
#[derive(Debug, Clone)]
pub struct FixedSpreadProtocol {
    config: FixedSpreadConfig,
    /// Ledger account holding the pool's funds.
    pub pool_address: Address,
    markets: BTreeMap<Token, Market>,
    accounts: HashMap<Address, Account>,
    last_liquidation_block: HashMap<Address, BlockNumber>,
    /// Cumulative debt written off by the insurance fund (USD, diagnostics).
    pub insurance_written_off: Wad,
    /// Incremental valuation cache (see [`crate::book`]).
    book: PositionBook,
}

/// Borrow-view of the pool state handed to the [`PositionBook`]: the book is
/// a sibling field, so re-valuations read the pool through this view while
/// the book itself is mutated.
struct FixedSpreadView<'a> {
    platform: Platform,
    markets: &'a BTreeMap<Token, Market>,
    accounts: &'a HashMap<Address, Account>,
}

impl BookSource for FixedSpreadView<'_> {
    fn fill_position(&self, oracle: &PriceOracle, account: Address, slot: &mut Position) -> bool {
        let Some(state) = self.accounts.get(&account) else {
            return false;
        };
        if state.is_empty() {
            // The legacy `positions()` rebuild skips emptied accounts.
            return false;
        }
        fill_position_from(self.platform, self.markets, state, oracle, account, slot)
    }

    fn in_book(&self, position: &Position) -> bool {
        // The observable book reports accounts that actually borrow.
        !position.total_debt_value().is_zero()
    }

    fn sensitive_tokens(&self, position: &Position, out: &mut Vec<Token>) {
        for holding in &position.collateral {
            if !out.contains(&holding.token) {
                out.push(holding.token);
            }
        }
        for holding in &position.debt {
            if !out.contains(&holding.token) {
                out.push(holding.token);
            }
        }
    }

    fn debt_tokens(&self, position: &Position, out: &mut Vec<Token>) {
        for holding in &position.debt {
            if !out.contains(&holding.token) {
                out.push(holding.token);
            }
        }
    }

    fn critical_price(&self, _account: Address, _position: &Position) -> Option<(Token, u128)> {
        // A fixed-spread health factor is never a function of one price
        // alone: collateral and debt tokens are valued at floating oracle
        // prices, and the borrow index accrues per block — a single-token
        // position (same collateral and debt asset) has a price-independent
        // HF anyway. The dirty/live-set path is the exact mechanism here; the
        // critical-price index serves par-debt mechanisms (Maker).
        None
    }

    fn borrow_index(&self, token: Token) -> Option<u128> {
        self.markets.get(&token).map(|m| m.index.index.raw())
    }

    fn hf_envelope(
        &self,
        oracle: &PriceOracle,
        position: &Position,
        floor: Option<Wad>,
        ceiling: Option<Wad>,
        anchor: EnvelopeAnchor,
        out: &mut HfEnvelope,
    ) -> bool {
        derive_hf_envelope(self.markets, oracle, position, floor, ceiling, anchor, out)
    }

    fn reprice_position(
        &self,
        oracle: &PriceOracle,
        position: &mut Position,
        moved: &[Token],
    ) -> bool {
        // The term path: recompute exactly the moved tokens' USD value
        // terms, with the same arithmetic `fill_position_from` uses on the
        // same cached inputs (amounts, thresholds and spreads are unchanged
        // — the book only calls this when the account is not dirty and no
        // borrow index it owes moved), so the result is byte-identical to a
        // full rebuild at the current oracle state.
        for holding in &mut position.collateral {
            if moved.contains(&holding.token) {
                let price = oracle.price_or_zero(holding.token);
                holding.value_usd = holding.amount.checked_mul(price).unwrap_or(Wad::MAX);
            }
        }
        for holding in &mut position.debt {
            if moved.contains(&holding.token) {
                let price = oracle.price_or_zero(holding.token);
                holding.value_usd = holding.amount.checked_mul(price).unwrap_or(Wad::MAX);
            }
        }
        true
    }
}

/// Relative shrink applied to the band margins before sizing an envelope.
/// Every certified verdict therefore keeps a margin of at least
/// `GUARD × HF` to its band edge, which dwarfs the fixed-point rounding of
/// the health-factor evaluation for positions above
/// [`ENVELOPE_VALUE_FLOOR`] by several orders of magnitude.
const ENVELOPE_GUARD: f64 = 1e-6;

/// Smallest relative slack worth certifying: a narrower envelope would be
/// violated by almost any price write, so the account rides the exact path.
const MIN_ENVELOPE_SLACK: f64 = 1e-6;

/// Raw-Wad floor (10⁻⁶ USD) on both the borrowing capacity and the debt
/// value below which an envelope is refused: truncation in the fixed-point
/// valuation of microscopic positions could rival the guard band, so dust
/// rides the exact path.
const ENVELOPE_VALUE_FLOOR: u128 = 1_000_000_000_000;

/// Derive a conservative health-factor band envelope for a fixed-spread
/// position, from the same quantities [`fill_position`] computed
/// (`fill_position_from`): per-token price bounds and per-market borrow-index
/// caps within which the health factor provably stays strictly inside
/// `(floor, ceiling)`.
///
/// The argument is monotone interval arithmetic on Eq. 4. Writing
/// `B = Σ cᵢ·pᵢ·LTᵢ` (borrowing capacity) and `D = Σ dⱼ·Iⱼ/I⁰ⱼ·pⱼ` (debt
/// value, with each borrow index only ever growing), a uniform relative
/// slack `s` on every price plus a `(1+s)` budget on every index gives
///
/// * `HF' ≤ HF · (1+s)/(1−s)` (collateral up, debt prices down, index fixed),
/// * `HF' ≥ HF · (1−s)/((1+s)·(1+s))` (collateral down, debt prices and
///   index up to their caps),
///
/// so it suffices to pick `s` with `(1+s)/(1−s) ≤ ceiling/HF · (1−g)` and
/// `(1+s)²/(1−s) ≤ HF/floor · (1−g)` (guard `g` = [`ENVELOPE_GUARD`]). The
/// slack is found by halving from 25 %, and the integer bounds are rounded
/// *inward* ([`mul_div_floor`] on the delta), so certification only ever
/// narrows the real-valued envelope. A band with no floor needs no index
/// caps at all: accrual only pushes the health factor down. Returns `false`
/// (exact path) when the position is too close to a band edge, too small, or
/// holds a token without a listed market.
///
/// # Re-anchor hysteresis
///
/// `anchor` records how the previous envelope broke. On a non-[`Fresh`]
/// anchor the halved slack is refined *upward* by binary search (the
/// inequalities above are monotone in `s`, so any `s` that passes is still
/// certified by the same proof), and the refined budget is split
/// asymmetrically: an envelope that broke upward puts more slack *below* the
/// new, higher anchor price — exactly where an oscillating price will
/// return — and vice versa. The asymmetric split is verified against the
/// directional inequalities `(1+s_up)/(1−s_dn) ≤ margin_up` and
/// `(1+s_up)²/(1−s_dn) ≤ margin_down` (collateral prices rising and debt
/// prices falling drive HF up by at most `(1+s_up)/(1−s_dn)`; the converse
/// plus the index budget drives it down by at most `(1+s_up)·(1+s_up)/(1−s_dn)`
/// — the index budget reuses `s_up`), falling back to the symmetric refined
/// slack when the split fails. Soundness never depends on the anchor: every
/// emitted bound satisfies the same interval-arithmetic proof.
///
/// [`Fresh`]: EnvelopeAnchor::Fresh
pub fn derive_hf_envelope(
    markets: &BTreeMap<Token, Market>,
    oracle: &PriceOracle,
    position: &Position,
    floor: Option<Wad>,
    ceiling: Option<Wad>,
    anchor: EnvelopeAnchor,
    out: &mut HfEnvelope,
) -> bool {
    out.clear();
    let capacity = position.borrowing_capacity();
    let debt = position.total_debt_value();
    if capacity.raw() < ENVELOPE_VALUE_FLOOR || debt.raw() < ENVELOPE_VALUE_FLOOR {
        return false;
    }
    let Some(hf) = position.health_factor() else {
        return false;
    };
    let hf = hf.to_f64();
    let margin_up = match ceiling {
        Some(c) => {
            if hf <= 0.0 {
                // Unreachable given the value floor above; if a future HF
                // representation could get here, ride the exact path rather
                // than certify a ceiling with an unbounded margin.
                return false;
            }
            (c.to_f64() / hf) * (1.0 - ENVELOPE_GUARD)
        }
        None => f64::INFINITY,
    };
    let margin_down = match floor {
        Some(f) if !f.is_zero() => (hf / f.to_f64()) * (1.0 - ENVELOPE_GUARD),
        _ => f64::INFINITY,
    };
    let symmetric_ok = |s: f64| {
        let up_ok = !margin_up.is_finite() || (1.0 + s) / (1.0 - s) <= margin_up;
        let down_ok = !margin_down.is_finite() || (1.0 + s) * (1.0 + s) / (1.0 - s) <= margin_down;
        up_ok && down_ok
    };
    let mut slack = 0.25;
    while !symmetric_ok(slack) {
        slack *= 0.5;
        if slack < MIN_ENVELOPE_SLACK {
            return false;
        }
    }
    let (slack_dn, slack_up) = if anchor == EnvelopeAnchor::Fresh {
        (slack, slack)
    } else {
        // Hysteresis: the halving loop undershoots the certifiable slack by
        // up to 2×. A broken envelope is the one place the extra width pays
        // for the derivation it avoids, so binary-search the largest
        // certified symmetric slack in [slack, min(2·slack, 0.45)] — every
        // probe is checked by the same inequalities, so the proof is intact.
        let mut lo = slack;
        let mut hi = (2.0 * slack).min(0.45);
        for _ in 0..6 {
            let mid = 0.5 * (lo + hi);
            if symmetric_ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let refined = lo;
        // Skew the certified budget toward the side the price just came
        // from; verified against the directional forms of the same bounds
        // (prices may rise by s_up and fall by s_dn independently; the
        // index budget reuses s_up). Falls back to the symmetric refined
        // slack when the skewed pair is not certifiable.
        let asymmetric_ok = |s_dn: f64, s_up: f64| {
            s_dn < 0.5
                && s_up < 0.5
                && (!margin_up.is_finite() || (1.0 + s_up) / (1.0 - s_dn) <= margin_up)
                && (!margin_down.is_finite()
                    || (1.0 + s_up) * (1.0 + s_up) / (1.0 - s_dn) <= margin_down)
        };
        let split = match anchor {
            EnvelopeAnchor::BrokeUp => Some((1.5 * refined, 0.5 * refined)),
            EnvelopeAnchor::BrokeDown => Some((0.5 * refined, 1.5 * refined)),
            EnvelopeAnchor::Fresh | EnvelopeAnchor::BrokeBoth => None,
        };
        match split {
            Some((dn, up)) if asymmetric_ok(dn, up) => (dn, up),
            _ => (refined, refined),
        }
    };
    // Shave the raw slacks below the f64 values the inequalities were
    // verified with, so representation rounding cannot widen the envelope.
    let slack_dn_raw = Wad::from_f64(slack_dn * (1.0 - 1e-12)).raw();
    let slack_up_raw = Wad::from_f64(slack_up * (1.0 - 1e-12)).raw();

    for holding in position
        .collateral
        .iter()
        .map(|c| c.token)
        .chain(position.debt.iter().map(|d| d.token))
    {
        if out.price_bounds.iter().any(|(t, _, _)| *t == holding) {
            continue;
        }
        let price = oracle.price_or_zero(holding).raw();
        let delta_dn = mul_div_floor(price, slack_dn_raw, WAD).unwrap_or(0);
        let delta_up = mul_div_floor(price, slack_up_raw, WAD).unwrap_or(0);
        out.price_bounds
            .push((holding, price - delta_dn, price.saturating_add(delta_up)));
    }
    for d in &position.debt {
        let cap = if floor.is_none() {
            // Accrual only grows the debt, which cannot cross an open lower
            // edge — the index is unconstrained.
            u128::MAX
        } else {
            let Some(market) = markets.get(&d.token) else {
                out.clear();
                return false;
            };
            let index = market.index.index.raw();
            index.saturating_add(mul_div_floor(index, slack_up_raw, WAD).unwrap_or(0))
        };
        if out.index_caps.iter().any(|(t, _)| *t == d.token) {
            continue;
        }
        out.index_caps.push((d.token, cap));
    }
    true
}

/// Build `slot` in place as the account's valuation snapshot. This is *the*
/// valuation code path: the public [`FixedSpreadProtocol::position`] and the
/// incremental book both route through it, which is what keeps cached entries
/// byte-identical to from-scratch rebuilds. Returns `false` when a held
/// token's market is missing (the legacy rebuild drops such accounts).
fn fill_position_from(
    platform: Platform,
    markets: &BTreeMap<Token, Market>,
    state: &Account,
    oracle: &PriceOracle,
    account: Address,
    slot: &mut Position,
) -> bool {
    slot.owner = account;
    slot.platform = Some(platform);
    slot.collateral.clear();
    slot.debt.clear();
    for (&token, &amount) in &state.collateral {
        if amount.is_zero() {
            continue;
        }
        let Some(market) = markets.get(&token) else {
            return false;
        };
        let price = oracle.price_or_zero(token);
        slot.collateral.push(CollateralHolding {
            token,
            amount,
            // Overflow saturates toward the true (huge) value: zeroing an
            // overflowed collateral value would spuriously flag a healthy
            // whale account as liquidatable.
            value_usd: amount.checked_mul(price).unwrap_or(Wad::MAX),
            liquidation_threshold: market.liquidation_threshold,
            liquidation_spread: market.liquidation_spread,
        });
    }
    for (&token, &scaled) in &state.scaled_debt {
        if scaled.is_zero() {
            continue;
        }
        let Some(market) = markets.get(&token) else {
            return false;
        };
        let amount = market.index.scale_up(scaled);
        let price = oracle.price_or_zero(token);
        slot.debt.push(DebtHolding {
            token,
            amount,
            // Same direction rule for debt: an overflowed debt value is
            // astronomically large, so saturating up keeps the account
            // (correctly) underwater instead of wiping its debt to zero.
            value_usd: amount.checked_mul(price).unwrap_or(Wad::MAX),
        });
    }
    true
}

impl FixedSpreadProtocol {
    /// Create an empty pool for a platform.
    pub fn new(config: FixedSpreadConfig) -> Self {
        let pool_address = Address::from_label(&format!("{}-pool", config.platform.name()));
        FixedSpreadProtocol {
            config,
            pool_address,
            markets: BTreeMap::new(),
            accounts: HashMap::new(),
            last_liquidation_block: HashMap::new(),
            insurance_written_off: Wad::ZERO,
            book: PositionBook::new(),
        }
    }

    /// Split the pool into its valuation cache and the read-view the cache
    /// re-values accounts through.
    fn split_book(&mut self) -> (&mut PositionBook, FixedSpreadView<'_>) {
        (
            &mut self.book,
            FixedSpreadView {
                platform: self.config.platform,
                markets: &self.markets,
                accounts: &self.accounts,
            },
        )
    }

    /// The protocol configuration.
    pub fn config(&self) -> FixedSpreadConfig {
        self.config
    }

    /// The platform identity.
    pub fn platform(&self) -> Platform {
        self.config.platform
    }

    /// Enable or disable the one-liquidation-per-block mitigation (used by
    /// the mitigation ablation bench).
    pub fn set_one_liquidation_per_block(&mut self, enabled: bool) {
        self.config.one_liquidation_per_block = enabled;
    }

    /// List a market. Re-listing an existing token replaces its risk
    /// parameters, which changes every cached valuation's thresholds — the
    /// whole book re-values.
    pub fn list_market(
        &mut self,
        token: Token,
        params: RiskParams,
        rate_model: InterestRateModel,
        block: BlockNumber,
    ) {
        self.book.invalidate_all();
        self.markets
            .insert(token, Market::new(token, params, rate_model, block));
    }

    /// Listed markets.
    pub fn markets(&self) -> impl Iterator<Item = &Market> {
        self.markets.values()
    }

    /// Look up a market.
    pub fn market(&self, token: Token) -> Option<&Market> {
        self.markets.get(&token)
    }

    /// Risk parameters of a market (protocol close factor + market LT/LS).
    pub fn market_params(&self, token: Token) -> Option<RiskParams> {
        self.markets.get(&token).map(|m| RiskParams {
            liquidation_threshold: m.liquidation_threshold,
            liquidation_spread: m.liquidation_spread,
            close_factor: self.config.close_factor,
        })
    }

    /// Accrue interest in every market up to `block`. Markets whose borrow
    /// index actually moved invalidate their debtors in the valuation cache.
    pub fn accrue_all(&mut self, block: BlockNumber) {
        for (token, market) in self.markets.iter_mut() {
            if market.accrue(block) {
                self.book.note_index_change(*token);
            }
        }
    }

    fn market_mut(&mut self, token: Token) -> Result<&mut Market, ProtocolError> {
        self.markets
            .get_mut(&token)
            .ok_or(ProtocolError::MarketNotListed(token))
    }

    fn price(oracle: &PriceOracle, token: Token) -> Result<Wad, ProtocolError> {
        oracle
            .price(token)
            .ok_or(ProtocolError::MissingPrice(token))
    }

    // ----------------------------------------------------------------- user ops

    /// Deposit collateral: transfers `amount` of `token` from `account` into
    /// the pool and credits it as collateral (which also becomes lendable
    /// liquidity, as on Aave/Compound).
    pub fn deposit(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        if !self.markets.contains_key(&token) {
            return Err(ProtocolError::MarketNotListed(token));
        }
        ledger.transfer(account, self.pool_address, token, amount)?;
        let market = self.market_mut(token)?;
        market.available_liquidity = market.available_liquidity.saturating_add(amount);
        let entry = self
            .accounts
            .entry(account)
            .or_default()
            .collateral
            .entry(token)
            .or_insert(Wad::ZERO);
        *entry = entry.saturating_add(amount);
        self.book.mark_dirty(account);
        events.push(ChainEvent::Deposit {
            platform: self.config.platform,
            account,
            token,
            amount,
        });
        Ok(())
    }

    /// Withdraw collateral, as long as the position stays healthy.
    pub fn withdraw(
        &mut self,
        ledger: &mut Ledger,
        oracle: &PriceOracle,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        let held = self.collateral_of(account, token);
        if held < amount {
            return Err(ProtocolError::NoCollateralInToken(token));
        }
        {
            let market = self.market_mut(token)?;
            if market.available_liquidity < amount {
                return Err(ProtocolError::InsufficientLiquidity {
                    token,
                    requested: amount,
                    available: market.available_liquidity,
                });
            }
        }
        // Tentatively remove and check health.
        self.adjust_collateral(account, token, amount, false);
        let still_healthy = self
            .position(oracle, account)
            .map(|p| !p.is_liquidatable())
            .unwrap_or(true);
        if !still_healthy {
            // Roll back the tentative removal.
            self.adjust_collateral(account, token, amount, true);
            return Err(ProtocolError::WouldBecomeUnhealthy);
        }
        let market = self.market_mut(token)?;
        market.available_liquidity = market.available_liquidity.saturating_sub(amount);
        self.book.mark_dirty(account);
        ledger.transfer(self.pool_address, account, token, amount)?;
        Ok(())
    }

    /// Borrow `amount` of `token` against the account's collateral.
    #[allow(clippy::too_many_arguments)]
    pub fn borrow(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        {
            let (index_moved, available) = {
                let market = self.market_mut(token)?;
                (market.accrue(block), market.available_liquidity)
            };
            if index_moved {
                // Recorded before any error path: the accrual persisted.
                self.book.note_index_change(token);
            }
            if available < amount {
                return Err(ProtocolError::InsufficientLiquidity {
                    token,
                    requested: amount,
                    available,
                });
            }
        }
        // Capacity check: existing debt + new borrow must stay within BC.
        let position = self
            .position(oracle, account)
            .unwrap_or_else(|| Position::new(account));
        let capacity = position.borrowing_capacity();
        let price = Self::price(oracle, token)?;
        let new_debt_value = amount
            .checked_mul(price)
            .map_err(|_| ProtocolError::Arithmetic)?;
        let required = position.total_debt_value().saturating_add(new_debt_value);
        if required > capacity {
            return Err(ProtocolError::ExceedsBorrowingCapacity { capacity, required });
        }

        let market = self.market_mut(token)?;
        let scaled = market.index.scale_down(amount);
        market.total_scaled_debt = market.total_scaled_debt.saturating_add(scaled);
        market.available_liquidity = market.available_liquidity.saturating_sub(amount);
        let entry = self
            .accounts
            .entry(account)
            .or_default()
            .scaled_debt
            .entry(token)
            .or_insert(Wad::ZERO);
        *entry = entry.saturating_add(scaled);
        self.book.mark_dirty(account);

        ledger.transfer(self.pool_address, account, token, amount)?;
        events.push(ChainEvent::Borrow {
            platform: self.config.platform,
            borrower: account,
            token,
            amount,
        });
        Ok(())
    }

    /// Repay `amount` of the account's `token` debt; returns the amount
    /// repaid. Repaying more than the outstanding debt (after accrual) is
    /// rejected with [`ProtocolError::RepayExceedsOutstanding`] — a typed
    /// error rather than a silent clamp, so callers repaying "everything"
    /// must read the accrued debt first.
    pub fn repay(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<Wad, ProtocolError> {
        {
            let index_moved = {
                let market = self.market_mut(token)?;
                market.accrue(block)
            };
            if index_moved {
                self.book.note_index_change(token);
            }
        }
        let outstanding = self.debt_of(account, token);
        if outstanding.is_zero() {
            return Err(ProtocolError::NoDebtInToken(token));
        }
        if amount > outstanding {
            return Err(ProtocolError::RepayExceedsOutstanding {
                outstanding,
                requested: amount,
            });
        }
        let repaid = amount;
        ledger.transfer(account, self.pool_address, token, repaid)?;
        self.reduce_debt(account, token, repaid);
        self.book.mark_dirty(account);
        let market = self.market_mut(token)?;
        market.available_liquidity = market.available_liquidity.saturating_add(repaid);
        events.push(ChainEvent::Repay {
            platform: self.config.platform,
            borrower: account,
            token,
            amount: repaid,
        });
        Ok(repaid)
    }

    // -------------------------------------------------------------- accounting

    fn adjust_collateral(&mut self, account: Address, token: Token, amount: Wad, add: bool) {
        let entry = self
            .accounts
            .entry(account)
            .or_default()
            .collateral
            .entry(token)
            .or_insert(Wad::ZERO);
        *entry = if add {
            entry.saturating_add(amount)
        } else {
            entry.saturating_sub(amount)
        };
    }

    fn reduce_debt(&mut self, account: Address, token: Token, amount: Wad) {
        let index = match self.markets.get(&token) {
            Some(m) => m.index,
            None => return,
        };
        let scaled = index.scale_down(amount);
        let dust = self.config.debt_dust;
        let mut dust_written_off = Wad::ZERO;
        if let Some(acct) = self.accounts.get_mut(&account) {
            if let Some(entry) = acct.scaled_debt.get_mut(&token) {
                *entry = entry.saturating_sub(scaled);
                // A full repayment routed through the interest index can
                // truncate to a few raw units of residual debt. Write the
                // dust off so "fully repaid" really is zero — otherwise the
                // account lingers in the position book with sub-wei debt.
                if *entry <= dust {
                    dust_written_off = *entry;
                    *entry = Wad::ZERO;
                }
            }
        }
        if let Some(market) = self.markets.get_mut(&token) {
            market.total_scaled_debt = market
                .total_scaled_debt
                .saturating_sub(scaled.saturating_add(dust_written_off));
        }
    }

    /// Collateral held by an account in a token (token units).
    pub fn collateral_of(&self, account: Address, token: Token) -> Wad {
        self.accounts
            .get(&account)
            .and_then(|a| a.collateral.get(&token))
            .copied()
            .unwrap_or(Wad::ZERO)
    }

    /// Outstanding debt (with accrued interest) of an account in a token.
    pub fn debt_of(&self, account: Address, token: Token) -> Wad {
        let scaled = self
            .accounts
            .get(&account)
            .and_then(|a| a.scaled_debt.get(&token))
            .copied()
            .unwrap_or(Wad::ZERO);
        match self.markets.get(&token) {
            Some(market) => market.index.scale_up(scaled),
            None => Wad::ZERO,
        }
    }

    /// The valuation snapshot of one account, or `None` if the account has
    /// never interacted with the pool. Always computed from scratch — this is
    /// the reference path the incremental book is tested against.
    pub fn position(&self, oracle: &PriceOracle, account: Address) -> Option<Position> {
        let state = self.accounts.get(&account)?;
        let mut position = Position::new(account);
        fill_position_from(
            self.config.platform,
            &self.markets,
            state,
            oracle,
            account,
            &mut position,
        )
        .then_some(position)
    }

    /// Valuation snapshots of every account with a non-empty position,
    /// rebuilt from scratch (the reference path; the engine reads the
    /// incremental [`cached_book`](FixedSpreadProtocol::cached_book)).
    pub fn positions(&self, oracle: &PriceOracle) -> Vec<Position> {
        let mut addresses: Vec<Address> = self
            .accounts
            .iter()
            .filter(|(_, a)| !a.is_empty())
            .map(|(addr, _)| *addr)
            .collect();
        addresses.sort();
        addresses
            .into_iter()
            .filter_map(|addr| self.position(oracle, addr))
            .collect()
    }

    /// Accounts whose health factor is below 1 at current oracle prices,
    /// rebuilt from scratch (reference path for the incremental book).
    pub fn liquidatable_accounts(&self, oracle: &PriceOracle) -> Vec<Address> {
        self.positions(oracle)
            .into_iter()
            .filter(|p| p.is_liquidatable())
            .map(|p| p.owner)
            .collect()
    }

    /// Whether an account is currently liquidatable.
    pub fn is_liquidatable(&self, oracle: &PriceOracle, account: Address) -> bool {
        self.position(oracle, account)
            .map(|p| p.is_liquidatable())
            .unwrap_or(false)
    }

    // ------------------------------------------------------- incremental book

    /// The observable book (borrowing accounts) served from the incremental
    /// cache: only accounts whose inputs changed since the last query
    /// re-value.
    pub fn cached_book(&mut self, oracle: &PriceOracle) -> Vec<Position> {
        let (book, view) = self.split_book();
        book.book_positions(&view, oracle)
    }

    /// Visit every observable book position without materialising a snapshot
    /// vector (the engine's borrower-management pass).
    pub fn for_each_book_position(
        &mut self,
        oracle: &PriceOracle,
        visit: &mut dyn FnMut(&Position),
    ) {
        let (book, view) = self.split_book();
        book.for_each_book_position(&view, oracle, visit);
    }

    /// Liquidatable accounts with fresh cached snapshots, in address order.
    pub fn cached_liquidatable_accounts(&mut self, oracle: &PriceOracle) -> Vec<Address> {
        let (book, view) = self.split_book();
        book.liquidatable_accounts(&view, oracle)
    }

    /// Visit the at-risk slice of the book — health factor below `rescue` or
    /// above `releverage` — through the conservative band index: accounts
    /// whose certified envelope holds are skipped without re-valuation.
    /// Exactly equivalent to filtering
    /// [`for_each_book_position`](FixedSpreadProtocol::for_each_book_position)
    /// by health factor.
    pub fn for_each_at_risk(
        &mut self,
        oracle: &PriceOracle,
        rescue: Wad,
        releverage: Wad,
        visit: &mut dyn FnMut(&Position),
    ) {
        let (book, view) = self.split_book();
        book.for_each_at_risk(&view, oracle, rescue, releverage, visit);
    }

    /// Running aggregate totals over the observable book (volume sampling).
    pub fn book_totals(&mut self, oracle: &PriceOracle) -> BookTotals {
        let (book, view) = self.split_book();
        book.totals(&view, oracle)
    }

    /// Freeze the observable book into an immutable, index-carrying
    /// [`BookSnapshot`](crate::snapshot::BookSnapshot) for concurrent
    /// readers.
    pub fn book_snapshot(&mut self, oracle: &PriceOracle) -> crate::snapshot::BookSnapshot {
        let (book, view) = self.split_book();
        book.snapshot(&view, oracle)
    }

    /// The cached snapshot of one account (exact after any cached query).
    pub fn cached_position(&self, account: Address) -> Option<&Position> {
        self.book.cached_position(account)
    }

    /// Cache-maintenance counters (scale benchmarks, no-op-tick tests).
    pub fn book_stats(&self) -> BookStats {
        self.book.stats()
    }

    /// Worker threads the book may fan re-valuation across (see
    /// [`PositionBook::set_workers`]).
    pub fn set_book_workers(&mut self, workers: usize) {
        self.book.set_workers(workers);
    }

    /// Total USD value of collateral deposited in the pool (running total
    /// maintained by the incremental book).
    pub fn total_collateral_value(&mut self, oracle: &PriceOracle) -> Wad {
        let (book, view) = self.split_book();
        book.all_totals(&view, oracle).0
    }

    /// Total USD value of outstanding debt (running total maintained by the
    /// incremental book).
    pub fn total_debt_value(&mut self, oracle: &PriceOracle) -> Wad {
        let (book, view) = self.split_book();
        book.all_totals(&view, oracle).1
    }

    // ------------------------------------------------------------- liquidation

    /// The public `liquidationCall`: repay part of `borrower`'s `debt_token`
    /// debt and seize `collateral_token` collateral at the market's spread.
    ///
    /// A repayment above the close-factor cap is rejected with
    /// [`ProtocolError::ExceedsCloseFactor`]; within the cap, the repayment
    /// shrinks only when the targeted collateral market cannot cover the
    /// claim, and the amount actually repaid is returned in the receipt.
    /// Emits a [`ChainEvent::Liquidation`].
    #[allow(clippy::too_many_arguments)]
    pub fn liquidation_call(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        liquidator: Address,
        borrower: Address,
        debt_token: Token,
        collateral_token: Token,
        repay_amount: Wad,
        used_flash_loan: bool,
    ) -> Result<LiquidationReceipt, ProtocolError> {
        if self.config.one_liquidation_per_block
            && self.last_liquidation_block.get(&borrower) == Some(&block)
        {
            return Err(ProtocolError::AlreadyLiquidatedThisBlock);
        }
        // Accrue interest on the debt market before measuring anything.
        {
            let index_moved = {
                let market = self.market_mut(debt_token)?;
                market.accrue(block)
            };
            if index_moved {
                self.book.note_index_change(debt_token);
            }
        }
        if !self.markets.contains_key(&collateral_token) {
            return Err(ProtocolError::MarketNotListed(collateral_token));
        }
        if !self.is_liquidatable(oracle, borrower) {
            return Err(ProtocolError::NotLiquidatable(borrower));
        }
        let outstanding = self.debt_of(borrower, debt_token);
        if outstanding.is_zero() {
            return Err(ProtocolError::NoDebtInToken(debt_token));
        }
        let held_collateral = self.collateral_of(borrower, collateral_token);
        if held_collateral.is_zero() {
            return Err(ProtocolError::NoCollateralInToken(collateral_token));
        }

        let max_repay = outstanding
            .checked_mul(self.config.close_factor)
            .map_err(|_| ProtocolError::Arithmetic)?;
        // A repayment above the close-factor cap (or an empty one) is a
        // typed error, not a silent clamp: the caller's claim calculation
        // would otherwise diverge from what actually settles. Requests within
        // interest-index rounding dust of the cap (the configured
        // `debt_dust`) are the "repay exactly half the nominal borrow"
        // pattern and clamp.
        if repay_amount > max_repay.saturating_add(self.config.debt_dust) || repay_amount.is_zero()
        {
            return Err(ProtocolError::ExceedsCloseFactor {
                max_repay,
                requested: repay_amount,
            });
        }
        let mut repay = repay_amount.min(max_repay);

        let debt_price = Self::price(oracle, debt_token)?;
        let collateral_price = Self::price(oracle, collateral_token)?;
        let spread = self
            .markets
            .get(&collateral_token)
            .map(|m| m.liquidation_spread)
            .unwrap_or(Wad::ZERO);

        // Collateral to claim (Eq. 1), in token units.
        let claim_value = |repay: Wad| -> Result<Wad, ProtocolError> {
            repay
                .checked_mul(debt_price)
                .and_then(|v| v.checked_mul(Wad::ONE.saturating_add(spread)))
                .map_err(|_| ProtocolError::Arithmetic)
        };
        let mut claim_usd = claim_value(repay)?;
        let mut collateral_tokens = claim_usd
            .checked_div(collateral_price)
            .map_err(|_| ProtocolError::Arithmetic)?;
        if collateral_tokens > held_collateral {
            // Not enough collateral in this market: shrink the repayment so
            // the claim exactly exhausts the collateral.
            collateral_tokens = held_collateral;
            claim_usd = held_collateral
                .checked_mul(collateral_price)
                .map_err(|_| ProtocolError::Arithmetic)?;
            let repay_usd = claim_usd
                .checked_div(Wad::ONE.saturating_add(spread))
                .map_err(|_| ProtocolError::Arithmetic)?;
            repay = repay_usd
                .checked_div(debt_price)
                .map_err(|_| ProtocolError::Arithmetic)?;
        }

        // Settle: liquidator pays the debt into the pool…
        ledger.transfer(liquidator, self.pool_address, debt_token, repay)?;
        self.reduce_debt(borrower, debt_token, repay);
        {
            let market = self.market_mut(debt_token)?;
            market.available_liquidity = market.available_liquidity.saturating_add(repay);
        }
        // …and receives the discounted collateral out of the pool.
        ledger.transfer(
            self.pool_address,
            liquidator,
            collateral_token,
            collateral_tokens,
        )?;
        self.adjust_collateral(borrower, collateral_token, collateral_tokens, false);
        {
            let market = self.market_mut(collateral_token)?;
            market.available_liquidity =
                market.available_liquidity.saturating_sub(collateral_tokens);
        }
        self.book.mark_dirty(borrower);
        self.last_liquidation_block.insert(borrower, block);

        let debt_repaid_usd = repay
            .checked_mul(debt_price)
            .map_err(|_| ProtocolError::Arithmetic)?;
        let receipt = LiquidationReceipt {
            debt_repaid: repay,
            debt_repaid_usd,
            collateral_seized: collateral_tokens,
            collateral_seized_usd: claim_usd,
            health_factor_after: self
                .position(oracle, borrower)
                .and_then(|p| p.health_factor()),
        };
        events.push(ChainEvent::Liquidation(LiquidationEvent {
            platform: self.config.platform,
            liquidator,
            borrower,
            debt_token,
            debt_repaid: receipt.debt_repaid,
            debt_repaid_usd: receipt.debt_repaid_usd,
            collateral_token,
            collateral_seized: receipt.collateral_seized,
            collateral_seized_usd: receipt.collateral_seized_usd,
            used_flash_loan,
        }));
        Ok(receipt)
    }

    /// dYdX-style insurance fund: write off the debt of under-collateralized
    /// positions so that no Type I bad debt remains on the books (§4.4.2
    /// observes dYdX has none). Returns the USD value written off.
    pub fn write_off_insolvent_positions(&mut self, oracle: &PriceOracle) -> Wad {
        if !self.config.insurance_fund {
            return Wad::ZERO;
        }
        let insolvent: Vec<Address> = self
            .positions(oracle)
            .into_iter()
            .filter(|p| p.is_under_collateralized())
            .map(|p| p.owner)
            .collect();
        let mut written_off = Wad::ZERO;
        for address in insolvent {
            if let Some(position) = self.position(oracle, address) {
                written_off = written_off.saturating_add(position.total_debt_value());
            }
            if let Some(account) = self.accounts.get_mut(&address) {
                let debts: Vec<(Token, Wad)> =
                    account.scaled_debt.iter().map(|(t, v)| (*t, *v)).collect();
                for (token, scaled) in debts {
                    account.scaled_debt.insert(token, Wad::ZERO);
                    if let Some(market) = self.markets.get_mut(&token) {
                        market.total_scaled_debt = market.total_scaled_debt.saturating_sub(scaled);
                    }
                }
            }
            self.book.mark_dirty(address);
        }
        self.insurance_written_off = self.insurance_written_off.saturating_add(written_off);
        written_off
    }

    /// Number of accounts with a non-empty position (diagnostics).
    pub fn account_count(&self) -> usize {
        self.accounts.values().filter(|a| !a.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_oracle::OracleConfig;

    fn setup() -> (FixedSpreadProtocol, Ledger, PriceOracle, Vec<ChainEvent>) {
        let mut protocol = FixedSpreadProtocol::new(FixedSpreadConfig {
            platform: Platform::Compound,
            close_factor: Wad::from_f64(0.5),
            one_liquidation_per_block: false,
            insurance_fund: false,
            debt_dust: DEFAULT_DEBT_DUST,
        });
        protocol.list_market(
            Token::ETH,
            RiskParams::new(0.8, 0.10, 0.5),
            InterestRateModel::default(),
            0,
        );
        protocol.list_market(
            Token::USDC,
            RiskParams::new(0.85, 0.05, 0.5),
            InterestRateModel::stablecoin(),
            0,
        );
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
        oracle.set_price(0, Token::USDC, Wad::ONE);
        let mut ledger = Ledger::new();
        // Seed the pool with USDC lender liquidity.
        let lender = Address::from_seed(1_000);
        ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
        let mut events = Vec::new();
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                lender,
                Token::USDC,
                Wad::from_int(1_000_000),
            )
            .unwrap();
        (protocol, ledger, oracle, events)
    }

    fn paper_borrower(
        protocol: &mut FixedSpreadProtocol,
        ledger: &mut Ledger,
        oracle: &PriceOracle,
        events: &mut Vec<ChainEvent>,
    ) -> Address {
        // §3.2.2 walk-through: deposit 3 ETH at 3,500, borrow 8,400 USDC.
        let borrower = Address::from_seed(7);
        ledger.mint(borrower, Token::ETH, Wad::from_int(3));
        protocol
            .deposit(ledger, events, borrower, Token::ETH, Wad::from_int(3))
            .unwrap();
        protocol
            .borrow(
                ledger,
                events,
                oracle,
                1,
                borrower,
                Token::USDC,
                Wad::from_int(8_400),
            )
            .unwrap();
        borrower
    }

    #[test]
    fn deposit_and_borrow_follow_the_paper_walkthrough() {
        let (mut protocol, mut ledger, oracle, mut events) = setup();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        let position = protocol.position(&oracle, borrower).unwrap();
        assert_eq!(position.total_collateral_value(), Wad::from_int(10_500));
        assert_eq!(position.borrowing_capacity(), Wad::from_int(8_400));
        assert!(!position.is_liquidatable());
        assert_eq!(ledger.balance(borrower, Token::USDC), Wad::from_int(8_400));
    }

    #[test]
    fn borrow_beyond_capacity_is_rejected() {
        let (mut protocol, mut ledger, oracle, mut events) = setup();
        let borrower = Address::from_seed(8);
        ledger.mint(borrower, Token::ETH, Wad::from_int(1));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                borrower,
                Token::ETH,
                Wad::from_int(1),
            )
            .unwrap();
        // Capacity = 3,500 * 0.8 = 2,800 USDC.
        let err = protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                borrower,
                Token::USDC,
                Wad::from_int(3_000),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::ExceedsBorrowingCapacity { .. }
        ));
        assert!(protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                borrower,
                Token::USDC,
                Wad::from_int(2_500)
            )
            .is_ok());
    }

    #[test]
    fn healthy_position_cannot_be_liquidated() {
        let (mut protocol, mut ledger, oracle, mut events) = setup();
        // A comfortably healthy borrower (capacity 8,400, debt 7,000).
        let borrower = Address::from_seed(7);
        ledger.mint(borrower, Token::ETH, Wad::from_int(3));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                borrower,
                Token::ETH,
                Wad::from_int(3),
            )
            .unwrap();
        protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                borrower,
                Token::USDC,
                Wad::from_int(7_000),
            )
            .unwrap();
        let liquidator = Address::from_seed(99);
        ledger.mint(liquidator, Token::USDC, Wad::from_int(10_000));
        let err = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                2,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                Wad::from_int(4_200),
                false,
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::NotLiquidatable(_)));
    }

    #[test]
    fn liquidation_matches_paper_walkthrough_numbers() {
        let (mut protocol, mut ledger, mut oracle, mut events) = setup();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        // ETH declines to 3,300 USD → HF ≈ 0.94.
        oracle.set_price(2, Token::ETH, Wad::from_int(3_300));
        assert!(protocol.is_liquidatable(&oracle, borrower));

        let liquidator = Address::from_seed(99);
        ledger.mint(liquidator, Token::USDC, Wad::from_int(10_000));
        let receipt = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                2,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                Wad::from_int(4_200),
                false,
            )
            .unwrap();
        // Paper: repay 4,200 USDC, receive 4,620 USD of ETH, profit 420 USD.
        assert_eq!(receipt.debt_repaid, Wad::from_int(4_200));
        assert_eq!(receipt.debt_repaid_usd, Wad::from_int(4_200));
        assert_eq!(receipt.collateral_seized_usd, Wad::from_int(4_620));
        assert_eq!(receipt.gross_profit_usd(), Wad::from_int(420));
        // Collateral seized in ETH terms: 4,620 / 3,300 = 1.4 ETH (up to
        // fixed-point rounding in the price division).
        assert!(
            receipt
                .collateral_seized
                .abs_diff(Wad::from_f64(1.4))
                .to_f64()
                < 1e-9
        );
        // The liquidation event was emitted.
        assert!(events
            .iter()
            .any(|e| matches!(e, ChainEvent::Liquidation(_))));
        // The health factor improved.
        assert!(receipt.health_factor_after.unwrap() > Wad::from_f64(0.94));
    }

    #[test]
    fn repay_above_close_factor_is_rejected() {
        let (mut protocol, mut ledger, mut oracle, mut events) = setup();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        oracle.set_price(2, Token::ETH, Wad::from_int(3_300));
        let liquidator = Address::from_seed(99);
        ledger.mint(liquidator, Token::USDC, Wad::from_int(20_000));
        // Close factor 50%: requesting the full 8,400 debt is a typed error,
        // not a silent clamp.
        let err = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                2,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                Wad::from_int(8_400),
                false,
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::ExceedsCloseFactor { .. }));
        // Repaying exactly the cap settles.
        protocol.accrue_all(2);
        let max_repay = protocol
            .debt_of(borrower, Token::USDC)
            .checked_mul(protocol.config().close_factor)
            .unwrap();
        let receipt = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                2,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                max_repay,
                false,
            )
            .unwrap();
        assert_eq!(receipt.debt_repaid, max_repay);
        // ~4,200 plus the interest accrued between borrow and liquidation.
        assert!(receipt.debt_repaid >= Wad::from_int(4_200));
        assert!(receipt.debt_repaid < Wad::from_int(4_201));
    }

    #[test]
    fn one_liquidation_per_block_mitigation() {
        let (mut protocol, mut ledger, mut oracle, mut events) = setup();
        protocol.set_one_liquidation_per_block(true);
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        oracle.set_price(2, Token::ETH, Wad::from_int(3_300));
        let liquidator = Address::from_seed(99);
        ledger.mint(liquidator, Token::USDC, Wad::from_int(20_000));
        protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                2,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                Wad::from_int(1_000),
                false,
            )
            .unwrap();
        // Second liquidation in the same block is rejected…
        let err = protocol
            .liquidation_call(
                &mut ledger,
                &mut events,
                &oracle,
                2,
                liquidator,
                borrower,
                Token::USDC,
                Token::ETH,
                Wad::from_int(1_000),
                false,
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::AlreadyLiquidatedThisBlock));
        // …but a later block works (if still unhealthy).
        if protocol.is_liquidatable(&oracle, borrower) {
            assert!(protocol
                .liquidation_call(
                    &mut ledger,
                    &mut events,
                    &oracle,
                    3,
                    liquidator,
                    borrower,
                    Token::USDC,
                    Token::ETH,
                    Wad::from_int(1_000),
                    false,
                )
                .is_ok());
        }
    }

    #[test]
    fn withdraw_that_would_unhealth_position_is_rejected() {
        let (mut protocol, mut ledger, oracle, mut events) = setup();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        let err = protocol
            .withdraw(&mut ledger, &oracle, borrower, Token::ETH, Wad::from_int(2))
            .unwrap_err();
        assert!(matches!(err, ProtocolError::WouldBecomeUnhealthy));
        // The collateral is untouched after the failed attempt.
        assert_eq!(
            protocol.collateral_of(borrower, Token::ETH),
            Wad::from_int(3)
        );
    }

    #[test]
    fn interest_accrues_on_debt() {
        let (mut protocol, mut ledger, oracle, mut events) = setup();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        let debt_before = protocol.debt_of(borrower, Token::USDC);
        protocol.accrue_all(2_336_000); // one year later
        let debt_after = protocol.debt_of(borrower, Token::USDC);
        assert!(debt_after > debt_before);
        // The USDC pool is almost idle (0.84% utilization), so the rate is low.
        assert!(debt_after < debt_before.checked_mul(Wad::from_f64(1.10)).unwrap());
    }

    #[test]
    fn insurance_fund_writes_off_insolvent_positions() {
        let (mut protocol, mut ledger, mut oracle, mut events) = setup();
        let mut config = protocol.config();
        config.insurance_fund = true;
        protocol = {
            let mut p = FixedSpreadProtocol::new(config);
            p.list_market(
                Token::ETH,
                RiskParams::new(0.8, 0.10, 0.5),
                InterestRateModel::default(),
                0,
            );
            p.list_market(
                Token::USDC,
                RiskParams::new(0.85, 0.05, 0.5),
                InterestRateModel::stablecoin(),
                0,
            );
            p
        };
        let lender = Address::from_seed(1_000);
        ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                lender,
                Token::USDC,
                Wad::from_int(1_000_000),
            )
            .unwrap();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        // Crash ETH so hard the position is under-collateralized.
        oracle.set_price(2, Token::ETH, Wad::from_int(2_000));
        let position = protocol.position(&oracle, borrower).unwrap();
        assert!(position.is_under_collateralized());
        let written_off = protocol.write_off_insolvent_positions(&oracle);
        assert!(!written_off.is_zero());
        assert_eq!(protocol.debt_of(borrower, Token::USDC), Wad::ZERO);
        // Without the insurance fund flag nothing happens.
        let (mut protocol2, mut ledger2, mut oracle2, mut events2) = setup();
        let borrower2 = paper_borrower(&mut protocol2, &mut ledger2, &oracle2, &mut events2);
        oracle2.set_price(2, Token::ETH, Wad::from_int(2_000));
        assert_eq!(protocol2.write_off_insolvent_positions(&oracle2), Wad::ZERO);
        assert!(!protocol2.debt_of(borrower2, Token::USDC).is_zero());
    }

    #[test]
    fn positions_snapshot_covers_all_accounts() {
        let (mut protocol, mut ledger, oracle, mut events) = setup();
        let _ = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        let positions = protocol.positions(&oracle);
        // The lender (collateral only) and the borrower.
        assert_eq!(positions.len(), 2);
        assert_eq!(protocol.account_count(), 2);
        assert!(protocol.total_collateral_value(&oracle) > Wad::from_int(1_000_000));
        assert_eq!(protocol.liquidatable_accounts(&oracle).len(), 0);
    }

    /// The incremental book serves byte-identical snapshots to the
    /// from-scratch rebuild, and a tick where nothing moved re-values
    /// nothing (the no-op-tick acceptance gate).
    #[test]
    fn cached_book_matches_scratch_and_skips_noop_ticks() {
        let (mut protocol, mut ledger, mut oracle, mut events) = setup();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);

        let cached = protocol.cached_book(&oracle);
        let scratch: Vec<Position> = protocol
            .positions(&oracle)
            .into_iter()
            .filter(|p| !p.total_debt_value().is_zero())
            .collect();
        assert_eq!(cached, scratch);

        // No price moved, no op ran, no interest accrued: discovery and the
        // book answer from cache without a single re-valuation.
        let before = protocol.book_stats().revaluations;
        assert!(protocol.cached_liquidatable_accounts(&oracle).is_empty());
        let again = protocol.cached_book(&oracle);
        assert_eq!(protocol.book_stats().revaluations, before);
        assert_eq!(again, cached);

        // A crash re-flags exactly what the scratch filter flags…
        oracle.set_price(2, Token::ETH, Wad::from_int(3_300));
        let cached_flagged = protocol.cached_liquidatable_accounts(&oracle);
        let scratch_flagged = protocol.liquidatable_accounts(&oracle);
        assert_eq!(cached_flagged, scratch_flagged);
        assert_eq!(cached_flagged, vec![borrower]);

        // …and the running totals equal the legacy folds.
        let totals = protocol.book_totals(&oracle);
        let scratch_book: Vec<Position> = protocol
            .positions(&oracle)
            .into_iter()
            .filter(|p| !p.total_debt_value().is_zero())
            .collect();
        let fold = scratch_book
            .iter()
            .map(|p| p.total_collateral_value())
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
        assert_eq!(totals.collateral_usd, fold);
        assert_eq!(totals.open_positions as usize, scratch_book.len());
        let all = protocol
            .positions(&oracle)
            .iter()
            .map(|p| p.total_collateral_value())
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
        assert_eq!(protocol.total_collateral_value(&oracle), all);
    }

    /// Re-listing a market replaces risk parameters of existing positions,
    /// so it must invalidate the whole cache.
    #[test]
    fn relisting_a_market_invalidates_cached_valuations() {
        let (mut protocol, mut ledger, oracle, mut events) = setup();
        let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
        assert!(protocol.cached_liquidatable_accounts(&oracle).is_empty());
        // Governance tightens the ETH liquidation threshold to 50 %.
        protocol.list_market(
            Token::ETH,
            RiskParams::new(0.5, 0.10, 0.5),
            InterestRateModel::default(),
            0,
        );
        let cached = protocol.cached_liquidatable_accounts(&oracle);
        let scratch = protocol.liquidatable_accounts(&oracle);
        assert_eq!(cached, scratch);
        assert_eq!(cached, vec![borrower]);
        assert_eq!(protocol.cached_book(&oracle), {
            let filtered: Vec<Position> = protocol
                .positions(&oracle)
                .into_iter()
                .filter(|p| !p.total_debt_value().is_zero())
                .collect();
            filtered
        });
    }

    /// The `debt_dust` knob controls the residual write-off threshold that
    /// used to be a hard-wired constant.
    #[test]
    fn debt_dust_knob_controls_writeoff_threshold() {
        // A deliberately huge dust tolerance of one whole token.
        let mut config = FixedSpreadConfig {
            platform: Platform::Compound,
            close_factor: Wad::from_f64(0.5),
            one_liquidation_per_block: false,
            insurance_fund: false,
            debt_dust: Wad::from_int(1),
        };
        let build = |config: FixedSpreadConfig| {
            let mut protocol = FixedSpreadProtocol::new(config);
            protocol.list_market(
                Token::ETH,
                RiskParams::new(0.8, 0.10, 0.5),
                InterestRateModel::default(),
                0,
            );
            protocol.list_market(
                Token::USDC,
                RiskParams::new(0.85, 0.05, 0.5),
                InterestRateModel::stablecoin(),
                0,
            );
            protocol
        };
        let run = |mut protocol: FixedSpreadProtocol| {
            let mut oracle = PriceOracle::new(OracleConfig::every_update());
            oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
            oracle.set_price(0, Token::USDC, Wad::ONE);
            let mut ledger = Ledger::new();
            let mut events = Vec::new();
            let lender = Address::from_seed(1_000);
            ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
            protocol
                .deposit(
                    &mut ledger,
                    &mut events,
                    lender,
                    Token::USDC,
                    Wad::from_int(1_000_000),
                )
                .unwrap();
            let borrower = paper_borrower(&mut protocol, &mut ledger, &oracle, &mut events);
            // Repay all but half a USDC: residue 0.5 tokens.
            let outstanding = protocol.debt_of(borrower, Token::USDC);
            let residue = Wad::from_f64(0.5);
            protocol
                .repay(
                    &mut ledger,
                    &mut events,
                    1,
                    borrower,
                    Token::USDC,
                    outstanding.saturating_sub(residue),
                )
                .unwrap();
            protocol.debt_of(borrower, Token::USDC)
        };
        // One-token dust: the 0.5-token residue is written off as dust.
        assert_eq!(run(build(config)), Wad::ZERO);
        // Default dust (10⁻¹⁵ tokens): the residue survives.
        config.debt_dust = DEFAULT_DEBT_DUST;
        let remaining = run(build(config));
        assert!(remaining > Wad::from_f64(0.49) && remaining < Wad::from_f64(0.51));
    }
}
