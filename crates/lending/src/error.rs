//! Protocol error type shared by all lending implementations.

use core::fmt;

use defi_types::{Address, Token, Wad};

/// Errors returned by protocol operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The market for this token is not listed on the platform.
    MarketNotListed(Token),
    /// The pool does not hold enough liquidity to serve the borrow/withdraw.
    InsufficientLiquidity {
        /// Token requested.
        token: Token,
        /// Amount requested.
        requested: Wad,
        /// Amount available in the pool.
        available: Wad,
    },
    /// The operation would push the account's health factor below 1.
    WouldBecomeUnhealthy,
    /// The account's borrowing capacity does not cover the requested borrow.
    ExceedsBorrowingCapacity {
        /// Capacity in USD.
        capacity: Wad,
        /// Debt (including the new borrow) in USD.
        required: Wad,
    },
    /// The position is not liquidatable (health factor ≥ 1).
    NotLiquidatable(Address),
    /// The repayment exceeds the account's outstanding debt in the token
    /// (repay exactly the outstanding amount to close the debt).
    RepayExceedsOutstanding {
        /// Outstanding debt (with accrued interest).
        outstanding: Wad,
        /// Requested repayment.
        requested: Wad,
    },
    /// The liquidation repay amount exceeds the close factor limit.
    ExceedsCloseFactor {
        /// Maximum repayable under the close factor.
        max_repay: Wad,
        /// Requested repayment.
        requested: Wad,
    },
    /// A position may only be liquidated once per block (the §5.2.3
    /// mitigation) and it has already been liquidated in this block.
    AlreadyLiquidatedThisBlock,
    /// The borrower has no debt in the requested token.
    NoDebtInToken(Token),
    /// The borrower has no collateral in the requested token.
    NoCollateralInToken(Token),
    /// A ledger transfer failed (typically the caller lacks balance).
    Ledger(String),
    /// The referenced auction does not exist.
    UnknownAuction(u64),
    /// The bid does not beat the current best bid by the minimum increment.
    BidTooLow,
    /// The auction has already terminated (length or bid-duration condition).
    AuctionTerminated,
    /// The auction cannot be finalised yet.
    AuctionStillRunning,
    /// The auction was already finalised.
    AuctionAlreadyFinalized,
    /// The oracle has no price for a token the operation needs to value.
    MissingPrice(Token),
    /// A CDP for this account does not exist.
    UnknownCdp(Address),
    /// The flash loan was not repaid with its fee by the end of the closure.
    FlashLoanNotRepaid,
    /// Arithmetic failure (overflow/underflow) inside protocol accounting.
    Arithmetic,
    /// A [`crate::protocol::LiquidationRequest`] variant was routed to a
    /// protocol whose mechanism cannot execute it (e.g. an auction bid sent
    /// to a fixed-spread pool).
    UnsupportedLiquidationRequest {
        /// The platform that rejected the request.
        platform: defi_types::Platform,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::MarketNotListed(t) => write!(f, "market not listed: {t}"),
            ProtocolError::InsufficientLiquidity {
                token,
                requested,
                available,
            } => write!(
                f,
                "insufficient {token} liquidity: requested {requested}, available {available}"
            ),
            ProtocolError::WouldBecomeUnhealthy => {
                write!(f, "operation would make the position unhealthy")
            }
            ProtocolError::ExceedsBorrowingCapacity { capacity, required } => write!(
                f,
                "borrow exceeds capacity: capacity {capacity}, required {required}"
            ),
            ProtocolError::NotLiquidatable(a) => {
                write!(f, "position {} is not liquidatable", a.short())
            }
            ProtocolError::RepayExceedsOutstanding {
                outstanding,
                requested,
            } => write!(
                f,
                "repay {requested} exceeds the outstanding debt {outstanding}"
            ),
            ProtocolError::ExceedsCloseFactor {
                max_repay,
                requested,
            } => write!(
                f,
                "repay {requested} exceeds close-factor limit {max_repay}"
            ),
            ProtocolError::AlreadyLiquidatedThisBlock => {
                write!(f, "position already liquidated in this block")
            }
            ProtocolError::NoDebtInToken(t) => write!(f, "borrower owes no {t}"),
            ProtocolError::NoCollateralInToken(t) => write!(f, "borrower holds no {t} collateral"),
            ProtocolError::Ledger(msg) => write!(f, "ledger error: {msg}"),
            ProtocolError::UnknownAuction(id) => write!(f, "unknown auction {id}"),
            ProtocolError::BidTooLow => write!(f, "bid does not beat the current best bid"),
            ProtocolError::AuctionTerminated => write!(f, "auction has terminated"),
            ProtocolError::AuctionStillRunning => write!(f, "auction cannot be finalised yet"),
            ProtocolError::AuctionAlreadyFinalized => write!(f, "auction already finalised"),
            ProtocolError::MissingPrice(t) => write!(f, "no oracle price for {t}"),
            ProtocolError::UnknownCdp(a) => write!(f, "no CDP for {}", a.short()),
            ProtocolError::FlashLoanNotRepaid => write!(f, "flash loan not repaid with fee"),
            ProtocolError::Arithmetic => write!(f, "arithmetic error in protocol accounting"),
            ProtocolError::UnsupportedLiquidationRequest { platform } => write!(
                f,
                "liquidation request not supported by {}'s mechanism",
                platform.name()
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<defi_chain::LedgerError> for ProtocolError {
    fn from(err: defi_chain::LedgerError) -> Self {
        ProtocolError::Ledger(err.to_string())
    }
}
