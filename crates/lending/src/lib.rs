//! # defi-lending
//!
//! Rust re-implementations of the four lending protocols the paper studies —
//! the substrate the measurement pipeline observes.
//!
//! * [`fixed_spread`] — a generic **atomic fixed-spread** lending pool
//!   (deposit / borrow / repay / `liquidation_call`) parameterised by
//!   per-market risk parameters and a protocol-wide close factor. Aave V1,
//!   Aave V2, Compound and dYdX are instances of this engine (see
//!   [`platforms`]), differing in market listings, spreads, close factor and
//!   platform-specific behaviour (dYdX's insurance fund writes off Type I bad
//!   debt, §4.4.2).
//! * [`maker`] — MakerDAO: collateralized debt positions (CDPs) minting DAI
//!   and the two-phase **tend–dent auction** liquidation (§3.2.1, Figure 2).
//! * [`interest`] — utilization-driven interest-rate model with Ray-precision
//!   index accrual ("the interest rate of an Aave pool is decided
//!   algorithmically", §3.3).
//! * [`flashloan`] — Aave/dYdX-style flash-loan pools used by liquidators to
//!   avoid holding inventory (§4.4.4).
//! * [`protocol`] — the unified, object-safe [`LendingProtocol`] trait both
//!   mechanisms implement: one vocabulary for markets, positions,
//!   liquidation-opportunity discovery and mechanism-specific execution, so
//!   the engine can hold all five platforms behind `Box<dyn LendingProtocol>`.
//! * [`book`] — the incremental [`PositionBook`] every implementation owns: a
//!   dirty-tracked valuation cache (invalidated by account mutations, borrow
//!   index accrual and oracle write epochs) plus a critical-price liquidation
//!   index that turns discovery into a per-token range scan.
//!
//! All balance movements settle through the shared
//! [`Ledger`](defi_chain::Ledger); protocols emit
//! [`ChainEvent`](defi_chain::ChainEvent)s describing liquidations, auctions
//! and flash loans, which is exactly the surface the analytics crate indexes.

#![forbid(unsafe_code)]

pub mod book;
pub mod error;
pub mod fixed_spread;
pub mod flashloan;
pub mod interest;
pub mod maker;
pub mod platforms;
pub mod protocol;
pub mod snapshot;

pub use book::{
    BookSource, BookStats, BookTotals, HfEnvelope, PositionBook, BOOK_SHARD_COUNT,
    RELEVERAGE_BAND_HF, RESCUE_BAND_HF,
};
pub use error::ProtocolError;
pub use fixed_spread::{
    derive_hf_envelope, FixedSpreadConfig, FixedSpreadProtocol, LiquidationReceipt, Market,
    DEFAULT_DEBT_DUST,
};
pub use flashloan::FlashLoanPool;
pub use interest::InterestRateModel;
pub use maker::{Auction, AuctionOutcome, Cdp, IlkParams, MakerProtocol};
pub use platforms::{aave_v1, aave_v2, compound, dydx, maker_protocol, paper_protocols};
pub use protocol::{
    AuctionSnapshot, BidSnapshot, LendingProtocol, LiquidationExecution, LiquidationRequest,
    MechanismKind, Opportunity,
};
pub use snapshot::{
    BookSnapshot, BreachPaths, BreachReport, ShardSnapshot, SnapshotBand, SnapshotEntry,
};
