//! Flash-loan pools (§2.2.2, §4.4.4).
//!
//! "A flash loan represents a loan that is taken and repaid within a single
//! transaction. … If the loan plus the required interests are not repaid, the
//! whole transaction is reverted."
//!
//! [`FlashLoanPool::flash_loan`] lends the requested amount to the borrower,
//! runs the caller-supplied closure (the liquidation strategy), and then
//! verifies that the pool got its principal plus fee back — returning an
//! error otherwise. When the flash loan is executed inside
//! [`Blockchain::execute`](defi_chain::Blockchain::execute), that error makes
//! the whole transaction revert, which is precisely the real-world semantics
//! liquidators rely on: an unprofitable flash-loan liquidation simply never
//! happens.

use serde::{Deserialize, Serialize};

use defi_chain::{ChainEvent, Ledger};
use defi_oracle::PriceOracle;
use defi_types::{Address, Platform, Token, Wad};

use crate::error::ProtocolError;

/// A flash-loan pool.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlashLoanPool {
    /// The platform providing the pool (Aave V1, Aave V2 or dYdX in the paper).
    pub platform: Platform,
    /// The ledger account holding the pool's liquidity.
    pub pool_address: Address,
    /// Flash-loan fee in basis points (Aave charges 9 bps; dYdX effectively 0,
    /// which the paper notes makes it the more popular source, Table 4).
    pub fee_bps: u32,
}

impl FlashLoanPool {
    /// Create a pool for a platform with its historical fee.
    pub fn for_platform(platform: Platform) -> Self {
        let fee_bps = match platform {
            Platform::AaveV1 | Platform::AaveV2 => 9,
            Platform::DyDx => 0,
            _ => 9,
        };
        FlashLoanPool {
            platform,
            pool_address: Address::from_label(&format!("{}-flash-pool", platform.name())),
            fee_bps,
        }
    }

    /// Seed the pool's lendable liquidity (scenario setup).
    pub fn seed(&self, ledger: &mut Ledger, token: Token, amount: Wad) {
        ledger.mint(self.pool_address, token, amount);
    }

    /// Liquidity currently available for flash loans.
    pub fn available(&self, ledger: &Ledger, token: Token) -> Wad {
        ledger.balance(self.pool_address, token)
    }

    /// The fee charged on a loan of `amount`.
    pub fn fee(&self, amount: Wad) -> Wad {
        amount.bps(self.fee_bps)
    }

    /// Borrow `amount` of `token`, run `strategy`, and require repayment plus
    /// fee. Emits a [`ChainEvent::FlashLoan`] on success.
    ///
    /// The closure receives the ledger so it can move the borrowed funds
    /// around (repay debt, swap collateral, …). Any error from the closure,
    /// or a shortfall at repayment time, aborts the flash loan.
    #[allow(clippy::too_many_arguments)]
    pub fn flash_loan<F>(
        &self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        borrower: Address,
        token: Token,
        amount: Wad,
        strategy: F,
    ) -> Result<(), ProtocolError>
    where
        F: FnOnce(&mut Ledger, &mut Vec<ChainEvent>) -> Result<(), ProtocolError>,
    {
        let available = self.available(ledger, token);
        if available < amount {
            return Err(ProtocolError::InsufficientLiquidity {
                token,
                requested: amount,
                available,
            });
        }
        let pool_balance_before = available;
        let fee = self.fee(amount);

        // Hand out the loan.
        ledger.transfer(self.pool_address, borrower, token, amount)?;

        // Run the borrower's strategy.
        strategy(ledger, events)?;

        // The borrower must return principal + fee.
        let repayment = amount.saturating_add(fee);
        let borrower_balance = ledger.balance(borrower, token);
        if borrower_balance < repayment {
            return Err(ProtocolError::FlashLoanNotRepaid);
        }
        ledger.transfer(borrower, self.pool_address, token, repayment)?;

        // Invariant: the pool never ends poorer than it started.
        debug_assert!(ledger.balance(self.pool_address, token) >= pool_balance_before);

        events.push(ChainEvent::FlashLoan {
            pool: self.platform,
            borrower,
            token,
            amount,
            amount_usd: oracle.value_of(token, amount),
            fee,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_oracle::OracleConfig;

    fn setup() -> (FlashLoanPool, Ledger, PriceOracle, Vec<ChainEvent>) {
        let pool = FlashLoanPool::for_platform(Platform::DyDx);
        let mut ledger = Ledger::new();
        pool.seed(&mut ledger, Token::USDC, Wad::from_int(1_000_000));
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::USDC, Wad::ONE);
        (pool, ledger, oracle, Vec::new())
    }

    #[test]
    fn successful_flash_loan_charges_fee_and_emits_event() {
        let pool = FlashLoanPool::for_platform(Platform::AaveV2);
        let mut ledger = Ledger::new();
        pool.seed(&mut ledger, Token::USDC, Wad::from_int(1_000_000));
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::USDC, Wad::ONE);
        let mut events = Vec::new();
        let borrower = Address::from_seed(5);
        // Give the borrower just enough external profit to cover the fee.
        ledger.mint(borrower, Token::USDC, Wad::from_int(100));

        let before = pool.available(&ledger, Token::USDC);
        pool.flash_loan(
            &mut ledger,
            &mut events,
            &oracle,
            borrower,
            Token::USDC,
            Wad::from_int(100_000),
            |_, _| Ok(()),
        )
        .unwrap();
        let after = pool.available(&ledger, Token::USDC);
        // Aave's 9 bps fee on 100,000 = 90 USDC.
        assert_eq!(after, before.saturating_add(Wad::from_int(90)));
        assert!(events
            .iter()
            .any(|e| matches!(e, ChainEvent::FlashLoan { .. })));
        assert_eq!(ledger.balance(borrower, Token::USDC), Wad::from_int(10));
    }

    #[test]
    fn dydx_flash_loans_are_free() {
        let (pool, mut ledger, oracle, mut events) = setup();
        let borrower = Address::from_seed(5);
        pool.flash_loan(
            &mut ledger,
            &mut events,
            &oracle,
            borrower,
            Token::USDC,
            Wad::from_int(500_000),
            |_, _| Ok(()),
        )
        .unwrap();
        assert_eq!(
            pool.available(&ledger, Token::USDC),
            Wad::from_int(1_000_000)
        );
        assert_eq!(ledger.balance(borrower, Token::USDC), Wad::ZERO);
    }

    #[test]
    fn unrepaid_flash_loan_fails() {
        let (pool, mut ledger, oracle, mut events) = setup();
        let borrower = Address::from_seed(5);
        let sink = Address::from_seed(6);
        let result = pool.flash_loan(
            &mut ledger,
            &mut events,
            &oracle,
            borrower,
            Token::USDC,
            Wad::from_int(500_000),
            |ledger, _| {
                // The strategy loses the funds.
                ledger
                    .transfer(borrower, sink, Token::USDC, Wad::from_int(500_000))
                    .map_err(ProtocolError::from)?;
                Ok(())
            },
        );
        assert!(matches!(result, Err(ProtocolError::FlashLoanNotRepaid)));
        // No FlashLoan event for the failed attempt.
        assert!(events.is_empty());
    }

    #[test]
    fn oversized_flash_loan_is_rejected() {
        let (pool, mut ledger, oracle, mut events) = setup();
        let borrower = Address::from_seed(5);
        let result = pool.flash_loan(
            &mut ledger,
            &mut events,
            &oracle,
            borrower,
            Token::USDC,
            Wad::from_int(2_000_000),
            |_, _| Ok(()),
        );
        assert!(matches!(
            result,
            Err(ProtocolError::InsufficientLiquidity { .. })
        ));
    }

    #[test]
    fn failing_strategy_aborts_the_loan() {
        let (pool, mut ledger, oracle, mut events) = setup();
        let borrower = Address::from_seed(5);
        let result = pool.flash_loan(
            &mut ledger,
            &mut events,
            &oracle,
            borrower,
            Token::USDC,
            Wad::from_int(10_000),
            |_, _| Err(ProtocolError::Arithmetic),
        );
        assert!(result.is_err());
        assert!(events.is_empty());
    }
}
