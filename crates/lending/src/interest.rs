//! Utilization-driven interest rates and borrow-index accrual.
//!
//! "The interest rate of an Aave pool is decided algorithmically by the smart
//! contract and depends on the available funds within the lending pool. The
//! more users borrow an asset, the higher its interest rate rises." (§3.3)
//!
//! The model is the standard kinked curve used by Aave and Compound: a base
//! rate, a gentle slope up to an optimal utilization, and a steep slope past
//! it. Debt positions store *scaled* amounts; the market keeps a borrow index
//! in [`Ray`] precision that compounds per block, so accrual is O(1) per
//! market regardless of the number of borrowers.

use serde::{Deserialize, Serialize};

use defi_types::{BlockNumber, Ray, Wad, RAY};

/// Blocks per year used to convert annual rates to per-block rates
/// (≈ 13.5 s block time).
pub const BLOCKS_PER_YEAR: u64 = 2_336_000;

/// The kinked utilization → borrow-rate curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InterestRateModel {
    /// Base annual borrow rate at 0 % utilization (e.g. 0.02 = 2 %).
    pub base_rate: f64,
    /// Additional annual rate at the optimal utilization point.
    pub slope_1: f64,
    /// Additional annual rate between the optimal point and 100 % utilization.
    pub slope_2: f64,
    /// The kink (optimal utilization), e.g. 0.8.
    pub optimal_utilization: f64,
}

impl Default for InterestRateModel {
    fn default() -> Self {
        InterestRateModel {
            base_rate: 0.02,
            slope_1: 0.10,
            slope_2: 1.00,
            optimal_utilization: 0.80,
        }
    }
}

impl InterestRateModel {
    /// A stablecoin market profile (higher base demand, gentler kink).
    pub fn stablecoin() -> Self {
        InterestRateModel {
            base_rate: 0.01,
            slope_1: 0.06,
            slope_2: 0.75,
            optimal_utilization: 0.90,
        }
    }

    /// Annual borrow rate at the given utilization (0–1).
    pub fn annual_borrow_rate(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        if u <= self.optimal_utilization {
            let share = if self.optimal_utilization > 0.0 {
                u / self.optimal_utilization
            } else {
                1.0
            };
            self.base_rate + self.slope_1 * share
        } else {
            let excess =
                (u - self.optimal_utilization) / (1.0 - self.optimal_utilization).max(1e-9);
            self.base_rate + self.slope_1 + self.slope_2 * excess
        }
    }

    /// Per-block borrow rate in [`Ray`] precision.
    pub fn per_block_rate(&self, utilization: f64) -> Ray {
        let annual = self.annual_borrow_rate(utilization).max(0.0);
        let per_block = annual / BLOCKS_PER_YEAR as f64;
        // lint:allow(fixed-float) the kinked rate curve is defined in f64 rate space; it is quantized to Ray exactly once here, and all index compounding downstream stays in Ray
        Ray::from_raw((per_block * RAY as f64) as u128)
    }

    /// The borrow-index growth factor over `blocks` blocks at a constant
    /// utilization: `(1 + r_block)^blocks`.
    pub fn index_growth(&self, utilization: f64, blocks: u64) -> Ray {
        self.per_block_rate(utilization)
            .compound(blocks)
            .unwrap_or(Ray::ONE)
    }
}

/// Utilization of a market: borrows / (cash + borrows).
pub fn utilization(available_liquidity: Wad, total_debt: Wad) -> f64 {
    // lint:allow(fixed-float) utilization is the f64 input of the f64 rate curve; valuation exactness is certified at the Ray index level, not the rate model
    let cash = available_liquidity.to_f64();
    // lint:allow(fixed-float) utilization is the f64 input of the f64 rate curve; valuation exactness is certified at the Ray index level, not the rate model
    let debt = total_debt.to_f64();
    if cash + debt <= 0.0 {
        0.0
    } else {
        debt / (cash + debt)
    }
}

/// Borrow-index accrual state of one market.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BorrowIndex {
    /// Current cumulative index (starts at 1 Ray).
    pub index: Ray,
    /// Block of the last accrual.
    pub last_accrual_block: BlockNumber,
}

impl BorrowIndex {
    /// A fresh index anchored at `block`.
    pub fn new(block: BlockNumber) -> Self {
        BorrowIndex {
            index: Ray::ONE,
            last_accrual_block: block,
        }
    }

    /// Accrue interest up to `block` at the given utilization.
    pub fn accrue(&mut self, model: &InterestRateModel, utilization: f64, block: BlockNumber) {
        if block <= self.last_accrual_block {
            return;
        }
        let blocks = block - self.last_accrual_block;
        let growth = model.index_growth(utilization, blocks);
        self.index = self.index.checked_mul(growth).unwrap_or(self.index);
        self.last_accrual_block = block;
    }

    /// Scale a principal amount down into index units at the current index
    /// (done when debt is taken).
    pub fn scale_down(&self, amount: Wad) -> Wad {
        let ray_amount = match amount.to_ray() {
            Ok(r) => r,
            Err(_) => return amount,
        };
        ray_amount
            .checked_div(self.index)
            .map(|r| r.to_wad())
            .unwrap_or(amount)
    }

    /// Scale a stored (scaled) amount up into current debt units.
    pub fn scale_up(&self, scaled: Wad) -> Wad {
        let ray_amount = match scaled.to_ray() {
            Ok(r) => r,
            Err(_) => return scaled,
        };
        ray_amount
            .checked_mul(self.index)
            .map(|r| r.to_wad())
            .unwrap_or(scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_monotone_in_utilization() {
        let model = InterestRateModel::default();
        let mut previous = -1.0;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let rate = model.annual_borrow_rate(u);
            assert!(rate >= previous);
            previous = rate;
        }
    }

    #[test]
    fn kink_steepens_the_curve() {
        let model = InterestRateModel::default();
        let below = model.annual_borrow_rate(0.8) - model.annual_borrow_rate(0.7);
        let above = model.annual_borrow_rate(0.95) - model.annual_borrow_rate(0.85);
        assert!(above > below * 2.0);
    }

    #[test]
    fn utilization_bounds() {
        assert_eq!(utilization(Wad::ZERO, Wad::ZERO), 0.0);
        assert_eq!(utilization(Wad::from_int(100), Wad::ZERO), 0.0);
        assert!((utilization(Wad::from_int(50), Wad::from_int(50)) - 0.5).abs() < 1e-12);
        assert!((utilization(Wad::ZERO, Wad::from_int(50)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accrual_grows_debt_roughly_at_annual_rate() {
        let model = InterestRateModel {
            base_rate: 0.10,
            slope_1: 0.0,
            slope_2: 0.0,
            optimal_utilization: 0.8,
        };
        let mut index = BorrowIndex::new(0);
        index.accrue(&model, 0.5, BLOCKS_PER_YEAR);
        let debt = index.scale_up(Wad::from_int(1_000));
        // e^0.10 ≈ 1.105 through per-block compounding; simple 10% would be 1.10.
        let value = debt.to_f64();
        assert!(
            value > 1_099.0 && value < 1_112.0,
            "one year at 10%: {value}"
        );
    }

    #[test]
    fn scale_roundtrip_is_stable() {
        let model = InterestRateModel::default();
        let mut index = BorrowIndex::new(0);
        index.accrue(&model, 0.9, 500_000);
        let principal = Wad::from_int(123_456);
        let scaled = index.scale_down(principal);
        let back = index.scale_up(scaled);
        // Round-trip error should be negligible (sub-1e-9 relative).
        assert!(back.abs_diff(principal).to_f64() < 1e-6);
    }

    #[test]
    fn accrue_is_idempotent_for_same_block() {
        let model = InterestRateModel::default();
        let mut index = BorrowIndex::new(100);
        index.accrue(&model, 0.5, 200);
        let after_first = index.index;
        index.accrue(&model, 0.5, 200);
        assert_eq!(index.index, after_first);
    }
}
