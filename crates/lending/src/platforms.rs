//! Pre-configured instances of the studied platforms (§3.3).
//!
//! Each constructor lists the markets the platform supported during the study
//! window (the asset sets plotted per platform in Figure 8) with the
//! per-market risk parameters from [`RiskParams::platform_market`], and sets
//! the platform-wide close factor and behavioural flags:
//!
//! | Platform | Mechanism | Close factor | Spread | Notes |
//! |---|---|---|---|---|
//! | Aave V1 | fixed spread | 50 % | 5–15 % | superseded by V2 in Dec 2020 |
//! | Aave V2 | fixed spread | 50 % | 5–15 % | multi-asset collateral common |
//! | Compound | fixed spread | 50 % | 8 % | oracle incident Nov 2020 |
//! | dYdX | fixed spread | 100 % | 5 % | insurance fund absorbs Type I bad debt |
//! | MakerDAO | tend–dent auction | — | 13 % penalty | parameters changed after Mar 2020 |

use std::collections::BTreeMap;

use defi_core::mechanism::AuctionParams;
use defi_core::params::RiskParams;
use defi_types::{BlockNumber, Platform, Token, Wad};

use crate::fixed_spread::{FixedSpreadConfig, FixedSpreadProtocol, DEFAULT_DEBT_DUST};
use crate::interest::InterestRateModel;
use crate::maker::{IlkParams, MakerProtocol};
use crate::protocol::LendingProtocol;

fn rate_model_for(token: Token) -> InterestRateModel {
    if token.is_stablecoin() {
        InterestRateModel::stablecoin()
    } else {
        InterestRateModel::default()
    }
}

fn build_fixed_spread(
    platform: Platform,
    close_factor: f64,
    insurance_fund: bool,
    markets: &[Token],
    inception_block: BlockNumber,
) -> FixedSpreadProtocol {
    let mut protocol = FixedSpreadProtocol::new(FixedSpreadConfig {
        platform,
        // lint:allow(fixed-float) platform close factor is a config-space constant quantized once at protocol construction
        close_factor: Wad::from_f64(close_factor),
        one_liquidation_per_block: false,
        insurance_fund,
        debt_dust: DEFAULT_DEBT_DUST,
    });
    for &token in markets {
        protocol.list_market(
            token,
            RiskParams::platform_market(platform, token),
            rate_model_for(token),
            inception_block,
        );
    }
    protocol
}

/// Aave V1 with its main study-window markets.
pub fn aave_v1() -> FixedSpreadProtocol {
    build_fixed_spread(
        Platform::AaveV1,
        0.5,
        false,
        &[
            Token::ETH,
            Token::WBTC,
            Token::DAI,
            Token::USDC,
            Token::USDT,
            Token::TUSD,
            Token::BAT,
            Token::ZRX,
            Token::LINK,
            Token::MKR,
            Token::KNC,
            Token::MANA,
            Token::SNX,
            Token::REP,
        ],
        Platform::AaveV1.inception_block(),
    )
}

/// Aave V2 (December 2020 upgrade) with the collateral set of Figure 8a.
pub fn aave_v2() -> FixedSpreadProtocol {
    build_fixed_spread(
        Platform::AaveV2,
        0.5,
        false,
        &[
            Token::ETH,
            Token::WBTC,
            Token::DAI,
            Token::USDC,
            Token::USDT,
            Token::TUSD,
            Token::BAT,
            Token::ZRX,
            Token::UNI,
            Token::LINK,
            Token::MKR,
            Token::AAVE,
            Token::YFI,
            Token::SNX,
            Token::REN,
            Token::KNC,
            Token::MANA,
            Token::ENJ,
            Token::CRV,
            Token::BAL,
            Token::xSUSHI,
        ],
        Platform::AaveV2.inception_block(),
    )
}

/// Compound with the collateral set of Figure 8b.
pub fn compound() -> FixedSpreadProtocol {
    build_fixed_spread(
        Platform::Compound,
        0.5,
        false,
        &[
            Token::ETH,
            Token::WBTC,
            Token::DAI,
            Token::USDC,
            Token::USDT,
            Token::BAT,
            Token::ZRX,
            Token::UNI,
            Token::COMP,
            Token::REP,
        ],
        Platform::Compound.inception_block(),
    )
}

/// dYdX: only ETH, USDC and DAI markets, 100 % close factor, 5 % spread,
/// insurance fund enabled.
pub fn dydx() -> FixedSpreadProtocol {
    build_fixed_spread(
        Platform::DyDx,
        1.0,
        true,
        &[Token::ETH, Token::USDC, Token::DAI],
        Platform::DyDx.inception_block(),
    )
}

/// MakerDAO with the main collateral types of Figure 8d and the pre-March-2020
/// auction parameters (the simulation switches them after the incident).
pub fn maker_protocol() -> MakerProtocol {
    let mut maker = MakerProtocol::new(AuctionParams::maker_pre_march_2020());
    for token in [
        Token::ETH,
        Token::WBTC,
        Token::USDC,
        Token::USDT,
        Token::LINK,
        Token::BAT,
        Token::ZRX,
        Token::KNC,
        Token::MANA,
        Token::TUSD,
        Token::UNI,
        Token::COMP,
        Token::BAL,
        Token::UNIV2DAIETH,
        Token::UNIV2WBTCETH,
        Token::UNIV2USDCETH,
    ] {
        let liquidation_ratio = if token.is_stablecoin() { 1.20 } else { 1.50 };
        maker.list_ilk(
            token,
            IlkParams {
                // lint:allow(fixed-float) ilk listing parameters are config-space constants quantized once at listing
                liquidation_ratio: Wad::from_f64(liquidation_ratio),
                stability_fee: 0.02,
                // lint:allow(fixed-float) ilk listing parameters are config-space constants quantized once at listing
                liquidation_penalty: Wad::from_f64(0.13),
            },
        );
    }
    maker
}

/// All five studied platforms behind the unified [`LendingProtocol`] trait,
/// keyed by platform — the registry the simulation engine (and any
/// multi-protocol experiment) starts from.
pub fn paper_protocols() -> BTreeMap<Platform, Box<dyn LendingProtocol>> {
    let mut registry: BTreeMap<Platform, Box<dyn LendingProtocol>> = BTreeMap::new();
    registry.insert(Platform::AaveV1, Box::new(aave_v1()));
    registry.insert(Platform::AaveV2, Box::new(aave_v2()));
    registry.insert(Platform::Compound, Box::new(compound()));
    registry.insert(Platform::DyDx, Box::new(dydx()));
    registry.insert(Platform::MakerDao, Box::new(maker_protocol()));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_factors_match_the_paper() {
        assert_eq!(aave_v1().config().close_factor, Wad::from_f64(0.5));
        assert_eq!(aave_v2().config().close_factor, Wad::from_f64(0.5));
        assert_eq!(compound().config().close_factor, Wad::from_f64(0.5));
        assert_eq!(dydx().config().close_factor, Wad::ONE);
    }

    #[test]
    fn dydx_lists_only_three_markets_and_has_insurance() {
        let protocol = dydx();
        assert_eq!(protocol.markets().count(), 3);
        assert!(protocol.config().insurance_fund);
        assert!(!compound().config().insurance_fund);
    }

    #[test]
    fn aave_v2_lists_more_collateral_than_compound() {
        assert!(aave_v2().markets().count() > compound().markets().count());
    }

    #[test]
    fn compound_spread_is_8_percent_on_eth() {
        let protocol = compound();
        let params = protocol.market_params(Token::ETH).unwrap();
        assert_eq!(params.liquidation_spread, Wad::from_f64(0.08));
    }

    #[test]
    fn maker_lists_ilks_with_150_percent_ratio() {
        let maker = maker_protocol();
        let ilk = maker.ilk(Token::ETH).unwrap();
        assert_eq!(ilk.liquidation_ratio, Wad::from_f64(1.5));
        assert_eq!(ilk.liquidation_penalty, Wad::from_f64(0.13));
        // Pre-March-2020 parameters initially.
        assert!(maker.auction_params().bid_duration_blocks < 1_000);
    }

    #[test]
    fn all_platform_market_params_are_sound() {
        use defi_core::config::is_sound_fixed_spread_config;
        for protocol in [aave_v1(), aave_v2(), compound(), dydx()] {
            for market in protocol.markets() {
                let params = protocol.market_params(market.token).unwrap();
                assert!(
                    is_sound_fixed_spread_config(params),
                    "{:?} {} unsound",
                    protocol.platform(),
                    market.token
                );
            }
        }
    }
}
