//! The unified, object-safe lending-protocol API.
//!
//! The paper studies five protocols with two distinct liquidation mechanisms:
//! the atomic **fixed-spread** `liquidationCall` (Aave V1/V2, Compound, dYdX)
//! and MakerDAO's non-atomic **tend–dent auction** (§3.2). [`LendingProtocol`]
//! abstracts over both so the simulation engine, analytics and future
//! mechanism experiments can hold every protocol behind one
//! `Box<dyn LendingProtocol>`:
//!
//! * market listing, accrual and user operations (deposit / borrow / repay)
//!   share one vocabulary — a Maker CDP "deposit" locks collateral, its
//!   "borrow" draws DAI;
//! * liquidation-opportunity discovery is uniform
//!   ([`LendingProtocol::liquidatable`] returns [`Opportunity`] snapshots);
//! * mechanism-specific execution goes through one entry point,
//!   [`LendingProtocol::execute_liquidation`], driven by a
//!   [`LiquidationRequest`] — a fixed-spread repayment, or the
//!   bite / bid / settle steps of an auction;
//! * auction-bearing protocols additionally expose read-only
//!   [`AuctionSnapshot`]s so keeper agents can decide their bids without
//!   downcasting.
//!
//! Adding a sixth protocol (or a new mechanism such as reversible call
//! options) means implementing this trait — the engine needs no changes.

use defi_chain::{AuctionId, AuctionPhase, ChainEvent, Ledger};
use defi_core::mechanism::AuctionParams;
use defi_core::params::RiskParams;
use defi_core::position::Position;
use defi_oracle::PriceOracle;
use defi_types::{Address, BlockNumber, Platform, Token, Wad};

use crate::book::{BookStats, BookTotals};
use crate::error::ProtocolError;
use crate::fixed_spread::{FixedSpreadProtocol, LiquidationReceipt};
use crate::maker::{AuctionOutcome, MakerProtocol};

/// Which liquidation mechanism a protocol runs (§3.2's systematization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismKind {
    /// Atomic fixed-spread liquidation: repay debt, seize discounted
    /// collateral in one transaction.
    FixedSpread,
    /// Non-atomic English-auction liquidation (MakerDAO's tend–dent flow).
    Auction,
}

/// A liquidatable position discovered by [`LendingProtocol::liquidatable`].
#[derive(Debug, Clone)]
pub struct Opportunity {
    /// Platform the position lives on.
    pub platform: Platform,
    /// The borrower eligible for liquidation.
    pub borrower: Address,
    /// Valuation snapshot at discovery time.
    pub position: Position,
    /// How a liquidator must act on it.
    pub mechanism: MechanismKind,
}

/// One mechanism-specific liquidation step, executed through
/// [`LendingProtocol::execute_liquidation`].
#[derive(Debug, Clone)]
pub enum LiquidationRequest {
    /// Fixed-spread `liquidationCall` (Eq. 1 claim rule).
    FixedSpread {
        /// Caller repaying the debt.
        liquidator: Address,
        /// Borrower being liquidated.
        borrower: Address,
        /// Token of the debt being repaid.
        debt_token: Token,
        /// Token of the collateral being seized.
        collateral_token: Token,
        /// Requested repayment (capped by the close factor).
        repay_amount: Wad,
        /// Whether the repayment is flash-loan funded (event flag, Table 4).
        used_flash_loan: bool,
    },
    /// Initiate an auction on a liquidatable position (Maker `bite`).
    StartAuction {
        /// Keeper initiating the auction.
        keeper: Address,
        /// Borrower whose position is auctioned.
        borrower: Address,
    },
    /// Place a tend or dent bid on a running auction.
    AuctionBid {
        /// Bidding keeper.
        bidder: Address,
        /// The auction bid on.
        auction_id: AuctionId,
        /// DAI the bidder commits to repay (tend phase).
        debt_bid: Wad,
        /// Collateral the bidder accepts (dent phase).
        collateral_bid: Wad,
    },
    /// Finalise a terminated auction (Maker `deal`).
    SettleAuction {
        /// Caller settling the auction (usually the winner).
        caller: Address,
        /// The auction settled.
        auction_id: AuctionId,
    },
}

/// What a successful [`LendingProtocol::execute_liquidation`] produced.
#[derive(Debug, Clone)]
pub enum LiquidationExecution {
    /// A fixed-spread call settled atomically.
    FixedSpread(LiquidationReceipt),
    /// An auction was started.
    AuctionStarted(AuctionId),
    /// A bid was accepted; the auction is now in the given phase.
    BidPlaced(AuctionPhase),
    /// An auction was finalised.
    AuctionSettled(AuctionOutcome),
}

/// Best-bid view inside an [`AuctionSnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct BidSnapshot {
    /// Current best bidder.
    pub bidder: Address,
    /// DAI committed by that bid.
    pub debt_bid: Wad,
    /// Collateral accepted by that bid.
    pub collateral_bid: Wad,
}

/// Read-only view of a running auction, sufficient for keeper decisions.
#[derive(Debug, Clone, Copy)]
pub struct AuctionSnapshot {
    /// Auction identifier.
    pub id: AuctionId,
    /// Borrower whose collateral is on auction.
    pub borrower: Address,
    /// Collateral token on auction.
    pub collateral_token: Token,
    /// Collateral amount on auction.
    pub collateral: Wad,
    /// Debt to recover (including penalties).
    pub debt: Wad,
    /// Current phase.
    pub phase: AuctionPhase,
    /// Best bid so far.
    pub best_bid: Option<BidSnapshot>,
    /// Block the auction started at.
    pub started_at: BlockNumber,
    /// Whether `deal` has already been called.
    pub finalized: bool,
}

/// The protocol abstraction every studied platform implements.
///
/// Object-safe by construction: the engine holds protocols as
/// `Box<dyn LendingProtocol>` in its registry and drives markets, positions
/// and liquidations without knowing the concrete type.
pub trait LendingProtocol {
    /// Platform identity used in events and reports.
    fn platform(&self) -> Platform;

    /// The liquidation mechanism this protocol runs.
    fn mechanism(&self) -> MechanismKind;

    /// Every listed market / collateral type.
    fn listed_tokens(&self) -> Vec<Token>;

    /// Tokens whose borrow side is funded from pooled deposits and therefore
    /// needs seeded liquidity. Empty for mint-on-demand designs (MakerDAO).
    fn lendable_tokens(&self) -> Vec<Token> {
        self.listed_tokens()
    }

    /// Close factor CF: the share of a debt repayable in one liquidation
    /// (1.0 where the mechanism recovers the whole debt).
    fn close_factor(&self) -> Wad;

    /// Accrue interest in every market up to `block`.
    fn accrue(&mut self, block: BlockNumber);

    /// Supply collateral (a Maker CDP `lock`).
    fn deposit(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError>;

    /// Borrow against the account's collateral (a Maker CDP `draw`).
    #[allow(clippy::too_many_arguments)]
    fn borrow(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError>;

    /// Repay `amount` of debt; returns the amount repaid. Repaying more than
    /// the outstanding debt is a typed
    /// [`ProtocolError::RepayExceedsOutstanding`] error, never a silent
    /// clamp — callers repaying in full must read the accrued debt first.
    #[allow(clippy::too_many_arguments)]
    fn repay(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<Wad, ProtocolError>;

    /// Valuation snapshot of one account, if it has state.
    fn position(&self, oracle: &PriceOracle, account: Address) -> Option<Position>;

    /// The protocol's observable position book — what volume sampling and
    /// the end-of-run snapshot iterate. Fixed-spread pools report accounts
    /// that actually borrow; Maker reports every open CDP.
    ///
    /// Takes `&mut self` so implementations can serve it from an incremental
    /// cache (see [`crate::book::PositionBook`]); results are identical to a
    /// from-scratch rebuild at current prices.
    fn book_positions(&mut self, oracle: &PriceOracle) -> Vec<Position>;

    /// Visit every observable book position in the same deterministic order
    /// as [`book_positions`](LendingProtocol::book_positions) without
    /// materialising a snapshot vector. Cache-backed implementations override
    /// this to avoid the per-tick clone in the engine's hot loop.
    fn for_each_position(&mut self, oracle: &PriceOracle, visit: &mut dyn FnMut(&Position)) {
        for position in self.book_positions(oracle) {
            visit(&position);
        }
    }

    /// Aggregate totals over the observable book (the volume-sampling pass).
    /// The default computes them from
    /// [`book_positions`](LendingProtocol::book_positions); cache-backed
    /// implementations serve running sums instead.
    fn book_totals(&mut self, oracle: &PriceOracle) -> BookTotals {
        let positions = self.book_positions(oracle);
        let collateral_usd = positions
            .iter()
            .map(|p| p.total_collateral_value())
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
        let debt_usd = positions
            .iter()
            .map(|p| p.total_debt_value())
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
        let dai_eth_collateral_usd = positions
            .iter()
            .filter(|p| p.has_debt_in(Token::DAI))
            .map(|p| {
                p.collateral_value_in(Token::ETH)
                    .saturating_add(p.collateral_value_in(Token::WETH))
            })
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
        BookTotals {
            collateral_usd,
            debt_usd,
            dai_eth_collateral_usd,
            open_positions: positions.len() as u32,
        }
    }

    /// Visit the *at-risk* slice of the observable book — every position
    /// whose health factor is below `rescue` (including liquidatable ones)
    /// or above `releverage` — in the same deterministic order as
    /// [`for_each_position`](LendingProtocol::for_each_position), with every
    /// visited valuation exact at current prices.
    ///
    /// The default is the exact path: walk the full book and filter by
    /// health factor. Band-indexed implementations (fixed-spread pools)
    /// override it to skip far-from-threshold accounts whose certified
    /// envelope holds — the engine's borrower-management pass consumes this
    /// surface every tick.
    ///
    /// ```
    /// use defi_lending::book::{RELEVERAGE_BAND_HF, RESCUE_BAND_HF};
    /// use defi_lending::{compound, LendingProtocol};
    /// use defi_oracle::{OracleConfig, PriceOracle};
    /// use defi_types::{Token, Wad};
    ///
    /// let mut protocol: Box<dyn LendingProtocol> = Box::new(compound());
    /// let mut oracle = PriceOracle::new(OracleConfig::every_update());
    /// oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
    /// let mut at_risk = 0;
    /// protocol.for_each_at_risk(
    ///     &oracle,
    ///     Wad::from_f64(RESCUE_BAND_HF),
    ///     Wad::from_f64(RELEVERAGE_BAND_HF),
    ///     &mut |_position| at_risk += 1,
    /// );
    /// assert_eq!(at_risk, 0, "an empty pool has nothing at risk");
    /// ```
    fn for_each_at_risk(
        &mut self,
        oracle: &PriceOracle,
        rescue: Wad,
        releverage: Wad,
        visit: &mut dyn FnMut(&Position),
    ) {
        self.for_each_position(oracle, &mut |position| {
            if let Some(hf) = position.health_factor() {
                if hf < rescue || hf > releverage {
                    visit(position);
                }
            }
        });
    }

    /// Freeze the observable book into an immutable
    /// [`BookSnapshot`](crate::snapshot::BookSnapshot) for concurrent
    /// readers. The default materialises it from
    /// [`book_positions`](LendingProtocol::book_positions) (every entry then
    /// rides the snapshot's exact what-if path); cache-backed implementations
    /// override this to carry their critical-price and envelope indexes into
    /// the snapshot.
    fn book_snapshot(&mut self, oracle: &PriceOracle) -> crate::snapshot::BookSnapshot {
        let (rescue, releverage) = crate::book::PositionBook::new().band_thresholds();
        crate::snapshot::BookSnapshot::from_positions(
            self.book_positions(oracle),
            oracle,
            rescue,
            releverage,
        )
    }

    /// Set how many worker threads the protocol's incremental book may fan
    /// re-valuation across within a tick (clamped to the shard count).
    /// Results are byte-identical for every worker count — the shard
    /// partition is a pure function of the account address and shards merge
    /// in fixed index order — so this is purely a throughput knob. The
    /// default is a no-op for cache-less implementations that have no book
    /// to parallelise.
    fn set_book_workers(&mut self, _workers: usize) {}

    /// Cache-maintenance and per-phase timing counters of the protocol's
    /// incremental book ([`BookStats`]). Counters are monotone within a run,
    /// so the difference between two reads attributes wall-clock
    /// (flush / at-risk freshen / visit / envelope re-derive) and cache-path
    /// traffic (term reprices, light refreshes, full revaluations) to the
    /// interval between them. The default returns zeroed stats for
    /// cache-less implementations.
    fn book_stats(&self) -> BookStats {
        BookStats::default()
    }

    /// The observable book rebuilt from scratch, bypassing every cache —
    /// the cache-less shadow the differential harness
    /// (`tests/band_differential.rs`) compares the banded/cached surfaces
    /// against every tick. Must return exactly what
    /// [`book_positions`](LendingProtocol::book_positions) returns, computed
    /// the slow way.
    fn reference_positions(&self, oracle: &PriceOracle) -> Vec<Position>;

    /// Risk parameters of one listed market (liquidation threshold/spread
    /// plus the protocol close factor), if the mechanism has per-market
    /// parameters. Lets observers check settlement envelopes against each
    /// market's actual liquidation spread instead of a global bound.
    fn market_risk_params(&self, _token: Token) -> Option<RiskParams> {
        None
    }

    /// Liquidation opportunities at current oracle prices, in deterministic
    /// order.
    ///
    /// Takes `&mut self` so implementations can answer from their
    /// critical-price index / incrementally maintained liquidatable set
    /// instead of filtering a freshly built book.
    fn liquidatable(&mut self, oracle: &PriceOracle) -> Vec<Opportunity>;

    /// Like [`liquidatable`](LendingProtocol::liquidatable), but filling a
    /// caller-owned buffer so a hot discovery loop can reuse one allocation
    /// across ticks (the engine holds the scratch vector and `mem::take`s it
    /// around each call). `out` is cleared first; the results and their order
    /// are identical to `liquidatable`.
    fn liquidatable_into(&mut self, oracle: &PriceOracle, out: &mut Vec<Opportunity>) {
        out.clear();
        out.append(&mut self.liquidatable(oracle));
    }

    /// Execute one mechanism-specific liquidation step. Implementations must
    /// reject request variants that do not belong to their mechanism with
    /// [`ProtocolError::UnsupportedLiquidationRequest`].
    #[allow(clippy::too_many_arguments)]
    fn execute_liquidation(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        request: &LiquidationRequest,
    ) -> Result<LiquidationExecution, ProtocolError>;

    /// Auctions that have been started but not settled (auction mechanisms
    /// only).
    fn open_auctions(&self) -> Vec<AuctionId> {
        Vec::new()
    }

    /// Read-only view of one auction.
    fn auction_snapshot(&self, _id: AuctionId) -> Option<AuctionSnapshot> {
        None
    }

    /// Whether an auction has terminated and can be settled at `block`.
    fn can_finalize_auction(&self, _id: AuctionId, _block: BlockNumber) -> bool {
        false
    }

    /// The auction parameters in force, if the mechanism has any.
    fn auction_params(&self) -> Option<AuctionParams> {
        None
    }

    /// Update the auction parameters (governance changes mid-scenario, e.g.
    /// MakerDAO after March 2020). No-op for atomic mechanisms.
    fn set_auction_params(&mut self, _params: AuctionParams) {}

    /// Let an insurance fund absorb under-collateralized positions, returning
    /// the USD value written off (dYdX, §4.4.2). No-op by default.
    fn write_off_insolvent_positions(&mut self, _oracle: &PriceOracle) -> Wad {
        Wad::ZERO
    }
}

// ---------------------------------------------------------------- FixedSpread

impl LendingProtocol for FixedSpreadProtocol {
    fn platform(&self) -> Platform {
        FixedSpreadProtocol::platform(self)
    }

    fn mechanism(&self) -> MechanismKind {
        MechanismKind::FixedSpread
    }

    fn listed_tokens(&self) -> Vec<Token> {
        self.markets().map(|m| m.token).collect()
    }

    fn close_factor(&self) -> Wad {
        self.config().close_factor
    }

    fn accrue(&mut self, block: BlockNumber) {
        self.accrue_all(block);
    }

    fn deposit(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        FixedSpreadProtocol::deposit(self, ledger, events, account, token, amount)
    }

    fn borrow(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        FixedSpreadProtocol::borrow(self, ledger, events, oracle, block, account, token, amount)
    }

    fn repay(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<Wad, ProtocolError> {
        FixedSpreadProtocol::repay(self, ledger, events, block, account, token, amount)
    }

    fn position(&self, oracle: &PriceOracle, account: Address) -> Option<Position> {
        FixedSpreadProtocol::position(self, oracle, account)
    }

    fn book_positions(&mut self, oracle: &PriceOracle) -> Vec<Position> {
        self.cached_book(oracle)
    }

    fn for_each_position(&mut self, oracle: &PriceOracle, visit: &mut dyn FnMut(&Position)) {
        FixedSpreadProtocol::for_each_book_position(self, oracle, visit);
    }

    fn for_each_at_risk(
        &mut self,
        oracle: &PriceOracle,
        rescue: Wad,
        releverage: Wad,
        visit: &mut dyn FnMut(&Position),
    ) {
        FixedSpreadProtocol::for_each_at_risk(self, oracle, rescue, releverage, visit);
    }

    fn reference_positions(&self, oracle: &PriceOracle) -> Vec<Position> {
        // The observable book reports accounts that actually borrow.
        self.positions(oracle)
            .into_iter()
            .filter(|p| !p.total_debt_value().is_zero())
            .collect()
    }

    fn market_risk_params(&self, token: Token) -> Option<RiskParams> {
        self.market_params(token)
    }

    fn book_totals(&mut self, oracle: &PriceOracle) -> BookTotals {
        FixedSpreadProtocol::book_totals(self, oracle)
    }

    fn book_snapshot(&mut self, oracle: &PriceOracle) -> crate::snapshot::BookSnapshot {
        FixedSpreadProtocol::book_snapshot(self, oracle)
    }

    fn set_book_workers(&mut self, workers: usize) {
        FixedSpreadProtocol::set_book_workers(self, workers);
    }

    fn book_stats(&self) -> BookStats {
        FixedSpreadProtocol::book_stats(self)
    }

    fn liquidatable(&mut self, oracle: &PriceOracle) -> Vec<Opportunity> {
        let mut out = Vec::new();
        LendingProtocol::liquidatable_into(self, oracle, &mut out);
        out
    }

    fn liquidatable_into(&mut self, oracle: &PriceOracle, out: &mut Vec<Opportunity>) {
        out.clear();
        let platform = self.config().platform;
        for borrower in self.cached_liquidatable_accounts(oracle) {
            if let Some(position) = self.cached_position(borrower) {
                out.push(Opportunity {
                    platform,
                    borrower,
                    position: position.clone(),
                    mechanism: MechanismKind::FixedSpread,
                });
            }
        }
    }

    fn execute_liquidation(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        request: &LiquidationRequest,
    ) -> Result<LiquidationExecution, ProtocolError> {
        match *request {
            LiquidationRequest::FixedSpread {
                liquidator,
                borrower,
                debt_token,
                collateral_token,
                repay_amount,
                used_flash_loan,
            } => self
                .liquidation_call(
                    ledger,
                    events,
                    oracle,
                    block,
                    liquidator,
                    borrower,
                    debt_token,
                    collateral_token,
                    repay_amount,
                    used_flash_loan,
                )
                .map(LiquidationExecution::FixedSpread),
            _ => Err(ProtocolError::UnsupportedLiquidationRequest {
                platform: self.config().platform,
            }),
        }
    }

    fn write_off_insolvent_positions(&mut self, oracle: &PriceOracle) -> Wad {
        FixedSpreadProtocol::write_off_insolvent_positions(self, oracle)
    }
}

// ---------------------------------------------------------------------- Maker

impl LendingProtocol for MakerProtocol {
    fn platform(&self) -> Platform {
        Platform::MakerDao
    }

    fn mechanism(&self) -> MechanismKind {
        MechanismKind::Auction
    }

    fn listed_tokens(&self) -> Vec<Token> {
        self.ilk_tokens()
    }

    fn lendable_tokens(&self) -> Vec<Token> {
        // DAI is minted against collateral, not lent from a pool: nothing to
        // seed.
        Vec::new()
    }

    fn close_factor(&self) -> Wad {
        // An auction recovers the whole debt (plus penalty) in one go.
        Wad::ONE
    }

    fn accrue(&mut self, _block: BlockNumber) {
        // Stability fees are accrued lazily into CDP debt in this model.
    }

    fn deposit(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        self.lock_collateral(ledger, events, account, token, amount)
    }

    fn borrow(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        _block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), ProtocolError> {
        if token != Token::DAI {
            return Err(ProtocolError::MarketNotListed(token));
        }
        self.draw_dai(ledger, events, oracle, account, amount)
    }

    fn repay(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        _block: BlockNumber,
        account: Address,
        token: Token,
        amount: Wad,
    ) -> Result<Wad, ProtocolError> {
        if token != Token::DAI {
            return Err(ProtocolError::NoDebtInToken(token));
        }
        self.repay_dai(ledger, events, account, amount)
    }

    fn position(&self, oracle: &PriceOracle, account: Address) -> Option<Position> {
        MakerProtocol::position(self, oracle, account)
    }

    fn book_positions(&mut self, oracle: &PriceOracle) -> Vec<Position> {
        self.cached_book(oracle)
    }

    fn for_each_position(&mut self, oracle: &PriceOracle, visit: &mut dyn FnMut(&Position)) {
        MakerProtocol::for_each_book_position(self, oracle, visit);
    }

    fn reference_positions(&self, oracle: &PriceOracle) -> Vec<Position> {
        // Every open CDP is observable.
        MakerProtocol::positions(self, oracle)
    }

    fn book_totals(&mut self, oracle: &PriceOracle) -> BookTotals {
        MakerProtocol::book_totals(self, oracle)
    }

    fn book_snapshot(&mut self, oracle: &PriceOracle) -> crate::snapshot::BookSnapshot {
        MakerProtocol::book_snapshot(self, oracle)
    }

    fn set_book_workers(&mut self, workers: usize) {
        MakerProtocol::set_book_workers(self, workers);
    }

    fn book_stats(&self) -> BookStats {
        MakerProtocol::book_stats(self)
    }

    fn liquidatable(&mut self, oracle: &PriceOracle) -> Vec<Opportunity> {
        let mut out = Vec::new();
        LendingProtocol::liquidatable_into(self, oracle, &mut out);
        out
    }

    fn liquidatable_into(&mut self, oracle: &PriceOracle, out: &mut Vec<Opportunity>) {
        out.clear();
        for owner in self.cached_liquidatable_cdps(oracle) {
            if let Some(position) = self.cached_position(owner) {
                out.push(Opportunity {
                    platform: Platform::MakerDao,
                    borrower: owner,
                    position: position.clone(),
                    mechanism: MechanismKind::Auction,
                });
            }
        }
    }

    fn execute_liquidation(
        &mut self,
        ledger: &mut Ledger,
        events: &mut Vec<ChainEvent>,
        oracle: &PriceOracle,
        block: BlockNumber,
        request: &LiquidationRequest,
    ) -> Result<LiquidationExecution, ProtocolError> {
        match *request {
            LiquidationRequest::StartAuction {
                keeper: _,
                borrower,
            } => self
                .bite(events, oracle, block, borrower)
                .map(LiquidationExecution::AuctionStarted),
            LiquidationRequest::AuctionBid {
                bidder,
                auction_id,
                debt_bid,
                collateral_bid,
            } => self
                .bid(
                    ledger,
                    events,
                    block,
                    auction_id,
                    bidder,
                    debt_bid,
                    collateral_bid,
                )
                .map(LiquidationExecution::BidPlaced),
            LiquidationRequest::SettleAuction {
                caller: _,
                auction_id,
            } => self
                .deal(ledger, events, oracle, block, auction_id)
                .map(LiquidationExecution::AuctionSettled),
            LiquidationRequest::FixedSpread { .. } => {
                Err(ProtocolError::UnsupportedLiquidationRequest {
                    platform: Platform::MakerDao,
                })
            }
        }
    }

    fn open_auctions(&self) -> Vec<AuctionId> {
        MakerProtocol::open_auctions(self)
    }

    fn auction_snapshot(&self, id: AuctionId) -> Option<AuctionSnapshot> {
        self.auction(id).map(|auction| AuctionSnapshot {
            id: auction.id,
            borrower: auction.borrower,
            collateral_token: auction.collateral_token,
            collateral: auction.collateral,
            debt: auction.debt,
            phase: auction.phase,
            best_bid: auction.best_bid.map(|bid| BidSnapshot {
                bidder: bid.bidder,
                debt_bid: bid.debt_bid,
                collateral_bid: bid.collateral_bid,
            }),
            started_at: auction.started_at,
            finalized: auction.finalized,
        })
    }

    fn can_finalize_auction(&self, id: AuctionId, block: BlockNumber) -> bool {
        self.can_finalize(id, block)
    }

    fn auction_params(&self) -> Option<AuctionParams> {
        Some(*MakerProtocol::auction_params(self))
    }

    fn set_auction_params(&mut self, params: AuctionParams) {
        MakerProtocol::set_auction_params(self, params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{compound, maker_protocol};
    use defi_oracle::OracleConfig;

    fn oracle() -> PriceOracle {
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(0, Token::ETH, Wad::from_int(3_500));
        oracle.set_price(0, Token::USDC, Wad::ONE);
        oracle.set_price(0, Token::DAI, Wad::ONE);
        oracle
    }

    /// Drive a fixed-spread pool purely through the trait object.
    #[test]
    fn fixed_spread_through_dyn_trait() {
        let mut protocol: Box<dyn LendingProtocol> = Box::new(compound());
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut oracle = oracle();

        assert_eq!(protocol.mechanism(), MechanismKind::FixedSpread);
        assert!(protocol.lendable_tokens().contains(&Token::USDC));

        let lender = Address::from_seed(1);
        ledger.mint(lender, Token::USDC, Wad::from_int(1_000_000));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                lender,
                Token::USDC,
                Wad::from_int(1_000_000),
            )
            .unwrap();
        let borrower = Address::from_seed(2);
        ledger.mint(borrower, Token::ETH, Wad::from_int(3));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                borrower,
                Token::ETH,
                Wad::from_int(3),
            )
            .unwrap();
        protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                borrower,
                Token::USDC,
                Wad::from_int(7_800),
            )
            .unwrap();
        assert!(protocol.liquidatable(&oracle).is_empty());

        oracle.set_price(2, Token::ETH, Wad::from_int(3_000));
        let opportunities = protocol.liquidatable(&oracle);
        assert_eq!(opportunities.len(), 1);
        assert_eq!(opportunities[0].borrower, borrower);
        assert_eq!(opportunities[0].mechanism, MechanismKind::FixedSpread);

        let liquidator = Address::from_seed(3);
        ledger.mint(liquidator, Token::USDC, Wad::from_int(10_000));
        let request = LiquidationRequest::FixedSpread {
            liquidator,
            borrower,
            debt_token: Token::USDC,
            collateral_token: Token::ETH,
            repay_amount: Wad::from_int(3_900),
            used_flash_loan: false,
        };
        let execution = protocol
            .execute_liquidation(&mut ledger, &mut events, &oracle, 2, &request)
            .unwrap();
        let LiquidationExecution::FixedSpread(receipt) = execution else {
            panic!("expected a fixed-spread receipt");
        };
        assert!(receipt.debt_repaid > Wad::ZERO);
        assert!(receipt.gross_profit_usd() > Wad::ZERO);

        // Auction steps are rejected by fixed-spread protocols.
        let bad = LiquidationRequest::StartAuction {
            keeper: liquidator,
            borrower,
        };
        assert!(matches!(
            protocol.execute_liquidation(&mut ledger, &mut events, &oracle, 3, &bad),
            Err(ProtocolError::UnsupportedLiquidationRequest { .. })
        ));
    }

    /// Drive MakerDAO bite → bid → deal purely through the trait object.
    #[test]
    fn maker_auction_through_dyn_trait() {
        let mut protocol: Box<dyn LendingProtocol> = Box::new(maker_protocol());
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut oracle = oracle();

        assert_eq!(protocol.mechanism(), MechanismKind::Auction);
        assert!(protocol.lendable_tokens().is_empty());
        assert!(protocol.listed_tokens().contains(&Token::ETH));

        let owner = Address::from_seed(10);
        ledger.mint(owner, Token::ETH, Wad::from_int(10));
        protocol
            .deposit(
                &mut ledger,
                &mut events,
                owner,
                Token::ETH,
                Wad::from_int(10),
            )
            .unwrap();
        protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                owner,
                Token::DAI,
                Wad::from_int(20_000),
            )
            .unwrap();
        // Borrowing a non-DAI token through a CDP is rejected.
        assert!(protocol
            .borrow(
                &mut ledger,
                &mut events,
                &oracle,
                1,
                owner,
                Token::USDC,
                Wad::ONE
            )
            .is_err());

        oracle.set_price(2, Token::ETH, Wad::from_int(2_500));
        let opportunities = protocol.liquidatable(&oracle);
        assert_eq!(opportunities.len(), 1);
        assert_eq!(opportunities[0].mechanism, MechanismKind::Auction);

        let keeper = Address::from_seed(11);
        let start = LiquidationRequest::StartAuction {
            keeper,
            borrower: owner,
        };
        let LiquidationExecution::AuctionStarted(auction_id) = protocol
            .execute_liquidation(&mut ledger, &mut events, &oracle, 10, &start)
            .unwrap()
        else {
            panic!("expected an auction start");
        };
        assert_eq!(protocol.open_auctions(), vec![auction_id]);
        let snapshot = protocol.auction_snapshot(auction_id).unwrap();
        assert_eq!(snapshot.collateral, Wad::from_int(10));
        assert!(snapshot.best_bid.is_none());

        ledger.mint(keeper, Token::DAI, snapshot.debt);
        let bid = LiquidationRequest::AuctionBid {
            bidder: keeper,
            auction_id,
            debt_bid: snapshot.debt,
            collateral_bid: Wad::ZERO,
        };
        let LiquidationExecution::BidPlaced(phase) = protocol
            .execute_liquidation(&mut ledger, &mut events, &oracle, 11, &bid)
            .unwrap()
        else {
            panic!("expected a bid");
        };
        assert_eq!(phase, AuctionPhase::Dent);

        let params = protocol.auction_params().unwrap();
        let end = 11 + params.bid_duration_blocks;
        assert!(protocol.can_finalize_auction(auction_id, end));
        let settle = LiquidationRequest::SettleAuction {
            caller: keeper,
            auction_id,
        };
        let LiquidationExecution::AuctionSettled(outcome) = protocol
            .execute_liquidation(&mut ledger, &mut events, &oracle, end, &settle)
            .unwrap()
        else {
            panic!("expected a settlement");
        };
        assert_eq!(outcome.winner, Some(keeper));
        assert!(protocol.open_auctions().is_empty());
    }

    /// The registry pattern: both mechanisms behind one map of trait objects.
    #[test]
    fn heterogeneous_registry_is_object_safe() {
        let protocols: Vec<Box<dyn LendingProtocol>> =
            vec![Box::new(compound()), Box::new(maker_protocol())];
        let kinds: Vec<MechanismKind> = protocols.iter().map(|p| p.mechanism()).collect();
        assert_eq!(
            kinds,
            vec![MechanismKind::FixedSpread, MechanismKind::Auction]
        );
        for protocol in &protocols {
            assert!(!protocol.listed_tokens().is_empty());
            assert!(protocol.close_factor() > Wad::ZERO);
        }
    }
}
