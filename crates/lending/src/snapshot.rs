//! Immutable, self-contained snapshots of the observable position book.
//!
//! A [`BookSnapshot`] is the read-side face of the risk service: the write
//! side exports one per tick from its incremental [`PositionBook`] (positions,
//! valuations, health-factor bands, the per-token critical-price index and
//! the certified band envelopes, all priced at a single oracle state), wraps
//! it in an `Arc` and swaps it into a shared slot. Reader threads then answer
//! point lookups, band listings and what-if stress queries against the frozen
//! copy with no locks on the simulation loop.
//!
//! The headline query is [`BookSnapshot::breach_under`] — "which accounts
//! breach HF 1 if `token` moves by `shock_bps`?" (the knife-edge sensitivity
//! question of Figure 8). It answers from the indexes where they apply:
//!
//! * **critical-price** accounts (single-price, e.g. Maker CDPs) compare the
//!   shocked raw price against the exact critical price — no re-valuation;
//! * accounts **not sensitive** to the shocked token keep their current band
//!   verdict;
//! * accounts whose **certified envelope** contains the shocked price keep
//!   their band verdict (the envelope certifies the band for any price inside
//!   its inclusive bounds while every other input is at the snapshot state);
//! * only the remainder is re-projected exactly.
//!
//! [`BookSnapshot::breach_under_reference`] is the shortcut-free shadow: a
//! from-scratch re-projection of *every* account at the shocked price. The
//! differential tests assert the two agree on every query.
//!
//! All breach math is integer-only: the shocked price is derived with
//! [`mul_div_floor`] on basis points and projections reuse the exact checked
//! [`Wad`] operations the live valuation uses.
//!
//! [`PositionBook`]: crate::book::PositionBook

use std::collections::BTreeMap;
use std::sync::Arc;

use defi_core::position::Position;
use defi_oracle::PriceOracle;
use defi_types::{mul_div_floor, Address, Token, Wad};

use crate::book::{shard_of, BookStats, BookTotals, BOOK_SHARD_COUNT};

/// Health-factor band of one snapshot entry, delimited by 1 and the book's
/// (`rescue`, `releverage`) thresholds — the public mirror of the book's
/// internal band classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotBand {
    /// HF < 1.
    Liquidatable,
    /// 1 ≤ HF < rescue.
    Rescue,
    /// rescue ≤ HF ≤ releverage, or no debt (no health factor at all).
    Quiet,
    /// HF > releverage.
    Releverage,
}

impl SnapshotBand {
    /// Classify a health factor against the given thresholds (`None` — no
    /// debt — is quiet).
    pub fn classify(hf: Option<Wad>, rescue: Wad, releverage: Wad) -> SnapshotBand {
        match hf {
            None => SnapshotBand::Quiet,
            Some(hf) if hf < Wad::ONE => SnapshotBand::Liquidatable,
            Some(hf) if hf < rescue => SnapshotBand::Rescue,
            Some(hf) if hf > releverage => SnapshotBand::Releverage,
            Some(_) => SnapshotBand::Quiet,
        }
    }

    /// Whether the borrower-management pass must see accounts in this band.
    pub fn at_risk(self) -> bool {
        !matches!(self, SnapshotBand::Quiet)
    }
}

/// One account's frozen state inside a [`BookSnapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// The full valuation snapshot (exact at the snapshot's prices).
    pub position: Position,
    /// Σ collateral USD value.
    pub collateral_usd: Wad,
    /// Σ debt USD value.
    pub debt_usd: Wad,
    /// Health factor at the snapshot's prices (`None`: no debt).
    pub health_factor: Option<Wad>,
    /// Band classification of `health_factor`.
    pub band: SnapshotBand,
    /// Tokens whose oracle price this valuation depends on (par-valued debt,
    /// e.g. Maker's DAI, is *not* price-sensitive).
    pub sensitive: Vec<Token>,
    /// Exact critical price of a single-price account: liquidatable iff the
    /// raw price of the token is strictly below the bound.
    pub critical: Option<(Token, u128)>,
    /// Inclusive raw-price bounds per sensitive token within which `band`
    /// provably holds (empty: no certified envelope).
    pub envelope_bounds: Vec<(Token, u128, u128)>,
}

impl SnapshotEntry {
    fn from_position(position: Position, rescue: Wad, releverage: Wad) -> SnapshotEntry {
        let collateral_usd = position.total_collateral_value();
        let debt_usd = position.total_debt_value();
        let health_factor = position.health_factor();
        let band = SnapshotBand::classify(health_factor, rescue, releverage);
        let mut sensitive: Vec<Token> = Vec::new();
        for holding in &position.collateral {
            if !sensitive.contains(&holding.token) {
                sensitive.push(holding.token);
            }
        }
        for holding in &position.debt {
            if !sensitive.contains(&holding.token) {
                sensitive.push(holding.token);
            }
        }
        SnapshotEntry {
            collateral_usd,
            debt_usd,
            health_factor,
            band,
            sensitive,
            critical: None,
            envelope_bounds: Vec::new(),
            position,
        }
    }
}

/// Which shortcut answered each account of a [`BookSnapshot::breach_under`]
/// query (observability for the envelope-powered fast paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreachPaths {
    /// Answered by the critical-price comparison.
    pub critical: usize,
    /// Answered by the current band (not sensitive to the shocked token).
    pub insensitive: usize,
    /// Answered by the current band (shocked price inside the certified
    /// envelope bound).
    pub envelope: usize,
    /// Re-projected exactly.
    pub revalued: usize,
}

/// Result of a what-if stress query.
#[derive(Debug, Clone)]
pub struct BreachReport {
    /// Accounts below HF 1 at the shocked price, in address order.
    pub breached: Vec<Address>,
    /// The shocked price the query evaluated (wad USD).
    pub shocked_price: Wad,
    /// How each account was answered.
    pub paths: BreachPaths,
}

/// One address-range shard of a [`BookSnapshot`], frozen behind its own
/// `Arc` so consecutive snapshots share the allocation whenever the live
/// shard did not change (`Arc::ptr_eq` across snapshots ⇒ bit-identical
/// contents).
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    pub(crate) entries: BTreeMap<Address, SnapshotEntry>,
}

impl ShardSnapshot {
    /// Iterate this shard's entries in address order.
    pub fn entries(&self) -> impl Iterator<Item = (&Address, &SnapshotEntry)> {
        self.entries.iter()
    }

    /// Number of positions frozen in this shard.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether this shard holds no positions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An immutable, self-contained snapshot of one protocol's observable book.
///
/// Constructed by [`PositionBook::snapshot`](crate::book::PositionBook::snapshot)
/// (index-carrying, per-shard `Arc`-cached) or
/// [`BookSnapshot::from_positions`] (index-less fallback); all queries take
/// `&self` and allocate nothing shared, so any number of threads can read one
/// snapshot concurrently. Entries live in [`BOOK_SHARD_COUNT`] fixed
/// address-range shards concatenated in ascending order, so iteration is
/// still globally address-ordered.
#[derive(Debug, Clone)]
pub struct BookSnapshot {
    pub(crate) shards: Vec<Arc<ShardSnapshot>>,
    pub(crate) totals: BookTotals,
    pub(crate) prices: BTreeMap<Token, Wad>,
    pub(crate) rescue: Wad,
    pub(crate) releverage: Wad,
    /// Cache-maintenance and phase-timing counters of the producing book at
    /// freeze time (zeroed for index-less [`from_positions`] snapshots) —
    /// lets read-side observers report tick-phase breakdowns without a
    /// handle on the live book.
    ///
    /// [`from_positions`]: BookSnapshot::from_positions
    pub stats: BookStats,
}

impl BookSnapshot {
    /// Build an index-less snapshot from a materialised book (the default
    /// [`LendingProtocol`](crate::LendingProtocol) path for implementations
    /// without an incremental cache): every entry rides the exact projection
    /// path of [`breach_under`](BookSnapshot::breach_under), with every
    /// holding token treated as price-sensitive.
    pub fn from_positions(
        positions: Vec<Position>,
        oracle: &PriceOracle,
        rescue: Wad,
        releverage: Wad,
    ) -> BookSnapshot {
        let mut shards: Vec<ShardSnapshot> = (0..BOOK_SHARD_COUNT)
            .map(|_| ShardSnapshot::default())
            .collect();
        let mut totals = BookTotals::default();
        for position in positions {
            let entry = SnapshotEntry::from_position(position, rescue, releverage);
            totals.collateral_usd = totals.collateral_usd.saturating_add(entry.collateral_usd);
            totals.debt_usd = totals.debt_usd.saturating_add(entry.debt_usd);
            if entry.position.has_debt_in(Token::DAI) {
                let dai_eth = entry
                    .position
                    .collateral_value_in(Token::ETH)
                    .saturating_add(entry.position.collateral_value_in(Token::WETH));
                totals.dai_eth_collateral_usd =
                    totals.dai_eth_collateral_usd.saturating_add(dai_eth);
            }
            totals.open_positions = totals.open_positions.saturating_add(1);
            let owner = entry.position.owner;
            if let Some(shard) = shards.get_mut(shard_of(&owner)) {
                shard.entries.insert(owner, entry);
            }
        }
        let prices = oracle
            .tokens()
            .into_iter()
            .map(|token| (token, oracle.price_or_zero(token)))
            .collect();
        BookSnapshot {
            shards: shards.into_iter().map(Arc::new).collect(),
            totals,
            prices,
            rescue,
            releverage,
            stats: BookStats::default(),
        }
    }

    /// The frozen address-range shards in ascending order. Consecutive
    /// snapshots return pointer-equal `Arc`s for shards nothing touched in
    /// between — the reader-side contract the `RiskService` tests assert.
    pub fn shards(&self) -> &[Arc<ShardSnapshot>] {
        &self.shards
    }

    /// Number of positions in the snapshot.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.entries.len()).sum()
    }

    /// Whether the snapshot holds no positions.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.entries.is_empty())
    }

    /// Aggregate totals over the snapshot (frozen copy of the book's running
    /// sums — the threaded consistency tests recompute them from the entries).
    pub fn totals(&self) -> BookTotals {
        self.totals
    }

    /// The (rescue, releverage) band thresholds the entries are classified by.
    pub fn band_thresholds(&self) -> (Wad, Wad) {
        (self.rescue, self.releverage)
    }

    /// The oracle price the snapshot was valued at (zero when the token never
    /// priced).
    pub fn price(&self, token: Token) -> Wad {
        self.prices.get(&token).copied().unwrap_or(Wad::ZERO)
    }

    /// Iterate every entry in address order (shards are concatenated in
    /// ascending address-range order).
    pub fn entries(&self) -> impl Iterator<Item = (&Address, &SnapshotEntry)> {
        self.shards.iter().flat_map(|shard| shard.entries.iter())
    }

    /// Point lookup of one account (routed to its owning shard).
    pub fn entry(&self, account: Address) -> Option<&SnapshotEntry> {
        self.shards
            .get(shard_of(&account))
            .and_then(|shard| shard.entries.get(&account))
    }

    /// Point lookup of one account's position.
    pub fn position(&self, account: Address) -> Option<&Position> {
        self.entry(account).map(|e| &e.position)
    }

    /// Accounts in one band, in address order.
    pub fn band(&self, band: SnapshotBand) -> Vec<Address> {
        self.entries()
            .filter(|(_, e)| e.band == band)
            .map(|(address, _)| *address)
            .collect()
    }

    /// Accounts below HF 1 at the snapshot's prices, in address order.
    pub fn liquidatable(&self) -> Vec<Address> {
        self.band(SnapshotBand::Liquidatable)
    }

    /// Visit every at-risk entry (any band other than quiet) in address
    /// order.
    pub fn for_each_at_risk(&self, visit: &mut dyn FnMut(&Address, &SnapshotEntry)) {
        for (address, entry) in self.entries() {
            if entry.band.at_risk() {
                visit(address, entry);
            }
        }
    }

    /// The snapshot price of `token` moved by `shock_bps` basis points
    /// (−800 = −8 %), floored at the −100 % clamp: a shock at or below
    /// −10000 bps yields exactly zero, never a negative (wrapped) scale.
    /// Integer-exact above the clamp: `price · (10000 + bps) / 10000`
    /// rounded down.
    pub fn shocked_price(&self, token: Token, shock_bps: i32) -> Wad {
        let base = self.price(token);
        // Clamp *before* any cast: `10_000 + shock_bps` is negative for
        // shocks below −100 %, and a price cannot go negative.
        let scale = 10_000i64.saturating_add(i64::from(shock_bps)).max(0);
        let Ok(scale) = u128::try_from(scale) else {
            return Wad::ZERO;
        };
        if scale == 0 {
            return Wad::ZERO;
        }
        Wad::from_raw(mul_div_floor(base.raw(), scale, 10_000).unwrap_or(u128::MAX))
    }

    /// What-if stress query: every account that would sit below HF 1 if the
    /// oracle price of `token` moved by `shock_bps` basis points while every
    /// other input stayed at the snapshot state. Served off the
    /// critical-price and envelope indexes where they apply; the remainder is
    /// re-projected exactly (see the module docs for the decision ladder).
    pub fn breach_under(&self, token: Token, shock_bps: i32) -> BreachReport {
        let shocked = self.shocked_price(token, shock_bps);
        let mut paths = BreachPaths::default();
        let mut breached = Vec::new();
        for (address, entry) in self.entries() {
            if self.entry_breaches(entry, token, shocked, &mut paths) {
                breached.push(*address);
            }
        }
        BreachReport {
            breached,
            shocked_price: shocked,
            paths,
        }
    }

    /// The shortcut-free shadow of [`breach_under`](BookSnapshot::breach_under):
    /// re-projects **every** account at the shocked price, ignoring the
    /// critical-price and envelope indexes. The differential tests assert
    /// `breach_under(t, bps).breached == breach_under_reference(t, bps)` —
    /// this is the from-scratch re-valuation the indexes must agree with.
    pub fn breach_under_reference(&self, token: Token, shock_bps: i32) -> Vec<Address> {
        let shocked = self.shocked_price(token, shock_bps);
        self.entries()
            .filter(|(_, entry)| project_breach(entry, token, shocked))
            .map(|(address, _)| *address)
            .collect()
    }

    /// Decide one entry's breach verdict via the cheapest valid path.
    fn entry_breaches(
        &self,
        entry: &SnapshotEntry,
        token: Token,
        shocked: Wad,
        paths: &mut BreachPaths,
    ) -> bool {
        if entry.debt_usd.is_zero() {
            // Debt-free accounts have no health factor to breach. Count them
            // with the insensitive path: the verdict is their current band.
            paths.insensitive = paths.insensitive.saturating_add(1);
            return false;
        }
        if let Some((critical_token, critical_raw)) = entry.critical {
            // Single-price account: liquidatable iff the effective raw price
            // of its critical token is strictly below the exact bound.
            paths.critical = paths.critical.saturating_add(1);
            let effective = if critical_token == token {
                shocked
            } else {
                self.price(critical_token)
            };
            return effective.raw() < critical_raw;
        }
        if !entry.sensitive.contains(&token) {
            // The valuation does not read the shocked price at all.
            paths.insensitive = paths.insensitive.saturating_add(1);
            return entry.band == SnapshotBand::Liquidatable;
        }
        let in_envelope = entry
            .envelope_bounds
            .iter()
            .find(|(t, _, _)| *t == token)
            .is_some_and(|&(_, lo, hi)| shocked.raw() >= lo && shocked.raw() <= hi);
        if in_envelope {
            // The certified envelope bounds the band for any price of the
            // shocked token inside [lo, hi] while every other input is at the
            // snapshot state — exactly this query's premise.
            paths.envelope = paths.envelope.saturating_add(1);
            return entry.band == SnapshotBand::Liquidatable;
        }
        paths.revalued = paths.revalued.saturating_add(1);
        project_breach(entry, token, shocked)
    }
}

/// Exact projection of one entry's health factor at the shocked price:
/// holdings of the shocked token are re-valued `amount · price'` when the
/// entry is price-sensitive to it, every other holding keeps its snapshot
/// valuation — the same checked/saturating fold the live [`Position`]
/// valuation uses. Returns whether the projected HF sits below 1.
///
/// Overflow saturates toward the true (astronomically large) value on both
/// sides of the ratio: a collateral product too big for the range must not
/// collapse to zero (spurious breach), and a debt product too big must not
/// collapse to zero either (spuriously *healthy*).
fn project_breach(entry: &SnapshotEntry, token: Token, shocked: Wad) -> bool {
    let reprice = entry.sensitive.contains(&token);
    let mut capacity = Wad::ZERO;
    let mut debt = Wad::ZERO;
    for holding in &entry.position.collateral {
        let value = if reprice && holding.token == token {
            holding.amount.checked_mul(shocked).unwrap_or(Wad::MAX)
        } else {
            holding.value_usd
        };
        let weighted = value
            .checked_mul(holding.liquidation_threshold)
            .unwrap_or(Wad::MAX);
        capacity = capacity.saturating_add(weighted);
    }
    for holding in &entry.position.debt {
        let value = if reprice && holding.token == token {
            holding.amount.checked_mul(shocked).unwrap_or(Wad::MAX)
        } else {
            holding.value_usd
        };
        debt = debt.saturating_add(value);
    }
    if debt.is_zero() {
        return false;
    }
    let hf = capacity.checked_div(debt).unwrap_or(Wad::MAX);
    hf < Wad::ONE
}
